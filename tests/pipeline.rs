//! Cross-crate integration: artifacts written by one subsystem must load
//! and produce identical results in the next.

use bdrmapit::alias::AliasSets;
use bdrmapit::as_rel::AsRelationships;
use bdrmapit::bgp::rir::DelegationTable;
use bdrmapit::bgp::IpToAs;
use bdrmapit::core::{Bdrmapit, Config};
use bdrmapit::eval::Scenario;
use bdrmapit::topo_gen::GeneratorConfig;
use bdrmapit::traceroute::io::{read_jsonl, write_jsonl};

/// Manual longest-prefix match over the origin table: the independent
/// oracle the snapshot trie is checked against.
fn lpm(
    table: &[(bdrmapit::net_types::Prefix, bdrmapit::net_types::Asn)],
    addr: u32,
) -> Option<(bdrmapit::net_types::Prefix, bdrmapit::net_types::Asn)> {
    table
        .iter()
        .filter(|(p, _)| {
            let shift = 32 - u32::from(p.len());
            p.is_empty() || (addr >> shift) == (p.addr() >> shift)
        })
        .max_by_key(|(p, _)| p.len())
        .copied()
}

/// End-to-end acceptance for the serving path: run the pipeline, write the
/// CSV artifacts AND the binary snapshot from the same result, serve the
/// snapshot over loopback, and check that every query answer is identical
/// to what grepping the CSVs would return.
#[test]
fn snapshot_service_answers_match_csv_outputs() {
    use bdrmapit::core::output;
    use bdrmapit::serve::{Client, Request, Server, ServerConfig};
    use bdrmapit::snapshot::{Snapshot, SnapshotData};
    use std::sync::Arc;

    let s = Scenario::build(GeneratorConfig::tiny(601));
    let bundle = s.campaign(5, true, 601);
    let result =
        Bdrmapit::new(Config::default()).run(&bundle.traces, &bundle.aliases, &s.ip2as, &s.rels);

    // The flat-file artifacts, written and read back through core::output.
    let mut ann_csv = Vec::new();
    output::write_annotations(&mut ann_csv, &result).expect("write annotations");
    let ann_rows = output::read_annotations(&ann_csv[..]).expect("read annotations");
    let mut link_csv = Vec::new();
    output::write_links(&mut link_csv, &result).expect("write links");
    let link_rows = output::read_links(&link_csv[..]).expect("read links");
    assert!(
        !ann_rows.is_empty(),
        "tiny scenario produced no annotations"
    );

    // The same result frozen to a snapshot and served.
    let table = s.rib.origin_table();
    let data = SnapshotData::from_annotated(&result, &table);
    let bytes = bdrmapit::snapshot::to_bytes(&data);
    let snap = Snapshot::from_bytes(&bytes).expect("snapshot loads");
    let running = Server::bind(
        "127.0.0.1:0",
        Arc::new(snap),
        ServerConfig::default(),
        bdrmapit::obs::Recorder::disabled(),
    )
    .expect("bind loopback")
    .spawn_background();
    let mut client = Client::connect(running.addr()).expect("connect");

    // stats mirrors the artifact row counts.
    let stats = client.call(&Request::verb("stats")).expect("stats");
    let st = stats.stats.expect("stats payload");
    assert_eq!(st.annotations as usize, ann_rows.len());
    assert_eq!(st.links as usize, link_rows.len());

    // Every annotation row answers identically over the wire.
    for row in &ann_rows {
        let mut req = Request::verb("lookup_addr");
        req.addr = Some(bdrmapit::net_types::format_ipv4(row.addr));
        let resp = client.call(&req).expect("lookup_addr");
        assert_eq!(
            resp.found,
            Some(true),
            "{}",
            bdrmapit::net_types::format_ipv4(row.addr)
        );
        assert_eq!(resp.ir, Some(row.ir));
        assert_eq!(resp.asn, Some(row.asn.0));
        assert_eq!(resp.origin, Some(row.origin.0));
        assert_eq!(resp.conn, Some(row.conn.0));
    }

    // links_of_as returns exactly the CSV's rows touching that operator
    // (the server matches an AS on either side of the link).
    let mut operators: Vec<u32> = link_rows.iter().map(|l| l.ir_as.0).collect();
    operators.sort_unstable();
    operators.dedup();
    for asn in operators {
        let mut req = Request::verb("links_of_as");
        req.asn = Some(asn);
        let resp = client.call(&req).expect("links_of_as");
        let mut served: Vec<(u32, String, u32, bool)> = resp
            .links
            .expect("links payload")
            .into_iter()
            .map(|l| (l.ir_as, l.iface_addr, l.conn_as, l.last_hop))
            .collect();
        served.sort();
        let mut expected: Vec<(u32, String, u32, bool)> = link_rows
            .iter()
            .filter(|l| l.ir_as.0 == asn || l.conn_as.0 == asn)
            .map(|l| {
                (
                    l.ir_as.0,
                    bdrmapit::net_types::format_ipv4(l.iface_addr),
                    l.conn_as.0,
                    l.last_hop,
                )
            })
            .collect();
        expected.sort();
        assert_eq!(served, expected, "links_of_as {asn}");
    }

    // lookup_prefix agrees with an independent longest-prefix match.
    for row in ann_rows.iter().take(64) {
        let mut req = Request::verb("lookup_prefix");
        req.addr = Some(bdrmapit::net_types::format_ipv4(row.addr));
        let resp = client.call(&req).expect("lookup_prefix");
        match lpm(&table, row.addr) {
            Some((p, asn)) => {
                assert_eq!(resp.found, Some(true));
                assert_eq!(resp.prefix.as_deref(), Some(p.to_string().as_str()));
                assert_eq!(resp.origin, Some(asn.0));
            }
            None => assert_eq!(resp.found, Some(false)),
        }
    }

    running.shutdown();
}

#[test]
fn traces_survive_disk_roundtrip_with_identical_inference() {
    let s = Scenario::build(GeneratorConfig::tiny(501));
    let bundle = s.campaign(5, true, 1);

    // Serialize the corpus to JSONL and back.
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &bundle.traces).expect("write");
    let reloaded = read_jsonl(&buf[..]).expect("read");
    assert_eq!(reloaded, bundle.traces);

    // Aliases through the ITDK nodes-file format.
    let nodes_text = bundle.aliases.to_nodes_file();
    let aliases2 = AliasSets::from_nodes_file(&nodes_text).expect("nodes file");
    assert_eq!(aliases2, bundle.aliases);

    // Relationships through serial-1.
    let serial = s.rels.to_serial1();
    let rels2 = AsRelationships::from_serial1(&serial).expect("serial-1");
    assert_eq!(rels2.len(), s.rels.len());

    // Identical inference from the reloaded artifacts.
    let runner = Bdrmapit::new(Config::default());
    let a = runner.run(&bundle.traces, &bundle.aliases, &s.ip2as, &s.rels);
    let b = runner.run(&reloaded, &aliases2, &s.ip2as, &rels2);
    assert_eq!(a.router_annotations(), b.router_annotations());
    assert_eq!(a.interdomain_links(), b.interdomain_links());
}

#[test]
fn rir_extended_format_roundtrip_preserves_oracle() {
    let s = Scenario::build(GeneratorConfig::tiny(503));
    let text = s.net.addressing.delegations.to_extended_format();
    let back = DelegationTable::parse_extended_format(&text).expect("parse");
    let oracle1 = IpToAs::build(
        &s.rib,
        &s.net.addressing.delegations,
        &s.net.addressing.ixps,
    );
    let oracle2 = IpToAs::build(&s.rib, &back, &s.net.addressing.ixps);
    assert_eq!(oracle1.rir_prefix_count(), oracle2.rir_prefix_count());
    // Spot-check lookups over all observed infrastructure.
    for iface in s.net.topology.ifaces.iter().take(500) {
        assert_eq!(oracle1.lookup(iface.addr), oracle2.lookup(iface.addr));
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's modules must interoperate without path friction.
    let net = bdrmapit::topo_gen::Internet::generate(GeneratorConfig::tiny(1));
    let rib = net.build_rib();
    assert!(rib.prefix_count() > 0);
    let origin = rib.origin(net.addressing.blocks[&bdrmapit::net_types::Asn(100)]);
    assert_eq!(origin, Some(bdrmapit::net_types::Asn(100)));
}

#[test]
fn scenario_is_reproducible_across_processes() {
    // Same config → byte-identical campaign and inference. (Run twice in
    // one process; determinism across processes follows from no ambient
    // entropy — no Instant/thread-id/randomness outside seeded RNGs.)
    let run = || {
        let s = Scenario::build(GeneratorConfig::tiny(777));
        let bundle = s.campaign(4, true, 9);
        let result = Bdrmapit::new(Config::default()).run(
            &bundle.traces,
            &bundle.aliases,
            &s.ip2as,
            &s.rels,
        );
        (
            bundle.traces.len(),
            result.interdomain_links(),
            result.state.iterations,
        )
    };
    assert_eq!(run(), run());
}
