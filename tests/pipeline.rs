//! Cross-crate integration: artifacts written by one subsystem must load
//! and produce identical results in the next.

use bdrmapit::alias::AliasSets;
use bdrmapit::as_rel::AsRelationships;
use bdrmapit::bgp::rir::DelegationTable;
use bdrmapit::bgp::IpToAs;
use bdrmapit::core::{Bdrmapit, Config};
use bdrmapit::eval::Scenario;
use bdrmapit::topo_gen::GeneratorConfig;
use bdrmapit::traceroute::io::{read_jsonl, write_jsonl};

#[test]
fn traces_survive_disk_roundtrip_with_identical_inference() {
    let s = Scenario::build(GeneratorConfig::tiny(501));
    let bundle = s.campaign(5, true, 1);

    // Serialize the corpus to JSONL and back.
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &bundle.traces).expect("write");
    let reloaded = read_jsonl(&buf[..]).expect("read");
    assert_eq!(reloaded, bundle.traces);

    // Aliases through the ITDK nodes-file format.
    let nodes_text = bundle.aliases.to_nodes_file();
    let aliases2 = AliasSets::from_nodes_file(&nodes_text).expect("nodes file");
    assert_eq!(aliases2, bundle.aliases);

    // Relationships through serial-1.
    let serial = s.rels.to_serial1();
    let rels2 = AsRelationships::from_serial1(&serial).expect("serial-1");
    assert_eq!(rels2.len(), s.rels.len());

    // Identical inference from the reloaded artifacts.
    let runner = Bdrmapit::new(Config::default());
    let a = runner.run(&bundle.traces, &bundle.aliases, &s.ip2as, &s.rels);
    let b = runner.run(&reloaded, &aliases2, &s.ip2as, &rels2);
    assert_eq!(a.router_annotations(), b.router_annotations());
    assert_eq!(a.interdomain_links(), b.interdomain_links());
}

#[test]
fn rir_extended_format_roundtrip_preserves_oracle() {
    let s = Scenario::build(GeneratorConfig::tiny(503));
    let text = s.net.addressing.delegations.to_extended_format();
    let back = DelegationTable::parse_extended_format(&text).expect("parse");
    let oracle1 = IpToAs::build(
        &s.rib,
        &s.net.addressing.delegations,
        &s.net.addressing.ixps,
    );
    let oracle2 = IpToAs::build(&s.rib, &back, &s.net.addressing.ixps);
    assert_eq!(oracle1.rir_prefix_count(), oracle2.rir_prefix_count());
    // Spot-check lookups over all observed infrastructure.
    for iface in s.net.topology.ifaces.iter().take(500) {
        assert_eq!(oracle1.lookup(iface.addr), oracle2.lookup(iface.addr));
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's modules must interoperate without path friction.
    let net = bdrmapit::topo_gen::Internet::generate(GeneratorConfig::tiny(1));
    let rib = net.build_rib();
    assert!(rib.prefix_count() > 0);
    let origin = rib.origin(net.addressing.blocks[&bdrmapit::net_types::Asn(100)]);
    assert_eq!(origin, Some(bdrmapit::net_types::Asn(100)));
}

#[test]
fn scenario_is_reproducible_across_processes() {
    // Same config → byte-identical campaign and inference. (Run twice in
    // one process; determinism across processes follows from no ambient
    // entropy — no Instant/thread-id/randomness outside seeded RNGs.)
    let run = || {
        let s = Scenario::build(GeneratorConfig::tiny(777));
        let bundle = s.campaign(4, true, 9);
        let result = Bdrmapit::new(Config::default()).run(
            &bundle.traces,
            &bundle.aliases,
            &s.ip2as,
            &s.rels,
        );
        (
            bundle.traces.len(),
            result.interdomain_links(),
            result.state.iterations,
        )
    };
    assert_eq!(run(), run());
}
