//! Front-end determinism gate: the sharded probe campaign and the interned
//! phase-1 graph build must produce byte-identical output at every thread
//! count, with telemetry on or off — and that output must equal the
//! pre-change serial baseline (golden hashes captured at seed 2018 before
//! the front-end was parallelized).
//!
//! The hashes are structural FNV-1a digests over every field the rest of
//! the pipeline can observe: whole traces (hop presence, addresses, reply
//! types, stop reasons) and the whole graph (interface arrays, IR
//! membership, links with labels/origin/dest sets, predecessor maps).

use as_rel::CustomerCones;
use bdrmapit_core::{Config, IrGraph, LinkLabel};
use eval::Scenario;
use topo_gen::GeneratorConfig;
use traceroute::{ReplyType, StopReason, Trace};

/// Pre-change serial campaign hash for `tiny(2018)`, 8 VPs, vp_seed 2018.
const GOLDEN_CAMPAIGN: u64 = 0x931cf8a11e64b5e3;
/// Pre-change serial phase-1 graph hash over that campaign's corpus.
const GOLDEN_GRAPH: u64 = 0x675da6ce072f7212;
/// Corpus/graph sizes for the same inputs, pinned so a hash mismatch can be
/// told apart from an input drift.
const GOLDEN_TRACES: usize = 1832;
const GOLDEN_IRS: usize = 332;

struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        let mut h = Fnv(Self::OFFSET);
        h.u64(0xbd12_a917_2018_0607);
        h
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn u32(&mut self, v: u32) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }

    fn u64(&mut self, v: u64) {
        v.to_le_bytes().into_iter().for_each(|b| self.byte(b));
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        bs.iter().for_each(|&b| self.byte(b));
    }
}

fn reply_code(r: ReplyType) -> u8 {
    match r {
        ReplyType::TimeExceeded => 0,
        ReplyType::EchoReply => 1,
        ReplyType::DestUnreachable => 2,
    }
}

fn stop_code(s: StopReason) -> u8 {
    match s {
        StopReason::Completed => 0,
        StopReason::GapLimit => 1,
        StopReason::Unreachable => 2,
        StopReason::NoRoute => 3,
    }
}

fn label_code(l: LinkLabel) -> u8 {
    match l {
        LinkLabel::Nexthop => 0,
        LinkLabel::Echo => 1,
        LinkLabel::Multihop => 2,
    }
}

fn hash_traces(traces: &[Trace]) -> u64 {
    let mut h = Fnv::new();
    h.u64(traces.len() as u64);
    for t in traces {
        h.bytes(t.monitor.as_bytes());
        h.u32(t.src);
        h.u32(t.dst);
        h.byte(stop_code(t.stop));
        h.u64(t.hops.len() as u64);
        for hop in &t.hops {
            match hop {
                Some(hop) => {
                    h.byte(1);
                    h.u32(hop.addr);
                    h.byte(reply_code(hop.reply));
                }
                None => h.byte(0),
            }
        }
    }
    h.0
}

fn hash_graph(g: &IrGraph) -> u64 {
    let mut h = Fnv::new();
    h.u64(g.iface_addrs.len() as u64);
    for (i, &addr) in g.iface_addrs.iter().enumerate() {
        h.u32(addr);
        let o = g.iface_origin[i];
        h.u32(o.asn.0);
        h.u32(g.iface_ir[i].0);
        h.u64(g.iface_dests[i].len() as u64);
        for a in &g.iface_dests[i] {
            h.u32(a.0);
        }
        h.u64(g.preds[i].len() as u64);
        for (ir, ifs) in &g.preds[i] {
            h.u32(ir.0);
            h.u64(ifs.len() as u64);
            for j in ifs {
                h.u32(j.0);
            }
        }
    }
    h.u64(g.irs.len() as u64);
    for ir in &g.irs {
        h.u32(ir.id.0);
        h.u64(ir.ifaces.len() as u64);
        for j in &ir.ifaces {
            h.u32(j.0);
        }
        h.u64(ir.links.len() as u64);
        for l in &ir.links {
            h.u32(l.dst.0);
            h.byte(label_code(l.label));
            h.u64(l.origins.len() as u64);
            for a in &l.origins {
                h.u32(a.0);
            }
            h.u64(l.dests.len() as u64);
            for a in &l.dests {
                h.u32(a.0);
            }
        }
        h.u64(ir.origins.len() as u64);
        for a in &ir.origins {
            h.u32(a.0);
        }
        h.u64(ir.dests.len() as u64);
        for a in &ir.dests {
            h.u32(a.0);
        }
    }
    h.0
}

/// Runs the full front-end (scenario → campaign → phase-1 graph) at a given
/// thread count, with telemetry enabled or disabled, and returns the two
/// structural hashes plus the pinned sizes.
fn front_end(threads: usize, with_obs: bool) -> (u64, u64, usize, usize) {
    let rec = if with_obs {
        obs::Recorder::new(false)
    } else {
        obs::Recorder::disabled()
    };
    let mut s = Scenario::build_with_obs(GeneratorConfig::tiny(2018), rec.clone());
    s.threads = threads;
    let bundle = s.campaign(8, true, 2018);
    let cones = CustomerCones::compute(&s.rels);
    let cfg = Config {
        threads,
        ..Config::default()
    };
    let g = IrGraph::build_with_obs(
        &bundle.traces,
        &bundle.aliases,
        &s.ip2as,
        &cfg,
        &s.rels,
        &cones,
        &rec,
    );
    (
        hash_traces(&bundle.traces),
        hash_graph(&g),
        bundle.traces.len(),
        g.irs.len(),
    )
}

#[test]
fn front_end_matches_pre_change_serial_golden_at_every_thread_count() {
    for threads in [1usize, 2, 8] {
        for with_obs in [false, true] {
            let (campaign, graph, traces, irs) = front_end(threads, with_obs);
            let ctx = format!("threads={threads} obs={with_obs}");
            assert_eq!(traces, GOLDEN_TRACES, "trace count drifted ({ctx})");
            assert_eq!(irs, GOLDEN_IRS, "IR count drifted ({ctx})");
            assert_eq!(
                campaign, GOLDEN_CAMPAIGN,
                "campaign diverged from the pre-change serial baseline ({ctx})"
            );
            assert_eq!(
                graph, GOLDEN_GRAPH,
                "phase-1 graph diverged from the pre-change serial baseline ({ctx})"
            );
        }
    }
}
