//! The `bdrmapit` binary. Lives in the workspace-root package so a plain
//! `cargo run -- <command>` works from a fresh checkout; all the logic is in
//! the unit-testable `bdrmapit-cli` library.

#![forbid(unsafe_code)]

use bdrmapit_cli::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = bdrmapit_cli::parse(&args)
        .map_err(CliError::from)
        .and_then(|cli| bdrmapit_cli::run(&cli));
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::from(bdrmapit_cli::EXIT_SUCCESS)
        }
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{}", bdrmapit_cli::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
