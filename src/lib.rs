//! Facade crate re-exporting the bdrmapit-rs workspace public API.
#![forbid(unsafe_code)]
pub use alias;
pub use as_rel;
pub use bdrmap;
pub use bdrmapit_core as core;
pub use bgp;
pub use eval;
pub use mapit;
pub use net_types;
pub use obs;
pub use serve;
pub use snapshot;
pub use topo_gen;
pub use traceroute;
