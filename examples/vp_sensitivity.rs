//! How many vantage points does bdrmapIT need? (Paper §7.3, Figs. 18 & 19.)
//!
//! The surprising result: accuracy does not diminish as VPs are removed,
//! while the number of *visible* links does.
//!
//! ```sh
//! cargo run --release --example vp_sensitivity
//! ```

use bdrmapit::eval::experiments::vps;
use bdrmapit::eval::Scenario;
use bdrmapit::topo_gen::GeneratorConfig;

fn main() {
    let s = Scenario::build(GeneratorConfig {
        seed: 2018,
        ..GeneratorConfig::default()
    });
    let groups = [5, 10, 20, 40];
    println!(
        "sweeping VP groups {groups:?}, 5 random sets each (paper used 20/40/60/80 on 109 VPs)\n"
    );
    let sweep = vps::sweep(&s, &groups, 5, 9);
    println!("{}", sweep.render());

    // Aggregate per group across validation networks.
    println!("per-group averages:");
    println!("#VPs  precision  recall  visible-frac");
    for &g in &groups {
        let cells: Vec<&vps::SweepCell> = sweep.cells.iter().filter(|c| c.vps == g).collect();
        let n = cells.len() as f64;
        let p: f64 = cells.iter().map(|c| c.precision_mean).sum::<f64>() / n;
        let r: f64 = cells.iter().map(|c| c.recall_mean).sum::<f64>() / n;
        let v: f64 = cells.iter().map(|c| c.visible_frac_mean).sum::<f64>() / n;
        println!("{g:<5} {p:<10.3} {r:<7.3} {v:.3}");
    }
    println!(
        "\nexpected shape: precision and recall flat across rows, visible \
         fraction increasing (Figs. 18 & 19)"
    );
}
