//! Map one network's borders from a vantage point inside it — the classic
//! bdrmap use case (paper §7.1) — and compare bdrmapIT against the bdrmap
//! baseline on the identical corpus.
//!
//! ```sh
//! cargo run --release --example single_network
//! ```

use bdrmapit::eval::experiments::run_bdrmapit;
use bdrmapit::eval::truth::{
    bdrmap_pairs, bdrmapit_pairs, true_pairs_of, visible_pairs, LinkScore,
};
use bdrmapit::eval::Scenario;
use bdrmapit::topo_gen::GeneratorConfig;

fn main() {
    let s = Scenario::build(GeneratorConfig {
        seed: 7,
        ..GeneratorConfig::default()
    });
    // Map the large access network from a single VP inside it.
    let target = s.validation.large_access;
    println!("mapping {target} from a single in-network vantage point\n");
    let bundle = s.single_vp_campaign(target, 3);
    println!("corpus: {} traces", bundle.traces.len());

    let truth = true_pairs_of(&s.net, target);
    let visible = visible_pairs(&s.net, &bundle.traces, target, true);
    println!(
        "ground truth: {} interdomain AS adjacencies, {} visible in the corpus\n",
        truth.len(),
        visible.len()
    );

    // bdrmapIT on the single-VP corpus.
    let it = run_bdrmapit(&s, &bundle, bdrmapit::core::Config::default());
    let it_pairs = bdrmapit_pairs(&it, Some(target), true);
    let it_score = LinkScore::compute(&it_pairs, &truth, &visible);

    // The bdrmap baseline on the same corpus.
    let bm = bdrmapit::bdrmap::run(
        &bundle.traces,
        &bundle.aliases,
        &s.ip2as,
        &s.rels,
        Some(target),
    );
    let bm_pairs = bdrmap_pairs(&bm);
    let bm_score = LinkScore::compute(&bm_pairs, &truth, &visible);

    println!("tool      accuracy  recall  inferred");
    println!(
        "bdrmapIT  {:.3}     {:.3}   {}",
        it_score.precision(),
        it_score.recall(),
        it_score.inferred
    );
    println!(
        "bdrmap    {:.3}     {:.3}   {}",
        bm_score.precision(),
        bm_score.recall(),
        bm_score.inferred
    );

    println!("\nneighbors bdrmapIT found for {target}:");
    for (a, b) in &it_pairs {
        let other = if *a == target { *b } else { *a };
        let rel = s
            .net
            .graph
            .relationships
            .relationship(target, other)
            .map_or_else(|| "NOT A TRUE NEIGHBOR".to_string(), |r| format!("{r:?}"));
        println!("  {other}  ({rel})");
    }
}
