//! Quickstart: generate a small synthetic Internet, probe it, run bdrmapIT,
//! and print the inferred interdomain links of one network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bdrmapit::core::{Bdrmapit, Config};
use bdrmapit::net_types::format_ipv4;
use bdrmapit::topo_gen::{GeneratorConfig, Internet};
use bdrmapit::traceroute::sim::{probe_campaign, select_vps, ProbeConfig};
use bdrmapit::{alias, as_rel, bgp};

fn main() {
    // 1. A deterministic synthetic Internet (the substitute for the real
    //    one, which does not fit in a git repository).
    let net = Internet::generate(GeneratorConfig::tiny(42));
    println!(
        "generated {} ASes / {} routers / {} interfaces",
        net.graph.len(),
        net.topology.router_count(),
        net.topology.iface_count()
    );

    // 2. An ITDK-style traceroute campaign from 8 vantage points.
    let vps = select_vps(&net, 8, &[], 1);
    let traces = probe_campaign(&net, &vps, &ProbeConfig::default());
    println!("collected {} traces", traces.len());

    // 3. The supporting datasets the paper consumes: a BGP collector RIB,
    //    the combined IP→AS oracle, inferred AS relationships, and
    //    MIDAR-style alias resolution.
    let rib = net.build_rib();
    let ip2as = bgp::IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
    let rels = as_rel::infer::infer_relationships(
        &rib.collapsed_paths(),
        &as_rel::infer::InferenceConfig::default(),
    );
    let observed = alias::observed_addresses(&traces);
    let aliases = alias::resolve_midar(&net, &observed, 0.9, 7);

    // 4. bdrmapIT.
    let result = Bdrmapit::new(Config::default()).run(&traces, &aliases, &ip2as, &rels);
    println!(
        "annotated {} inferred routers in {} refinement iterations",
        result.graph.irs.len(),
        result.state.iterations
    );

    // 5. The interdomain links of the first Tier-1 network.
    let tier1 = net.graph.tier_members(bdrmapit::topo_gen::Tier::Clique)[0];
    println!("\ninterdomain links of {tier1}:");
    let mut shown = std::collections::BTreeSet::new();
    for link in result.interdomain_links() {
        let (a, b) = (link.ir_as.min(link.conn_as), link.ir_as.max(link.conn_as));
        if (a == tier1 || b == tier1) && shown.insert((a, b)) {
            println!(
                "  {a} -- {b}   (at interface {})",
                format_ipv4(link.iface_addr)
            );
        }
    }
}
