//! Internet-wide border mapping — the paper's headline experiment (§7.2):
//! no vantage point inside any validation network, bdrmapIT vs MAP-IT.
//!
//! ```sh
//! cargo run --release --example internet_scale
//! ```

use bdrmapit::eval::experiments::{internet_wide, stats};
use bdrmapit::eval::Scenario;
use bdrmapit::topo_gen::GeneratorConfig;

fn main() {
    let s = Scenario::build(GeneratorConfig {
        seed: 2018,
        ..GeneratorConfig::default()
    });
    println!(
        "synthetic Internet: {} ASes, {} routers; validation networks: \
         Tier 1 = {}, L Access = {}, R&E 1 = {}, R&E 2 = {}\n",
        s.net.graph.len(),
        s.net.topology.router_count(),
        s.validation.tier1,
        s.validation.large_access,
        s.validation.re1,
        s.validation.re2
    );

    // Corpus statistics first (Table 3 / §5 shape).
    let bundle = s.campaign(20, true, 1);
    println!("{}", stats::corpus_stats(&s, &bundle).render());

    // Figs. 16 & 17.
    let wide = internet_wide::run(&s, 20, 1);
    println!(
        "campaign: {} VPs (none inside validation networks), {} traces\n",
        wide.vps, wide.traces
    );
    println!("{}", wide.render());

    // The paper's qualitative claims, checked live.
    let it_recall: f64 = wide.fig16.iter().map(|r| r.bdrmapit.recall()).sum::<f64>() / 4.0;
    let mp_recall: f64 = wide.fig16.iter().map(|r| r.mapit.recall()).sum::<f64>() / 4.0;
    let it_prec: f64 = wide
        .fig16
        .iter()
        .map(|r| r.bdrmapit.precision())
        .sum::<f64>()
        / 4.0;
    println!(
        "summary: bdrmapIT precision {it_prec:.3}, recall {it_recall:.3}; \
         MAP-IT recall {mp_recall:.3} — {}",
        if it_recall > mp_recall {
            "bdrmapIT vastly improves MAP-IT's coverage (paper §7.2)"
        } else {
            "UNEXPECTED: MAP-IT recall not below bdrmapIT"
        }
    );
}
