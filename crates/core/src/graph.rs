//! Phase 1: constructing the annotated IR graph (§4).
//!
//! Inferred routers (IRs) come from alias sets; addresses without alias
//! information become singleton IRs. Links run from an IR to the interface
//! seen next in a traceroute, labelled with the N/E/M confidence of Table 3,
//! and carry the origin-AS set `L(IRᵢ, j)` (§4.3) and the per-link
//! destination ASes the third-party test needs (§6.1.1). Per-IR destination
//! AS sets apply the reallocated-prefix filter of §4.4.

use crate::refine::shard::ShardPlan;
use crate::Config;
use alias::AliasSets;
use as_rel::{AsRelationships, CustomerCones};
use bgp::{IpToAs, OriginInfo, OriginKind};
use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use traceroute::{ReplyType, Trace};

/// Index of an inferred router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IrId(pub u32);

/// Index of an observed interface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IfIdx(pub u32);

/// Link confidence label (Table 3). Lower discriminant = higher confidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkLabel {
    /// Nexthop: same origin AS, or hop distance 1, and the far side did not
    /// answer with an Echo Reply.
    Nexthop,
    /// Echo: hop distance 1, far side answered with an Echo Reply.
    Echo,
    /// Multihop: separated by unresponsive hops with different origin ASes.
    Multihop,
}

/// A link from an IR to a subsequently-observed interface.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// The subsequent interface.
    pub dst: IfIdx,
    /// Best (highest-confidence) label observed for this link.
    pub label: LinkLabel,
    /// `L(IRᵢ, j)`: origin ASes of the IR's interfaces seen immediately
    /// prior to `dst` in a traceroute (§4.3).
    pub origins: BTreeSet<Asn>,
    /// Destination ASes of the traces whose `IR → dst` segment created this
    /// link (the third-party test consults these, §6.1.1).
    pub dests: BTreeSet<Asn>,
}

/// One inferred router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ir {
    /// Identifier (index into [`IrGraph::irs`]).
    pub id: IrId,
    /// Observed interfaces on this router.
    pub ifaces: Vec<IfIdx>,
    /// Outgoing links, ordered by destination interface.
    pub links: Vec<Link>,
    /// Union of the interfaces' origin ASes (IXP and unannounced addresses
    /// contribute nothing, §4.1).
    pub origins: BTreeSet<Asn>,
    /// Destination AS set after §4.4's reallocation filtering.
    pub dests: BTreeSet<Asn>,
}

/// The annotated IR graph.
#[derive(Clone, Debug, Default)]
pub struct IrGraph {
    /// All inferred routers; `IrId` indexes this.
    pub irs: Vec<Ir>,
    /// Interface addresses; `IfIdx` indexes this and the parallel arrays.
    pub iface_addrs: Vec<u32>,
    /// Origin resolution per interface.
    pub iface_origin: Vec<OriginInfo>,
    /// Owning IR per interface.
    pub iface_ir: Vec<IrId>,
    /// Raw (unfiltered) destination AS set per interface.
    pub iface_dests: Vec<BTreeSet<Asn>>,
    /// Per interface: predecessor IR → that IR's interfaces seen immediately
    /// prior (drives interface-annotation voting, §6.2).
    pub preds: Vec<BTreeMap<IrId, BTreeSet<IfIdx>>>,
    /// Address → interface index.
    // detlint::allow(unordered-collection): per-hop lookup table on the hot
    // build path, queried by key only and never iterated; interface order
    // comes from the sorted `observed` set, not from this map
    pub addr_index: HashMap<u32, IfIdx>,
    /// Annotation-dependency shards (link-connected components) with their
    /// wavefront levels, precomputed for the refinement engine.
    pub shards: ShardPlan,
}

impl IrGraph {
    /// Builds the graph from a corpus (§4).
    pub fn build(
        traces: &[Trace],
        aliases: &AliasSets,
        ip2as: &IpToAs,
        cfg: &Config,
        rels: &AsRelationships,
        cones: &CustomerCones,
    ) -> IrGraph {
        let mut g = IrGraph::default();

        // ---- interfaces: every address observed as a responding hop ----
        let mut observed: BTreeSet<u32> = BTreeSet::new();
        for t in traces {
            for (_, h) in t.responsive() {
                observed.insert(h.addr);
            }
        }
        for &addr in &observed {
            let idx = IfIdx(g.iface_addrs.len() as u32);
            g.iface_addrs.push(addr);
            g.iface_origin.push(ip2as.lookup(addr));
            g.iface_dests.push(BTreeSet::new());
            g.preds.push(BTreeMap::new());
            g.addr_index.insert(addr, idx);
        }
        g.iface_ir = vec![IrId(u32::MAX); g.iface_addrs.len()];

        // ---- IRs from alias groups over observed addresses ----
        let mut ir_members: Vec<Vec<IfIdx>> = Vec::new();
        let mut grouped: BTreeSet<IfIdx> = BTreeSet::new();
        for group in aliases.iter() {
            let members: Vec<IfIdx> = group
                .iter()
                .filter_map(|a| g.addr_index.get(a).copied())
                .collect();
            if members.len() >= 2 {
                for &m in &members {
                    grouped.insert(m);
                }
                ir_members.push(members);
            }
        }
        for idx in 0..g.iface_addrs.len() {
            let ifidx = IfIdx(idx as u32);
            if !grouped.contains(&ifidx) {
                ir_members.push(vec![ifidx]);
            }
        }
        for members in ir_members {
            let id = IrId(g.irs.len() as u32);
            for &m in &members {
                g.iface_ir[m.0 as usize] = id;
            }
            g.irs.push(Ir {
                id,
                ifaces: members,
                links: Vec::new(),
                origins: BTreeSet::new(),
                dests: BTreeSet::new(),
            });
        }

        // ---- walk traces: links, origin sets, destination sets ----
        // Accumulate links in a map first, then freeze into sorted vectors.
        // Accumulator value: (label, origin-AS set, destination-AS set).
        type LinkAcc = (LinkLabel, BTreeSet<Asn>, BTreeSet<Asn>);
        let mut link_acc: BTreeMap<(IrId, IfIdx), LinkAcc> = BTreeMap::new();
        for t in traces {
            let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
            if hops.is_empty() {
                continue;
            }
            let dest_info = ip2as.lookup(t.dst);
            let dest_as = dest_info.asn;

            // Destination AS sets (§4.4): every responding interface records
            // the trace's destination AS — except an Echo Reply last hop,
            // whose "destination" is just the probed address itself.
            let last = hops.len() - 1;
            for (i, &(_, h)) in hops.iter().enumerate() {
                if i == last && h.reply == ReplyType::EchoReply {
                    continue;
                }
                if dest_as.is_some() {
                    let ifidx = g.addr_index[&h.addr];
                    g.iface_dests[ifidx.0 as usize].insert(dest_as);
                }
            }

            // Links between adjacent responsive hops.
            for w in hops.windows(2) {
                let ((ttl_x, x), (ttl_y, y)) = (w[0], w[1]);
                if x.addr == y.addr {
                    continue;
                }
                let xi = g.addr_index[&x.addr];
                let yi = g.addr_index[&y.addr];
                let ir_x = g.iface_ir[xi.0 as usize];
                if ir_x == g.iface_ir[yi.0 as usize] {
                    continue; // both sides on one IR: not a link
                }
                let dist = ttl_y - ttl_x;
                let ox = g.iface_origin[xi.0 as usize];
                let oy = g.iface_origin[yi.0 as usize];
                let label = link_label(dist, ox, oy, y.reply);
                let entry = link_acc
                    .entry((ir_x, yi))
                    .or_insert_with(|| (label, BTreeSet::new(), BTreeSet::new()));
                entry.0 = entry.0.min(label); // keep the highest confidence
                if ox.asn.is_some() {
                    entry.1.insert(ox.asn);
                }
                if dest_as.is_some() {
                    entry.2.insert(dest_as);
                }
                // Predecessor record for §6.2 interface voting.
                g.preds[yi.0 as usize].entry(ir_x).or_default().insert(xi);
            }
        }
        for ((ir, dst), (label, origins, dests)) in link_acc {
            g.irs[ir.0 as usize].links.push(Link {
                dst,
                label,
                origins,
                dests,
            });
        }

        // ---- per-IR metadata ----
        for ir in &mut g.irs {
            for &ifidx in &ir.ifaces {
                let o = g.iface_origin[ifidx.0 as usize];
                if o.asn.is_some() && o.kind != OriginKind::Ixp {
                    ir.origins.insert(o.asn);
                }
            }
        }
        // Destination sets with §4.4 reallocation filtering, applied per
        // interface before the union.
        for ir_idx in 0..g.irs.len() {
            let mut dests: BTreeSet<Asn> = BTreeSet::new();
            for &ifidx in &g.irs[ir_idx].ifaces {
                let raw = &g.iface_dests[ifidx.0 as usize];
                let origin = g.iface_origin[ifidx.0 as usize].asn;
                dests.extend(filtered_iface_dests(raw, origin, cfg, rels, cones));
            }
            g.irs[ir_idx].dests = dests;
        }

        // ---- refinement shard plan (link-connected components, §6.3) ----
        g.shards = ShardPlan::compute(&g.irs, &g.iface_ir);

        g
    }

    /// IRs with no outgoing links (phase 2 targets).
    pub fn last_hop_irs(&self) -> impl Iterator<Item = &Ir> {
        self.irs.iter().filter(|ir| ir.links.is_empty())
    }

    /// IRs with at least one outgoing link (phase 3 targets).
    pub fn mid_path_irs(&self) -> impl Iterator<Item = &Ir> {
        self.irs.iter().filter(|ir| !ir.links.is_empty())
    }

    /// The interface for an address.
    pub fn iface_of_addr(&self, addr: u32) -> Option<IfIdx> {
        self.addr_index.get(&addr).copied()
    }

    /// The IR carrying an address.
    pub fn ir_of_addr(&self, addr: u32) -> Option<IrId> {
        self.iface_of_addr(addr)
            .map(|i| self.iface_ir[i.0 as usize])
    }

    /// Distribution of best link labels, for the Table 3 statistics.
    pub fn label_distribution(&self) -> BTreeMap<LinkLabel, usize> {
        let mut out = BTreeMap::new();
        for ir in &self.irs {
            for l in &ir.links {
                *out.entry(l.label).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total link count.
    pub fn link_count(&self) -> usize {
        self.irs.iter().map(|ir| ir.links.len()).sum()
    }
}

/// Table 3's labelling rules.
fn link_label(dist: u8, ox: OriginInfo, oy: OriginInfo, reply: ReplyType) -> LinkLabel {
    if reply == ReplyType::EchoReply {
        // Echo replies only prove the address is on the responding router.
        if dist == 1 || (ox.asn.is_some() && ox.asn == oy.asn) {
            LinkLabel::Echo
        } else {
            LinkLabel::Multihop
        }
    } else if dist == 1 || (ox.asn.is_some() && ox.asn == oy.asn) {
        LinkLabel::Nexthop
    } else {
        LinkLabel::Multihop
    }
}

/// §4.4's per-interface destination filter: a set of exactly two ASes, one
/// matching the interface origin and the other a small-cone AS with no
/// BGP-observable relationship to it, indicates a reallocated prefix; the
/// larger-cone AS (the reallocating provider) is removed.
fn filtered_iface_dests(
    raw: &BTreeSet<Asn>,
    origin: Asn,
    cfg: &Config,
    rels: &AsRelationships,
    cones: &CustomerCones,
) -> BTreeSet<Asn> {
    if !cfg.enable_realloc || raw.len() != 2 || origin.is_none() || !raw.contains(&origin) {
        return raw.clone();
    }
    let other = *raw.iter().find(|&&a| a != origin).expect("two elements");
    if cones.size(other) > cfg.realloc_cone_max || rels.has_relationship(origin, other) {
        return raw.clone();
    }
    // Remove the AS with the larger cone (the provider).
    let drop = if cones.size(origin) >= cones.size(other) {
        origin
    } else {
        other
    };
    raw.iter().copied().filter(|&a| a != drop).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Prefix;
    use traceroute::{Hop, StopReason};

    fn cfg() -> Config {
        Config::default()
    }

    fn tr(dst: u32, hops: &[(u8, u32, ReplyType)]) -> Trace {
        let max_ttl = hops.iter().map(|&(t, _, _)| t).max().unwrap_or(1);
        let mut v: Vec<Option<Hop>> = vec![None; max_ttl as usize];
        for &(ttl, addr, reply) in hops {
            v[ttl as usize - 1] = Some(Hop { addr, reply });
        }
        Trace {
            monitor: "vp".into(),
            src: 1,
            dst,
            hops: v,
            stop: StopReason::Completed,
        }
    }

    /// Address plan: 10.1.x = AS1, 10.2.x = AS2, 10.3.x = AS3.
    fn oracle() -> IpToAs {
        IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
            ("10.3.0.0/16".parse::<Prefix>().unwrap(), Asn(3)),
        ])
    }

    fn a(s: &str) -> u32 {
        net_types::parse_ipv4(s).unwrap()
    }

    const TE: ReplyType = ReplyType::TimeExceeded;
    const ER: ReplyType = ReplyType::EchoReply;

    fn build(traces: &[Trace], aliases: &AliasSets) -> IrGraph {
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        IrGraph::build(traces, aliases, &oracle(), &cfg(), &rels, &cones)
    }

    #[test]
    fn singleton_irs_without_aliases() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.iface_addrs.len(), 2);
        assert_eq!(g.irs.len(), 2);
        assert_ne!(g.ir_of_addr(a("10.1.0.1")), g.ir_of_addr(a("10.2.0.1")));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn alias_groups_become_irs() {
        let traces = [
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
            ),
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.2"), TE), (2, a("10.2.0.1"), TE)],
            ),
        ];
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.1.0.2")])]);
        let g = build(&traces, &aliases);
        assert_eq!(g.irs.len(), 2); // aliased pair + the 10.2 singleton
        let ir = g.ir_of_addr(a("10.1.0.1")).unwrap();
        assert_eq!(g.ir_of_addr(a("10.1.0.2")), Some(ir));
        // The merged IR has ONE link to 10.2.0.1 with both origins = {AS1}.
        let ir = &g.irs[ir.0 as usize];
        assert_eq!(ir.links.len(), 1);
        assert_eq!(ir.links[0].origins, BTreeSet::from([Asn(1)]));
        assert_eq!(ir.origins, BTreeSet::from([Asn(1)]));
    }

    #[test]
    fn nexthop_label_for_adjacent() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        let dist = g.label_distribution();
        assert_eq!(dist.get(&LinkLabel::Nexthop), Some(&1));
    }

    #[test]
    fn multihop_label_across_gap_different_origin() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (3, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Multihop), Some(&1));
    }

    #[test]
    fn nexthop_label_across_gap_same_origin() {
        let traces = [tr(
            a("10.1.0.99"),
            &[(1, a("10.1.0.1"), TE), (4, a("10.1.0.2"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Nexthop), Some(&1));
    }

    #[test]
    fn echo_label() {
        let traces = [tr(
            a("10.2.0.1"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), ER)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Echo), Some(&1));
    }

    #[test]
    fn best_label_wins_on_merge() {
        let traces = [
            // Multihop observation...
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (3, a("10.2.0.1"), TE)],
            ),
            // ...then a Nexthop observation of the same link.
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
            ),
        ];
        let g = build(&traces, &AliasSets::empty());
        let dist = g.label_distribution();
        assert_eq!(dist.get(&LinkLabel::Nexthop), Some(&1));
        assert_eq!(dist.get(&LinkLabel::Multihop), None);
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn origin_sets_accumulate_per_link() {
        // Fig. 5 of the paper: two different prior interfaces on one IR.
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.3.0.1")])]);
        let traces = [
            tr(
                a("10.2.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
            tr(
                a("10.2.0.99"),
                &[(1, a("10.3.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
        ];
        let g = build(&traces, &aliases);
        let ir = &g.irs[g.ir_of_addr(a("10.1.0.1")).unwrap().0 as usize];
        assert_eq!(ir.links.len(), 1);
        assert_eq!(ir.links[0].origins, BTreeSet::from([Asn(1), Asn(3)]));
    }

    #[test]
    fn dest_sets_exclude_echo_last_hop() {
        let traces = [tr(
            a("10.2.0.1"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), ER)],
        )];
        let g = build(&traces, &AliasSets::empty());
        // 10.1.0.1 records dest AS2; the echo responder records nothing.
        let i1 = g.iface_of_addr(a("10.1.0.1")).unwrap();
        let i2 = g.iface_of_addr(a("10.2.0.1")).unwrap();
        assert_eq!(g.iface_dests[i1.0 as usize], BTreeSet::from([Asn(2)]));
        assert!(g.iface_dests[i2.0 as usize].is_empty());
    }

    #[test]
    fn realloc_filter_drops_provider() {
        // Interface origin AS1 (provider, big cone); dests {AS1, AS3} where
        // AS3 is a small-cone AS with no relationship to AS1.
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(1), Asn(2)); // gives AS1 a cone of 2
        let cones = CustomerCones::compute(&rels);
        let raw = BTreeSet::from([Asn(1), Asn(3)]);
        let out = filtered_iface_dests(&raw, Asn(1), &cfg(), &rels, &cones);
        assert_eq!(out, BTreeSet::from([Asn(3)]));
        // With a known relationship, nothing is filtered.
        let mut rels2 = AsRelationships::new();
        rels2.add_p2c(Asn(1), Asn(3));
        let cones2 = CustomerCones::compute(&rels2);
        let out2 = filtered_iface_dests(&raw, Asn(1), &cfg(), &rels2, &cones2);
        assert_eq!(out2, raw);
    }

    #[test]
    fn preds_track_prior_interfaces() {
        let traces = [
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.2"), TE), (2, a("10.2.0.5"), TE)],
            ),
        ];
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.1.0.2")])]);
        let g = build(&traces, &aliases);
        let yi = g.iface_of_addr(a("10.2.0.5")).unwrap();
        let ir = g.ir_of_addr(a("10.1.0.1")).unwrap();
        let preds = &g.preds[yi.0 as usize];
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[&ir].len(), 2, "both prior interfaces recorded");
    }

    #[test]
    fn last_hop_vs_mid_path_partition() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.mid_path_irs().count(), 1);
        assert_eq!(g.last_hop_irs().count(), 1);
    }

    #[test]
    fn self_loops_and_repeats_skipped() {
        let traces = [tr(
            a("10.3.0.99"),
            &[
                (1, a("10.1.0.1"), TE),
                (2, a("10.1.0.1"), TE), // routing artifact: repeated addr
                (3, a("10.2.0.1"), TE),
            ],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.link_count(), 1);
    }
}
