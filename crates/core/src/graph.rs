//! Phase 1: constructing the annotated IR graph (§4).
//!
//! Inferred routers (IRs) come from alias sets; addresses without alias
//! information become singleton IRs. Links run from an IR to the interface
//! seen next in a traceroute, labelled with the N/E/M confidence of Table 3,
//! and carry the origin-AS set `L(IRᵢ, j)` (§4.3) and the per-link
//! destination ASes the third-party test needs (§6.1.1). Per-IR destination
//! AS sets apply the reallocated-prefix filter of §4.4.
//!
//! # Parallel two-pass build (DESIGN.md §12, pool scheduling §13)
//!
//! The build is chunked into tasks on the shared [`pool::WorkerPool`] and
//! is bit-identical to a serial walk for every thread count:
//!
//! 1. **Intern** (pass 0): workers scan disjoint trace shards for responding
//!    addresses; the union becomes an [`AddrInterner`], whose ids are
//!    *canonical* (ascending address order) regardless of which shard saw an
//!    address first. `IfIdx(i)` and interner id `i` are the same number.
//! 2. **Extract** (pass 1): workers re-walk their trace shards emitting
//!    compact [`LinkObs`] / destination observations keyed by interned ids.
//! 3. **Reduce**: shard outputs are concatenated, sorted by their total
//!    order, and folded. Every accumulator is order-insensitive — link label
//!    by `min`, origin/destination/predecessor collections are sets — so the
//!    fold reproduces the serial result no matter how observations were
//!    distributed over shards.
//! 4. **Annotate** (per-IR metadata): workers process disjoint IR ranges
//!    with private [`RelQueryCache`]s (hit/miss tallies merged in worker
//!    order), and results are written back in IR order.

use crate::refine::shard::ShardPlan;
use crate::Config;
use alias::AliasSets;
use as_rel::{AsRelationships, CustomerCones, RelQueryCache};
use bgp::{IpToAs, OriginInfo, OriginKind};
use net_types::{AddrInterner, Asn};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use traceroute::{ReplyType, Trace};

/// Index of an inferred router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IrId(pub u32);

/// Index of an observed interface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IfIdx(pub u32);

/// Link confidence label (Table 3). Lower discriminant = higher confidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkLabel {
    /// Nexthop: same origin AS, or hop distance 1, and the far side did not
    /// answer with an Echo Reply.
    Nexthop,
    /// Echo: hop distance 1, far side answered with an Echo Reply.
    Echo,
    /// Multihop: separated by unresponsive hops with different origin ASes.
    Multihop,
}

/// A link from an IR to a subsequently-observed interface.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Link {
    /// The subsequent interface.
    pub dst: IfIdx,
    /// Best (highest-confidence) label observed for this link.
    pub label: LinkLabel,
    /// `L(IRᵢ, j)`: origin ASes of the IR's interfaces seen immediately
    /// prior to `dst` in a traceroute (§4.3).
    pub origins: BTreeSet<Asn>,
    /// Destination ASes of the traces whose `IR → dst` segment created this
    /// link (the third-party test consults these, §6.1.1).
    pub dests: BTreeSet<Asn>,
}

/// One inferred router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ir {
    /// Identifier (index into [`IrGraph::irs`]).
    pub id: IrId,
    /// Observed interfaces on this router.
    pub ifaces: Vec<IfIdx>,
    /// Outgoing links, ordered by destination interface.
    pub links: Vec<Link>,
    /// Union of the interfaces' origin ASes (IXP and unannounced addresses
    /// contribute nothing, §4.1).
    pub origins: BTreeSet<Asn>,
    /// Destination AS set after §4.4's reallocation filtering.
    pub dests: BTreeSet<Asn>,
}

/// The annotated IR graph.
#[derive(Clone, Debug, Default)]
pub struct IrGraph {
    /// All inferred routers; `IrId` indexes this.
    pub irs: Vec<Ir>,
    /// Interface addresses; `IfIdx` indexes this and the parallel arrays.
    pub iface_addrs: Vec<u32>,
    /// Origin resolution per interface.
    pub iface_origin: Vec<OriginInfo>,
    /// Owning IR per interface.
    pub iface_ir: Vec<IrId>,
    /// Raw (unfiltered) destination AS set per interface.
    pub iface_dests: Vec<BTreeSet<Asn>>,
    /// Per interface: predecessor IR → that IR's interfaces seen immediately
    /// prior (drives interface-annotation voting, §6.2).
    pub preds: Vec<BTreeMap<IrId, BTreeSet<IfIdx>>>,
    /// Address ↔ interface-index mapping: interface `i`'s address is the
    /// `i`-th smallest observed address, so the interner's dense ids *are*
    /// the `IfIdx` values.
    pub interner: AddrInterner,
    /// Annotation-dependency shards (link-connected components) with their
    /// wavefront levels, precomputed for the refinement engine.
    pub shards: ShardPlan,
}

/// One link-relevant observation from a single adjacent-hop pair, in
/// interned-id space. The derived lexicographic order — `(ir, dst)` first —
/// is the grouping key of the reduction; the remaining fields only
/// feed order-insensitive accumulators (min-label, origin/dest/pred sets),
/// so sorting a concatenation of shard outputs loses nothing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct LinkObs {
    /// Source IR (`iface_ir` of the prior hop).
    ir: u32,
    /// Destination interface id.
    dst: u32,
    /// Table 3 label of this single observation.
    label: LinkLabel,
    /// Origin AS of the prior interface (`Asn::NONE` when unannounced).
    origin: Asn,
    /// Destination AS of the trace (`Asn::NONE` when unannounced).
    dest: Asn,
    /// The prior interface itself (for §6.2 predecessor voting).
    pred: u32,
}

/// Chunks `n` items into `batch`-sized pool tasks; returns the task count.
fn task_count(n: usize, batch: usize) -> usize {
    n.div_ceil(batch)
}

/// Task `t`'s contiguous item range under `batch`-sized chunking of `n`.
fn task_range(n: usize, t: usize, batch: usize) -> (usize, usize) {
    (t * batch, ((t + 1) * batch).min(n))
}

impl IrGraph {
    /// Builds the graph from a corpus (§4), without telemetry.
    pub fn build(
        traces: &[Trace],
        aliases: &AliasSets,
        ip2as: &IpToAs,
        cfg: &Config,
        rels: &AsRelationships,
        cones: &CustomerCones,
    ) -> IrGraph {
        Self::build_with_obs(
            traces,
            aliases,
            ip2as,
            cfg,
            rels,
            cones,
            &obs::Recorder::disabled(),
        )
    }

    /// Builds the graph from a corpus (§4) on an ad-hoc worker pool sized
    /// from `cfg.threads`, recording worker counts and relationship-cache
    /// telemetry on `rec`.
    pub fn build_with_obs(
        traces: &[Trace],
        aliases: &AliasSets,
        ip2as: &IpToAs,
        cfg: &Config,
        rels: &AsRelationships,
        cones: &CustomerCones,
        rec: &obs::Recorder,
    ) -> IrGraph {
        let wp = pool::WorkerPool::with_recorder(cfg.threads, rec.clone());
        Self::build_in_pool(traces, aliases, ip2as, cfg, rels, cones, &wp, rec)
    }

    /// [`IrGraph::build_with_obs`] on a caller-provided worker pool — the
    /// entry the pipeline uses so all phases share one pool. Each parallel
    /// pass is chunked into [`pool::WorkerPool::batch_size`]-sized tasks
    /// (see the module docs for the sharding scheme); task outputs rejoin
    /// in task-index order, so stealing never reaches the output.
    #[allow(clippy::too_many_arguments)]
    pub fn build_in_pool(
        traces: &[Trace],
        aliases: &AliasSets,
        ip2as: &IpToAs,
        cfg: &Config,
        rels: &AsRelationships,
        cones: &CustomerCones,
        wp: &pool::WorkerPool,
        rec: &obs::Recorder,
    ) -> IrGraph {
        rec.add_exec(
            obs::names::EXEC_GRAPH_WORKERS,
            wp.worker_cap(traces.len()) as u64,
        );
        let mut g = IrGraph::default();

        // ---- pass 0: intern every address observed as a responding hop.
        // Shard-local sort+dedup keeps the merge small; the interner re-sorts
        // the union, so ids depend only on the observed address *set*.
        let span = rec.span(obs::names::PHASE1_INTERN);
        let trace_batch = wp.batch_size(traces.len());
        let addr_shards = wp.run(
            obs::names::EXEC_POOL_BUSY_GRAPH,
            task_count(traces.len(), trace_batch),
            |t| {
                let (lo, hi) = task_range(traces.len(), t, trace_batch);
                let mut addrs: Vec<u32> = traces[lo..hi]
                    .iter()
                    .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
                    .collect();
                addrs.sort_unstable();
                addrs.dedup();
                addrs
            },
        );
        g.interner = AddrInterner::from_addrs(addr_shards.into_iter().flatten());
        g.iface_addrs = g.interner.addrs().to_vec();
        let n_ifaces = g.iface_addrs.len();
        drop(span);

        // Origin resolution per interface: independent longest-prefix
        // lookups, sharded over the id space and rejoined in id order.
        let span = rec.span(obs::names::PHASE1_ORIGINS);
        let iface_addrs = &g.iface_addrs;
        let iface_batch = wp.batch_size(n_ifaces);
        let origin_shards = wp.run(
            obs::names::EXEC_POOL_BUSY_GRAPH,
            task_count(n_ifaces, iface_batch),
            |t| {
                let (lo, hi) = task_range(n_ifaces, t, iface_batch);
                iface_addrs[lo..hi]
                    .iter()
                    .map(|&a| ip2as.lookup(a))
                    .collect::<Vec<OriginInfo>>()
            },
        );
        g.iface_origin = origin_shards.into_iter().flatten().collect();
        g.iface_dests = vec![BTreeSet::new(); n_ifaces];
        g.preds = vec![BTreeMap::new(); n_ifaces];
        g.iface_ir = vec![IrId(u32::MAX); n_ifaces];
        drop(span);

        // ---- IRs from alias groups over observed addresses (serial: IR
        // numbering is an ordering decision, and the work is linear).
        let span = rec.span(obs::names::PHASE1_IRS);
        let mut ir_members: Vec<Vec<IfIdx>> = Vec::new();
        let mut grouped = vec![false; n_ifaces];
        for group in aliases.interned_groups(&g.interner) {
            if group.len() >= 2 {
                let members: Vec<IfIdx> = group.into_iter().map(IfIdx).collect();
                for &m in &members {
                    grouped[m.0 as usize] = true;
                }
                ir_members.push(members);
            }
        }
        for (idx, seen) in grouped.iter().enumerate() {
            if !seen {
                ir_members.push(vec![IfIdx(idx as u32)]);
            }
        }
        for members in ir_members {
            let id = IrId(g.irs.len() as u32);
            for &m in &members {
                g.iface_ir[m.0 as usize] = id;
            }
            g.irs.push(Ir {
                id,
                ifaces: members,
                links: Vec::new(),
                origins: BTreeSet::new(),
                dests: BTreeSet::new(),
            });
        }

        drop(span);

        // ---- pass 1: extract link/destination observations per trace
        // shard, entirely in interned-id space.
        let span = rec.span(obs::names::PHASE1_LINKS);
        let graph = &g;
        let obs_shards = wp.run(
            obs::names::EXEC_POOL_BUSY_GRAPH,
            task_count(traces.len(), trace_batch),
            |t| {
                let (lo, hi) = task_range(traces.len(), t, trace_batch);
                let mut links: Vec<LinkObs> = Vec::new();
                let mut dest_obs: Vec<(u32, Asn)> = Vec::new();
                for t in &traces[lo..hi] {
                    let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
                    if hops.is_empty() {
                        continue;
                    }
                    let dest_as = ip2as.lookup(t.dst).asn;

                    // Destination AS sets (§4.4): every responding interface
                    // records the trace's destination AS — except an Echo Reply
                    // last hop, whose "destination" is just the probed address.
                    let last = hops.len() - 1;
                    if dest_as.is_some() {
                        for (i, &(_, h)) in hops.iter().enumerate() {
                            if i == last && h.reply == ReplyType::EchoReply {
                                continue;
                            }
                            let ifidx = graph.interner.id(h.addr).expect("hop addr interned");
                            dest_obs.push((ifidx, dest_as));
                        }
                    }

                    // Links between adjacent responsive hops.
                    for pair in hops.windows(2) {
                        let ((ttl_x, x), (ttl_y, y)) = (pair[0], pair[1]);
                        if x.addr == y.addr {
                            continue;
                        }
                        let xi = graph.interner.id(x.addr).expect("hop addr interned");
                        let yi = graph.interner.id(y.addr).expect("hop addr interned");
                        let ir_x = graph.iface_ir[xi as usize];
                        if ir_x == graph.iface_ir[yi as usize] {
                            continue; // both sides on one IR: not a link
                        }
                        let dist = ttl_y - ttl_x;
                        let ox = graph.iface_origin[xi as usize];
                        let oy = graph.iface_origin[yi as usize];
                        links.push(LinkObs {
                            ir: ir_x.0,
                            dst: yi,
                            label: link_label(dist, ox, oy, y.reply),
                            origin: ox.asn,
                            dest: dest_as,
                            pred: xi,
                        });
                    }
                }
                // Local dedup: repeated observations only re-feed idempotent
                // accumulators, so dropping them here shrinks the merge.
                links.sort_unstable();
                links.dedup();
                dest_obs.sort_unstable();
                dest_obs.dedup();
                (links, dest_obs)
            },
        );

        drop(span);

        // ---- reduction: concatenate shard outputs, restore the total
        // order, and fold — equal inputs in any shard distribution sort to
        // the same sequence, so the result is shard-count-invariant.
        let span = rec.span(obs::names::PHASE1_REDUCE);
        let mut link_obs: Vec<LinkObs> = Vec::new();
        let mut dest_obs: Vec<(u32, Asn)> = Vec::new();
        for (l, d) in obs_shards {
            link_obs.extend(l);
            dest_obs.extend(d);
        }
        dest_obs.sort_unstable();
        dest_obs.dedup();
        for (ifidx, asn) in dest_obs {
            g.iface_dests[ifidx as usize].insert(asn);
        }
        link_obs.sort_unstable();
        link_obs.dedup();
        let mut k = 0;
        while k < link_obs.len() {
            let (ir, dst) = (link_obs[k].ir, link_obs[k].dst);
            let mut label = link_obs[k].label;
            let mut origins: BTreeSet<Asn> = BTreeSet::new();
            let mut dests: BTreeSet<Asn> = BTreeSet::new();
            while k < link_obs.len() && (link_obs[k].ir, link_obs[k].dst) == (ir, dst) {
                let o = link_obs[k];
                label = label.min(o.label); // keep the highest confidence
                if o.origin.is_some() {
                    origins.insert(o.origin);
                }
                if o.dest.is_some() {
                    dests.insert(o.dest);
                }
                // Predecessor record for §6.2 interface voting.
                g.preds[dst as usize]
                    .entry(IrId(ir))
                    .or_default()
                    .insert(IfIdx(o.pred));
                k += 1;
            }
            // Runs arrive in ascending (ir, dst) order, so each IR's link
            // vector comes out sorted by destination interface.
            g.irs[ir as usize].links.push(Link {
                dst: IfIdx(dst),
                label,
                origins,
                dests,
            });
        }

        drop(span);

        // ---- per-IR metadata: origin-AS unions and §4.4-filtered
        // destination sets, chunked over the IR space. Each task owns a
        // private relationship cache; hit/miss tallies are
        // execution-dependent (the split varies with the thread count), so
        // they merge into the exec class in task order.
        let span = rec.span(obs::names::PHASE1_METADATA);
        let n_irs = g.irs.len();
        let graph = &g;
        let ir_batch = wp.batch_size(n_irs);
        let meta_shards = wp.run(
            obs::names::EXEC_POOL_BUSY_GRAPH,
            task_count(n_irs, ir_batch),
            |t| {
                let (lo, hi) = task_range(n_irs, t, ir_batch);
                let mut cache = RelQueryCache::new(rels, cones);
                let mut out: Vec<(BTreeSet<Asn>, BTreeSet<Asn>)> = Vec::with_capacity(hi - lo);
                for ir in &graph.irs[lo..hi] {
                    let mut origins: BTreeSet<Asn> = BTreeSet::new();
                    let mut dests: BTreeSet<Asn> = BTreeSet::new();
                    for &ifidx in &ir.ifaces {
                        let o = graph.iface_origin[ifidx.0 as usize];
                        if o.asn.is_some() && o.kind != OriginKind::Ixp {
                            origins.insert(o.asn);
                        }
                        let raw = &graph.iface_dests[ifidx.0 as usize];
                        dests.extend(filtered_iface_dests(raw, o.asn, cfg, &mut cache));
                    }
                    out.push((origins, dests));
                }
                let mut sheet = obs::MetricSheet::new();
                let stats = cache.stats();
                sheet.add_exec(obs::names::EXEC_CACHE_HITS, stats.hits);
                sheet.add_exec(obs::names::EXEC_CACHE_MISSES, stats.misses);
                (out, sheet)
            },
        );
        let mut merged = obs::MetricSheet::new();
        let mut meta: Vec<(BTreeSet<Asn>, BTreeSet<Asn>)> = Vec::with_capacity(n_irs);
        for (out, sheet) in meta_shards {
            meta.extend(out);
            merged.merge(&sheet);
        }
        rec.absorb(&merged);
        for (ir, (origins, dests)) in g.irs.iter_mut().zip(meta) {
            ir.origins = origins;
            ir.dests = dests;
        }
        drop(span);

        // ---- refinement shard plan (link-connected components, §6.3) ----
        let span = rec.span(obs::names::PHASE1_SHARD_PLAN);
        g.shards = ShardPlan::compute(&g.irs, &g.iface_ir);
        drop(span);

        g
    }

    /// IRs with no outgoing links (phase 2 targets).
    pub fn last_hop_irs(&self) -> impl Iterator<Item = &Ir> {
        self.irs.iter().filter(|ir| ir.links.is_empty())
    }

    /// IRs with at least one outgoing link (phase 3 targets).
    pub fn mid_path_irs(&self) -> impl Iterator<Item = &Ir> {
        self.irs.iter().filter(|ir| !ir.links.is_empty())
    }

    /// The interface for an address.
    pub fn iface_of_addr(&self, addr: u32) -> Option<IfIdx> {
        self.interner.id(addr).map(IfIdx)
    }

    /// The IR carrying an address.
    pub fn ir_of_addr(&self, addr: u32) -> Option<IrId> {
        self.iface_of_addr(addr)
            .map(|i| self.iface_ir[i.0 as usize])
    }

    /// Distribution of best link labels, for the Table 3 statistics.
    pub fn label_distribution(&self) -> BTreeMap<LinkLabel, usize> {
        let mut out = BTreeMap::new();
        for ir in &self.irs {
            for l in &ir.links {
                *out.entry(l.label).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total link count.
    pub fn link_count(&self) -> usize {
        self.irs.iter().map(|ir| ir.links.len()).sum()
    }
}

/// Table 3's labelling rules.
fn link_label(dist: u8, ox: OriginInfo, oy: OriginInfo, reply: ReplyType) -> LinkLabel {
    if reply == ReplyType::EchoReply {
        // Echo replies only prove the address is on the responding router.
        if dist == 1 || (ox.asn.is_some() && ox.asn == oy.asn) {
            LinkLabel::Echo
        } else {
            LinkLabel::Multihop
        }
    } else if dist == 1 || (ox.asn.is_some() && ox.asn == oy.asn) {
        LinkLabel::Nexthop
    } else {
        LinkLabel::Multihop
    }
}

/// §4.4's per-interface destination filter: a set of exactly two ASes, one
/// matching the interface origin and the other a small-cone AS with no
/// BGP-observable relationship to it, indicates a reallocated prefix; the
/// larger-cone AS (the reallocating provider) is removed. Cone sizes and
/// relationship probes go through the worker's memoized cache.
fn filtered_iface_dests(
    raw: &BTreeSet<Asn>,
    origin: Asn,
    cfg: &Config,
    cache: &mut RelQueryCache<'_>,
) -> BTreeSet<Asn> {
    if !cfg.enable_realloc || raw.len() != 2 || origin.is_none() || !raw.contains(&origin) {
        return raw.clone();
    }
    let other = *raw.iter().find(|&&a| a != origin).expect("two elements");
    if cache.cone_size(other) > cfg.realloc_cone_max || cache.has_relationship(origin, other) {
        return raw.clone();
    }
    // Remove the AS with the larger cone (the provider).
    let drop = if cache.cone_size(origin) >= cache.cone_size(other) {
        origin
    } else {
        other
    };
    raw.iter().copied().filter(|&a| a != drop).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Prefix;
    use traceroute::{Hop, StopReason};

    fn cfg() -> Config {
        Config::default()
    }

    fn tr(dst: u32, hops: &[(u8, u32, ReplyType)]) -> Trace {
        let max_ttl = hops.iter().map(|&(t, _, _)| t).max().unwrap_or(1);
        let mut v: Vec<Option<Hop>> = vec![None; max_ttl as usize];
        for &(ttl, addr, reply) in hops {
            v[ttl as usize - 1] = Some(Hop { addr, reply });
        }
        Trace {
            monitor: "vp".into(),
            src: 1,
            dst,
            hops: v,
            stop: StopReason::Completed,
        }
    }

    /// Address plan: 10.1.x = AS1, 10.2.x = AS2, 10.3.x = AS3.
    fn oracle() -> IpToAs {
        IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
            ("10.3.0.0/16".parse::<Prefix>().unwrap(), Asn(3)),
        ])
    }

    fn a(s: &str) -> u32 {
        net_types::parse_ipv4(s).unwrap()
    }

    const TE: ReplyType = ReplyType::TimeExceeded;
    const ER: ReplyType = ReplyType::EchoReply;

    fn build(traces: &[Trace], aliases: &AliasSets) -> IrGraph {
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        IrGraph::build(traces, aliases, &oracle(), &cfg(), &rels, &cones)
    }

    #[test]
    fn singleton_irs_without_aliases() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.iface_addrs.len(), 2);
        assert_eq!(g.irs.len(), 2);
        assert_ne!(g.ir_of_addr(a("10.1.0.1")), g.ir_of_addr(a("10.2.0.1")));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn alias_groups_become_irs() {
        let traces = [
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
            ),
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.2"), TE), (2, a("10.2.0.1"), TE)],
            ),
        ];
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.1.0.2")])]);
        let g = build(&traces, &aliases);
        assert_eq!(g.irs.len(), 2); // aliased pair + the 10.2 singleton
        let ir = g.ir_of_addr(a("10.1.0.1")).unwrap();
        assert_eq!(g.ir_of_addr(a("10.1.0.2")), Some(ir));
        // The merged IR has ONE link to 10.2.0.1 with both origins = {AS1}.
        let ir = &g.irs[ir.0 as usize];
        assert_eq!(ir.links.len(), 1);
        assert_eq!(ir.links[0].origins, BTreeSet::from([Asn(1)]));
        assert_eq!(ir.origins, BTreeSet::from([Asn(1)]));
    }

    #[test]
    fn nexthop_label_for_adjacent() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        let dist = g.label_distribution();
        assert_eq!(dist.get(&LinkLabel::Nexthop), Some(&1));
    }

    #[test]
    fn multihop_label_across_gap_different_origin() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (3, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Multihop), Some(&1));
    }

    #[test]
    fn nexthop_label_across_gap_same_origin() {
        let traces = [tr(
            a("10.1.0.99"),
            &[(1, a("10.1.0.1"), TE), (4, a("10.1.0.2"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Nexthop), Some(&1));
    }

    #[test]
    fn echo_label() {
        let traces = [tr(
            a("10.2.0.1"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), ER)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.label_distribution().get(&LinkLabel::Echo), Some(&1));
    }

    #[test]
    fn best_label_wins_on_merge() {
        let traces = [
            // Multihop observation...
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (3, a("10.2.0.1"), TE)],
            ),
            // ...then a Nexthop observation of the same link.
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
            ),
        ];
        let g = build(&traces, &AliasSets::empty());
        let dist = g.label_distribution();
        assert_eq!(dist.get(&LinkLabel::Nexthop), Some(&1));
        assert_eq!(dist.get(&LinkLabel::Multihop), None);
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn origin_sets_accumulate_per_link() {
        // Fig. 5 of the paper: two different prior interfaces on one IR.
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.3.0.1")])]);
        let traces = [
            tr(
                a("10.2.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
            tr(
                a("10.2.0.99"),
                &[(1, a("10.3.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
        ];
        let g = build(&traces, &aliases);
        let ir = &g.irs[g.ir_of_addr(a("10.1.0.1")).unwrap().0 as usize];
        assert_eq!(ir.links.len(), 1);
        assert_eq!(ir.links[0].origins, BTreeSet::from([Asn(1), Asn(3)]));
    }

    #[test]
    fn dest_sets_exclude_echo_last_hop() {
        let traces = [tr(
            a("10.2.0.1"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), ER)],
        )];
        let g = build(&traces, &AliasSets::empty());
        // 10.1.0.1 records dest AS2; the echo responder records nothing.
        let i1 = g.iface_of_addr(a("10.1.0.1")).unwrap();
        let i2 = g.iface_of_addr(a("10.2.0.1")).unwrap();
        assert_eq!(g.iface_dests[i1.0 as usize], BTreeSet::from([Asn(2)]));
        assert!(g.iface_dests[i2.0 as usize].is_empty());
    }

    #[test]
    fn realloc_filter_drops_provider() {
        // Interface origin AS1 (provider, big cone); dests {AS1, AS3} where
        // AS3 is a small-cone AS with no relationship to AS1.
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(1), Asn(2)); // gives AS1 a cone of 2
        let cones = CustomerCones::compute(&rels);
        let mut cache = RelQueryCache::new(&rels, &cones);
        let raw = BTreeSet::from([Asn(1), Asn(3)]);
        let out = filtered_iface_dests(&raw, Asn(1), &cfg(), &mut cache);
        assert_eq!(out, BTreeSet::from([Asn(3)]));
        // With a known relationship, nothing is filtered.
        let mut rels2 = AsRelationships::new();
        rels2.add_p2c(Asn(1), Asn(3));
        let cones2 = CustomerCones::compute(&rels2);
        let mut cache2 = RelQueryCache::new(&rels2, &cones2);
        let out2 = filtered_iface_dests(&raw, Asn(1), &cfg(), &mut cache2);
        assert_eq!(out2, raw);
    }

    #[test]
    fn preds_track_prior_interfaces() {
        let traces = [
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.5"), TE)],
            ),
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.2"), TE), (2, a("10.2.0.5"), TE)],
            ),
        ];
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.1.0.2")])]);
        let g = build(&traces, &aliases);
        let yi = g.iface_of_addr(a("10.2.0.5")).unwrap();
        let ir = g.ir_of_addr(a("10.1.0.1")).unwrap();
        let preds = &g.preds[yi.0 as usize];
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[&ir].len(), 2, "both prior interfaces recorded");
    }

    #[test]
    fn last_hop_vs_mid_path_partition() {
        let traces = [tr(
            a("10.3.0.99"),
            &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.mid_path_irs().count(), 1);
        assert_eq!(g.last_hop_irs().count(), 1);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        // A corpus exercising every accumulator: alias-grouped IRs, echo
        // last hops, the same link observed with different labels, and
        // destination sets fed by many traces.
        let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.1"), a("10.1.0.2")])]);
        let mut traces = Vec::new();
        for i in 0..40u32 {
            let leaf = a("10.2.0.1") + (i % 7);
            traces.push(tr(
                a("10.3.0.99") + i,
                &[
                    (1, a("10.1.0.1") + (i % 3), TE),
                    (2, leaf, TE),
                    (4, a("10.3.0.7"), TE),
                ],
            ));
            traces.push(tr(leaf, &[(1, a("10.1.0.2"), TE), (2, leaf, ER)]));
        }
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        let build_at = |threads: usize| {
            let cfg = Config {
                threads,
                ..Config::default()
            };
            IrGraph::build(&traces, &aliases, &oracle(), &cfg, &rels, &cones)
        };
        let base = build_at(1);
        for threads in [2, 3, 8] {
            let g = build_at(threads);
            assert_eq!(g.interner, base.interner, "threads={threads}");
            assert_eq!(g.iface_addrs, base.iface_addrs, "threads={threads}");
            assert_eq!(g.iface_origin, base.iface_origin, "threads={threads}");
            assert_eq!(g.iface_ir, base.iface_ir, "threads={threads}");
            assert_eq!(g.iface_dests, base.iface_dests, "threads={threads}");
            assert_eq!(g.preds, base.preds, "threads={threads}");
            assert_eq!(
                serde_json::to_string(&g.irs).unwrap(),
                serde_json::to_string(&base.irs).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_corpus_builds_at_any_thread_count() {
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        let cfg = Config {
            threads: 8,
            ..Config::default()
        };
        let g = IrGraph::build(&[], &AliasSets::empty(), &oracle(), &cfg, &rels, &cones);
        assert!(g.irs.is_empty());
        assert!(g.iface_addrs.is_empty());
    }

    #[test]
    fn build_with_obs_records_worker_count() {
        let traces = [
            tr(
                a("10.3.0.99"),
                &[(1, a("10.1.0.1"), TE), (2, a("10.2.0.1"), TE)],
            ),
            tr(
                a("10.3.0.98"),
                &[(1, a("10.1.0.2"), TE), (2, a("10.2.0.1"), TE)],
            ),
        ];
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        let cfg = Config {
            threads: 2,
            ..Config::default()
        };
        let rec = obs::Recorder::new(false);
        IrGraph::build_with_obs(
            &traces,
            &AliasSets::empty(),
            &oracle(),
            &cfg,
            &rels,
            &cones,
            &rec,
        );
        let report = rec.report();
        assert_eq!(report.exec[obs::names::EXEC_GRAPH_WORKERS], 2);
        assert!(report.exec.contains_key(obs::names::EXEC_CACHE_HITS));
        assert!(report.exec.contains_key(obs::names::EXEC_CACHE_MISSES));
    }

    #[test]
    fn self_loops_and_repeats_skipped() {
        let traces = [tr(
            a("10.3.0.99"),
            &[
                (1, a("10.1.0.1"), TE),
                (2, a("10.1.0.1"), TE), // routing artifact: repeated addr
                (3, a("10.2.0.1"), TE),
            ],
        )];
        let g = build(&traces, &AliasSets::empty());
        assert_eq!(g.link_count(), 1);
    }
}
