//! Result serialization, mirroring the shape of the released bdrmapIT
//! tool's output: one CSV of per-address router annotations, one CSV of
//! inferred interdomain links.

use crate::Annotated;
use net_types::{format_ipv4, parse_ipv4, Asn};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes per-address annotations as CSV:
/// `addr,ir,asn,origin_asn,conn_asn`.
///
/// * `asn` — the inferred operator of the router carrying the address;
/// * `origin_asn` — the BGP/RIR origin of the address (0 = unannounced/IXP);
/// * `conn_asn` — the interface annotation (the AS on the other side of the
///   link the interface terminates; 0 = none).
pub fn write_annotations<W: Write>(mut w: W, result: &Annotated) -> io::Result<()> {
    writeln!(w, "addr,ir,asn,origin_asn,conn_asn")?;
    for (idx, &addr) in result.graph.iface_addrs.iter().enumerate() {
        let ir = result.graph.iface_ir[idx];
        let asn = result.state.router[ir.0 as usize];
        let origin = result.graph.iface_origin[idx].asn;
        let conn = result.state.iface[idx];
        writeln!(
            w,
            "{},{},{},{},{}",
            format_ipv4(addr),
            ir.0,
            asn.0,
            origin.0,
            conn.0
        )?;
    }
    Ok(())
}

/// Writes inferred interdomain links as CSV:
/// `ir_asn,conn_asn,iface_addr,last_hop`.
pub fn write_links<W: Write>(mut w: W, result: &Annotated) -> io::Result<()> {
    writeln!(w, "ir_asn,conn_asn,iface_addr,last_hop")?;
    for link in result.interdomain_links() {
        writeln!(
            w,
            "{},{},{},{}",
            link.ir_as.0,
            link.conn_as.0,
            format_ipv4(link.iface_addr),
            link.last_hop as u8
        )?;
    }
    Ok(())
}

/// A parsed annotation row (for downstream consumers and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnotationRow {
    /// Interface address.
    pub addr: u32,
    /// IR index.
    pub ir: u32,
    /// Inferred router operator (0 = unannotated).
    pub asn: Asn,
    /// Address origin AS.
    pub origin: Asn,
    /// Connected-AS annotation.
    pub conn: Asn,
}

/// Reads an annotations CSV produced by [`write_annotations`].
pub fn read_annotations<R: Read>(r: R) -> io::Result<Vec<AnnotationRow>> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: malformed annotation row", i + 1),
            )
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(bad());
        }
        out.push(AnnotationRow {
            addr: parse_ipv4(fields[0]).ok_or_else(bad)?,
            ir: fields[1].parse().map_err(|_| bad())?,
            asn: Asn(fields[2].parse().map_err(|_| bad())?),
            origin: Asn(fields[3].parse().map_err(|_| bad())?),
            conn: Asn(fields[4].parse().map_err(|_| bad())?),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bdrmapit, Config};
    use alias::AliasSets;
    use as_rel::AsRelationships;
    use bgp::IpToAs;
    use net_types::Prefix;
    use traceroute::{Hop, ReplyType, StopReason, Trace};

    fn result() -> Annotated {
        let oracle = IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
        ]);
        let traces = [Trace {
            monitor: "vp".into(),
            src: 1,
            dst: net_types::parse_ipv4("10.2.0.99").unwrap(),
            hops: vec![
                Some(Hop {
                    addr: net_types::parse_ipv4("10.1.0.1").unwrap(),
                    reply: ReplyType::TimeExceeded,
                }),
                Some(Hop {
                    addr: net_types::parse_ipv4("10.2.0.1").unwrap(),
                    reply: ReplyType::TimeExceeded,
                }),
            ],
            stop: StopReason::GapLimit,
        }];
        Bdrmapit::new(Config::default()).run(
            &traces,
            &AliasSets::empty(),
            &oracle,
            &AsRelationships::new(),
        )
    }

    #[test]
    fn annotations_roundtrip() {
        let r = result();
        let mut buf = Vec::new();
        write_annotations(&mut buf, &r).unwrap();
        let rows = read_annotations(&buf[..]).unwrap();
        assert_eq!(rows.len(), r.graph.iface_addrs.len());
        for row in &rows {
            let idx = r.graph.iface_of_addr(row.addr).expect("known addr");
            assert_eq!(row.origin, r.graph.iface_origin[idx.0 as usize].asn);
        }
    }

    #[test]
    fn links_csv_has_header_and_rows() {
        let r = result();
        let mut buf = Vec::new();
        write_links(&mut buf, &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ir_asn,conn_asn,iface_addr,last_hop\n"));
        assert_eq!(text.lines().count(), 1 + r.interdomain_links().len());
    }

    #[test]
    fn read_rejects_malformed() {
        assert!(read_annotations(&b"header\nnot,a,row\n"[..]).is_err());
        assert!(read_annotations(&b"header\n1.2.3.4,0,1,2,x\n"[..]).is_err());
        // Header-only is fine.
        assert!(read_annotations(&b"addr,ir,asn,origin_asn,conn_asn\n"[..])
            .unwrap()
            .is_empty());
    }
}
