//! Result serialization, mirroring the shape of the released bdrmapIT
//! tool's output: one CSV of per-address router annotations, one CSV of
//! inferred interdomain links.

use crate::Annotated;
use net_types::{format_ipv4, parse_ipv4, Asn};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes per-address annotations as CSV:
/// `addr,ir,asn,origin_asn,conn_asn`.
///
/// * `asn` — the inferred operator of the router carrying the address;
/// * `origin_asn` — the BGP/RIR origin of the address (0 = unannounced/IXP);
/// * `conn_asn` — the interface annotation (the AS on the other side of the
///   link the interface terminates; 0 = none).
pub fn write_annotations<W: Write>(mut w: W, result: &Annotated) -> io::Result<()> {
    writeln!(w, "addr,ir,asn,origin_asn,conn_asn")?;
    for (idx, &addr) in result.graph.iface_addrs.iter().enumerate() {
        let ir = result.graph.iface_ir[idx];
        let asn = result.state.router[ir.0 as usize];
        let origin = result.graph.iface_origin[idx].asn;
        let conn = result.state.iface[idx];
        writeln!(
            w,
            "{},{},{},{},{}",
            format_ipv4(addr),
            ir.0,
            asn.0,
            origin.0,
            conn.0
        )?;
    }
    Ok(())
}

/// Writes inferred interdomain links as CSV:
/// `ir_asn,conn_asn,iface_addr,last_hop`.
pub fn write_links<W: Write>(mut w: W, result: &Annotated) -> io::Result<()> {
    writeln!(w, "ir_asn,conn_asn,iface_addr,last_hop")?;
    for link in result.interdomain_links() {
        writeln!(
            w,
            "{},{},{},{}",
            link.ir_as.0,
            link.conn_as.0,
            format_ipv4(link.iface_addr),
            link.last_hop as u8
        )?;
    }
    Ok(())
}

/// Why reading an output CSV failed: transport, or a specific bad row.
///
/// `Malformed` pins the 1-based CSV row index (the header counts as row
/// one) and a field-level reason, so a consumer staring at a multi-million
/// row annotations file learns exactly where the damage is.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A data row did not parse.
    Malformed {
        /// 1-based row index in the file (the header is row 1).
        row: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Malformed { row, reason } => {
                write!(f, "malformed row {row}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// A parsed annotation row (for downstream consumers and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnotationRow {
    /// Interface address.
    pub addr: u32,
    /// IR index.
    pub ir: u32,
    /// Inferred router operator (0 = unannotated).
    pub asn: Asn,
    /// Address origin AS.
    pub origin: Asn,
    /// Connected-AS annotation.
    pub conn: Asn,
}

/// A parsed interdomain-link row (for downstream consumers and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRow {
    /// Inferred operator of the near-side router.
    pub ir_as: Asn,
    /// Inferred operator on the far side.
    pub conn_as: Asn,
    /// Address of the far-side interface.
    pub iface_addr: u32,
    /// Whether the near IR was annotated by the last-hop phase.
    pub last_hop: bool,
}

fn parse_field<T: std::str::FromStr>(text: &str, row: usize, what: &str) -> Result<T, ReadError> {
    text.parse().map_err(|_| ReadError::Malformed {
        row,
        reason: format!("bad {what} {text:?}"),
    })
}

fn parse_addr_field(text: &str, row: usize, what: &str) -> Result<u32, ReadError> {
    parse_ipv4(text).ok_or_else(|| ReadError::Malformed {
        row,
        reason: format!("bad {what} {text:?}"),
    })
}

fn split_row(line: &str, row: usize, want: usize) -> Result<Vec<&str>, ReadError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != want {
        return Err(ReadError::Malformed {
            row,
            reason: format!("expected {want} fields, found {}", fields.len()),
        });
    }
    Ok(fields)
}

/// Reads an annotations CSV produced by [`write_annotations`].
pub fn read_annotations<R: Read>(r: R) -> Result<Vec<AnnotationRow>, ReadError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let row = i + 1;
        let fields = split_row(&line, row, 5)?;
        out.push(AnnotationRow {
            addr: parse_addr_field(fields[0], row, "address")?,
            ir: parse_field(fields[1], row, "ir index")?,
            asn: Asn(parse_field(fields[2], row, "asn")?),
            origin: Asn(parse_field(fields[3], row, "origin asn")?),
            conn: Asn(parse_field(fields[4], row, "conn asn")?),
        });
    }
    Ok(out)
}

/// Reads a links CSV produced by [`write_links`].
pub fn read_links<R: Read>(r: R) -> Result<Vec<LinkRow>, ReadError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let row = i + 1;
        let fields = split_row(&line, row, 4)?;
        let last_hop = match fields[3] {
            "0" => false,
            "1" => true,
            other => {
                return Err(ReadError::Malformed {
                    row,
                    reason: format!("bad last_hop flag {other:?} (want 0 or 1)"),
                })
            }
        };
        out.push(LinkRow {
            ir_as: Asn(parse_field(fields[0], row, "ir asn")?),
            conn_as: Asn(parse_field(fields[1], row, "conn asn")?),
            iface_addr: parse_addr_field(fields[2], row, "interface address")?,
            last_hop,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bdrmapit, Config};
    use alias::AliasSets;
    use as_rel::AsRelationships;
    use bgp::IpToAs;
    use net_types::Prefix;
    use traceroute::{Hop, ReplyType, StopReason, Trace};

    fn result() -> Annotated {
        let oracle = IpToAs::from_pairs([
            ("10.1.0.0/16".parse::<Prefix>().unwrap(), Asn(1)),
            ("10.2.0.0/16".parse::<Prefix>().unwrap(), Asn(2)),
        ]);
        let traces = [Trace {
            monitor: "vp".into(),
            src: 1,
            dst: net_types::parse_ipv4("10.2.0.99").unwrap(),
            hops: vec![
                Some(Hop {
                    addr: net_types::parse_ipv4("10.1.0.1").unwrap(),
                    reply: ReplyType::TimeExceeded,
                }),
                Some(Hop {
                    addr: net_types::parse_ipv4("10.2.0.1").unwrap(),
                    reply: ReplyType::TimeExceeded,
                }),
            ],
            stop: StopReason::GapLimit,
        }];
        Bdrmapit::new(Config::default()).run(
            &traces,
            &AliasSets::empty(),
            &oracle,
            &AsRelationships::new(),
        )
    }

    #[test]
    fn annotations_roundtrip() {
        let r = result();
        let mut buf = Vec::new();
        write_annotations(&mut buf, &r).unwrap();
        let rows = read_annotations(&buf[..]).unwrap();
        assert_eq!(rows.len(), r.graph.iface_addrs.len());
        for row in &rows {
            let idx = r.graph.iface_of_addr(row.addr).expect("known addr");
            assert_eq!(row.origin, r.graph.iface_origin[idx.0 as usize].asn);
        }
    }

    /// The exact round-trip contract: every field of every row survives
    /// write → read, and re-serializing the parsed rows reproduces the file
    /// byte for byte.
    #[test]
    fn annotations_roundtrip_is_exact() {
        let r = result();
        let mut buf = Vec::new();
        write_annotations(&mut buf, &r).unwrap();
        let rows = read_annotations(&buf[..]).unwrap();
        for (idx, row) in rows.iter().enumerate() {
            let ir = r.graph.iface_ir[idx];
            assert_eq!(row.addr, r.graph.iface_addrs[idx]);
            assert_eq!(row.ir, ir.0);
            assert_eq!(row.asn, r.state.router[ir.0 as usize]);
            assert_eq!(row.origin, r.graph.iface_origin[idx].asn);
            assert_eq!(row.conn, r.state.iface[idx]);
        }
        let mut again = String::from("addr,ir,asn,origin_asn,conn_asn\n");
        for row in &rows {
            again.push_str(&format!(
                "{},{},{},{},{}\n",
                format_ipv4(row.addr),
                row.ir,
                row.asn.0,
                row.origin.0,
                row.conn.0
            ));
        }
        assert_eq!(again.as_bytes(), &buf[..]);
    }

    #[test]
    fn links_csv_has_header_and_rows() {
        let r = result();
        let mut buf = Vec::new();
        write_links(&mut buf, &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ir_asn,conn_asn,iface_addr,last_hop\n"));
        assert_eq!(text.lines().count(), 1 + r.interdomain_links().len());
    }

    /// The previously-missing links round-trip: parsed rows match the
    /// in-memory link list field for field, and re-serialize byte-exactly.
    #[test]
    fn links_roundtrip_is_exact() {
        let r = result();
        let links = r.interdomain_links();
        assert!(!links.is_empty(), "fixture must produce links");
        let mut buf = Vec::new();
        write_links(&mut buf, &r).unwrap();
        let rows = read_links(&buf[..]).unwrap();
        assert_eq!(rows.len(), links.len());
        for (row, link) in rows.iter().zip(&links) {
            assert_eq!(row.ir_as, link.ir_as);
            assert_eq!(row.conn_as, link.conn_as);
            assert_eq!(row.iface_addr, link.iface_addr);
            assert_eq!(row.last_hop, link.last_hop);
        }
        let mut again = String::from("ir_asn,conn_asn,iface_addr,last_hop\n");
        for row in &rows {
            again.push_str(&format!(
                "{},{},{},{}\n",
                row.ir_as.0,
                row.conn_as.0,
                format_ipv4(row.iface_addr),
                row.last_hop as u8
            ));
        }
        assert_eq!(again.as_bytes(), &buf[..]);
    }

    #[test]
    fn read_rejects_malformed_with_row_and_reason() {
        let err = read_annotations(&b"header\nnot,a,row\n"[..]).unwrap_err();
        match &err {
            ReadError::Malformed { row, reason } => {
                assert_eq!(*row, 2);
                assert!(reason.contains("expected 5 fields"), "{reason}");
            }
            other => panic!("want Malformed, got {other:?}"),
        }
        let err = read_annotations(&b"header\n1.2.3.4,0,1,2,3\n1.2.3.4,0,1,2,x\n"[..]).unwrap_err();
        match &err {
            ReadError::Malformed { row, reason } => {
                assert_eq!(*row, 3, "second data row");
                assert!(reason.contains("conn asn"), "{reason}");
            }
            other => panic!("want Malformed, got {other:?}"),
        }
        let err = read_links(&b"header\n1,2,1.2.3.4,2\n"[..]).unwrap_err();
        match &err {
            ReadError::Malformed { row, reason } => {
                assert_eq!(*row, 2);
                assert!(reason.contains("last_hop"), "{reason}");
            }
            other => panic!("want Malformed, got {other:?}"),
        }
        let err = read_links(&b"header\n1,2,999.2.3.4,1\n"[..]).unwrap_err();
        assert!(err.to_string().contains("malformed row 2"), "{err}");
        // Header-only is fine.
        assert!(read_annotations(&b"addr,ir,asn,origin_asn,conn_asn\n"[..])
            .unwrap()
            .is_empty());
        assert!(read_links(&b"ir_asn,conn_asn,iface_addr,last_hop\n"[..])
            .unwrap()
            .is_empty());
    }
}
