//! **bdrmapIT**: mapping router ownership at Internet scale.
//!
//! This crate implements the algorithm of Marder et al., *"Pushing the
//! Boundaries with bdrmapIT: Mapping Router Ownership at Internet Scale"*
//! (IMC 2018). Given a traceroute corpus, alias-resolution data, an
//! IP→origin-AS oracle, and AS relationships, it infers the AS *operating*
//! every observed router and annotates every interface with the AS on the
//! other side of its link — from which interdomain links fall out.
//!
//! The three phases follow the paper exactly:
//!
//! 1. **Construct the graph** (§4, [`graph`]): build inferred routers (IRs)
//!    from alias sets, create IR→interface links with N/E/M confidence
//!    labels, record per-link origin-AS sets and per-IR destination-AS sets
//!    (with reallocated-prefix filtering).
//! 2. **Annotate last hops** (§5, [`lasthop`]): IRs with no outgoing links
//!    get a frozen annotation from their origin and destination AS sets
//!    (Algorithm 1).
//! 3. **Graph refinement** (§6, [`refine`]): iterate router annotation
//!    (Algorithm 2 with the link-vote heuristics of Algorithm 3, the
//!    reallocated-prefix correction, the multihomed/peers exceptions, and
//!    hidden-AS detection) and interface annotation until the global state
//!    repeats.
//!
//! ```no_run
//! use bdrmapit_core::{Bdrmapit, Config};
//! # fn inputs() -> (Vec<traceroute::Trace>, alias::AliasSets, bgp::IpToAs,
//! #                 as_rel::AsRelationships) { unimplemented!() }
//! let (traces, aliases, ip2as, rels) = inputs();
//! let result = Bdrmapit::new(Config::default())
//!     .run(&traces, &aliases, &ip2as, &rels);
//! for link in result.interdomain_links() {
//!     println!("{} -- {}", link.ir_as, link.conn_as);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lasthop;
pub mod output;
pub mod refine;

pub use graph::{IfIdx, Ir, IrGraph, IrId, Link, LinkLabel};

use as_rel::{AsRelationships, CustomerCones};
use bgp::IpToAs;
use net_types::Asn;
use serde::{Deserialize, Serialize};

/// Algorithm configuration. Every heuristic the paper adds on top of plain
/// majority voting can be toggled for ablation studies; defaults match the
/// paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Phase 2 last-hop annotation (§5).
    pub enable_last_hop: bool,
    /// Third-party address detection (§6.1.1, Alg. 3 lines 6–8).
    pub enable_third_party: bool,
    /// Reallocated-prefix vote correction (§6.1.2) and destination-set
    /// filtering (§4.4).
    pub enable_realloc: bool,
    /// The multihomed-customer and multiple-peers/providers exceptions
    /// (§6.1.3).
    pub enable_exceptions: bool,
    /// Hidden-AS detection (§6.1.5).
    pub enable_hidden_as: bool,
    /// IXP vote heuristic (§6.1.1, Alg. 3 line 2).
    pub enable_ixp_heuristic: bool,
    /// Maximum customer-cone size for an AS to count as a reallocation
    /// customer (§4.4 uses 5).
    pub realloc_cone_max: usize,
    /// Safety cap on refinement iterations (the paper iterates to a
    /// repeated state; this bounds pathological inputs).
    pub max_iterations: usize,
    /// Worker threads for the phase-1 graph build and the phase-3
    /// refinement engine. `0` (the default) means all available
    /// parallelism; `1` forces the serial paths. Results are bit-identical
    /// for every value (see [`graph`] and `refine::parallel`).
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            enable_last_hop: true,
            enable_third_party: true,
            enable_realloc: true,
            enable_exceptions: true,
            enable_hidden_as: true,
            enable_ixp_heuristic: true,
            realloc_cone_max: 5,
            max_iterations: 100,
            threads: 0,
        }
    }
}

/// The bdrmapIT runner.
#[derive(Clone, Debug, Default)]
pub struct Bdrmapit {
    cfg: Config,
    obs: obs::Recorder,
    pool: Option<std::sync::Arc<pool::WorkerPool>>,
}

impl Bdrmapit {
    /// Creates a runner with the given configuration and telemetry off.
    pub fn new(cfg: Config) -> Self {
        Bdrmapit {
            cfg,
            obs: obs::Recorder::disabled(),
            pool: None,
        }
    }

    /// Attaches an observability recorder. Telemetry is write-only: the
    /// annotations produced by [`run`](Bdrmapit::run) are bit-identical with
    /// any recorder, including the disabled default.
    #[must_use]
    pub fn with_obs(mut self, rec: obs::Recorder) -> Self {
        self.obs = rec;
        self
    }

    /// Attaches a shared worker pool. Without one, [`run`](Bdrmapit::run)
    /// creates its own from [`Config::threads`]; with one, the caller's pool
    /// budget wins and its scheduling statistics accumulate across every
    /// phase dispatched on it (e.g. a probe campaign run beforehand).
    #[must_use]
    pub fn with_pool(mut self, pool: std::sync::Arc<pool::WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Runs all three phases and returns the annotated graph.
    pub fn run(
        &self,
        traces: &[traceroute::Trace],
        aliases: &alias::AliasSets,
        ip2as: &IpToAs,
        rels: &AsRelationships,
    ) -> Annotated {
        use obs::names;

        let wp = self.pool.clone().unwrap_or_else(|| {
            std::sync::Arc::new(pool::WorkerPool::with_recorder(
                self.cfg.threads,
                self.obs.clone(),
            ))
        });
        let cones = CustomerCones::compute(rels);
        let graph = {
            let _span = self.obs.span(names::PHASE_GRAPH);
            let graph = IrGraph::build_in_pool(
                traces, aliases, ip2as, &self.cfg, rels, &cones, &wp, &self.obs,
            );
            self.obs.add(names::GRAPH_IRS, graph.irs.len() as u64);
            self.obs
                .add(names::GRAPH_IFACES, graph.iface_addrs.len() as u64);
            self.obs.add(
                names::GRAPH_LINKS,
                graph.irs.iter().map(|ir| ir.links.len() as u64).sum(),
            );
            graph
        };
        let mut state = AnnotationState::new(&graph);
        if self.cfg.enable_last_hop {
            let _span = self.obs.span(names::PHASE_LASTHOP);
            lasthop::annotate_last_hops(&graph, rels, &cones, &mut state);
            self.obs.add(
                names::LASTHOP_FROZEN,
                state.frozen.iter().filter(|&&f| f).count() as u64,
            );
        }
        {
            let _span = self.obs.span(names::PHASE_REFINE);
            refine::refine_in_pool(&graph, rels, &cones, &self.cfg, &mut state, &wp, &self.obs);
        }
        Annotated { graph, state }
    }
}

/// Mutable annotation state threaded through phases 2 and 3.
#[derive(Clone, Debug)]
pub struct AnnotationState {
    /// Per-IR operating-AS annotation ([`Asn::NONE`] = not yet annotated).
    pub router: Vec<Asn>,
    /// Per-IR: annotation frozen by phase 2 (never revised in phase 3).
    pub frozen: Vec<bool>,
    /// Per-interface connected-AS annotation, indexed by [`IfIdx`].
    pub iface: Vec<Asn>,
    /// Refinement iterations executed.
    pub iterations: usize,
    /// Per-shard convergence hash traces, indexed by the shard's position in
    /// the [`ShardPlan`](refine::shard::ShardPlan): `[h_0, h_1, ..., h_n]`,
    /// the shard-state hash before refinement and after each iteration.
    /// Part of the determinism contract — serial and parallel runs must
    /// produce identical traces, not merely identical fixpoints.
    pub convergence_traces: Vec<Vec<u64>>,
}

impl AnnotationState {
    /// Fresh state: routers unannotated, interfaces initialized to their
    /// origin AS (§6 "prior to entering the graph refinement loop").
    pub fn new(graph: &IrGraph) -> Self {
        AnnotationState {
            router: vec![Asn::NONE; graph.irs.len()],
            frozen: vec![false; graph.irs.len()],
            iface: graph.iface_origin.iter().map(|o| o.asn).collect(),
            iterations: 0,
            convergence_traces: Vec::new(),
        }
    }
}

/// One inferred interdomain link: a router operated by `ir_as` connects,
/// through the interface at `iface_addr`, to a router operated by `conn_as`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InferredLink {
    /// The IR on the near side.
    pub ir: IrId,
    /// Inferred operator of the near-side router.
    pub ir_as: Asn,
    /// Address of the far-side interface.
    pub iface_addr: u32,
    /// Inferred operator on the far side.
    pub conn_as: Asn,
    /// Whether the near IR was annotated by the last-hop phase (its links
    /// are "last hop only" in the paper's Fig. 17 sense).
    pub last_hop: bool,
}

/// The algorithm output: the graph plus its final annotations.
#[derive(Debug)]
pub struct Annotated {
    /// The IR graph (phase 1 output).
    pub graph: IrGraph,
    /// Final annotations.
    pub state: AnnotationState,
}

impl Annotated {
    /// The inferred operator of the IR owning `addr`, if observed.
    pub fn owner_of_addr(&self, addr: u32) -> Option<Asn> {
        let ifidx = self.graph.iface_of_addr(addr)?;
        let ir = self.graph.iface_ir[ifidx.0 as usize];
        let asn = self.state.router[ir.0 as usize];
        asn.is_some().then_some(asn)
    }

    /// All inferred interdomain links, read off per interface exactly as
    /// Fig. 3 defines the annotations: an IR operated by `ir_as` holding an
    /// interface annotated `conn_as ≠ ir_as` connects, through that
    /// interface, to a router operated by `conn_as`.
    pub fn interdomain_links(&self) -> Vec<InferredLink> {
        let mut out = Vec::new();
        for (idx, &addr) in self.graph.iface_addrs.iter().enumerate() {
            let origin = self.graph.iface_origin[idx];
            let ir = self.graph.iface_ir[idx];
            let ir_as = self.state.router[ir.0 as usize];
            if ir_as.is_none() {
                continue;
            }
            if origin.kind == bgp::OriginKind::Ixp {
                // Public peering: the LAN address connects many networks, so
                // the interface annotation is not a single far side. Instead
                // every distinctly-annotated router observed sending into
                // this port peers with the port's operator (§3.1's exception
                // to the point-to-point assumption).
                for pred_ir in self.graph.preds[idx].keys() {
                    let pred_as = self.state.router[pred_ir.0 as usize];
                    if pred_as.is_some() && pred_as != ir_as {
                        out.push(InferredLink {
                            ir,
                            ir_as,
                            iface_addr: addr,
                            conn_as: pred_as,
                            last_hop: false,
                        });
                    }
                }
                continue;
            }
            let conn = self.state.iface[idx];
            if conn.is_none() || ir_as == conn {
                continue;
            }
            out.push(InferredLink {
                ir,
                ir_as,
                iface_addr: addr,
                conn_as: conn,
                // Links discoverable only because phase 2 attributed an IR
                // with no outgoing links (the Fig. 17 exclusion set).
                last_hop: self.graph.irs[ir.0 as usize].links.is_empty(),
            });
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Convenience: `(addr, inferred router AS)` for every observed
    /// interface.
    pub fn router_annotations(&self) -> Vec<(u32, Asn)> {
        self.graph
            .iface_addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                let ir = self.graph.iface_ir[i];
                (addr, self.state.router[ir.0 as usize])
            })
            .collect()
    }
}
