//! Router annotation (§6.1, Algorithm 2).

use crate::graph::{Ir, LinkLabel};
use crate::refine::parallel::{RouterView, SweepCtx};
use crate::refine::{exceptions, hidden, realloc, votes};
use as_rel::RelQueryCache;
use bgp::OriginKind;
use net_types::{Asn, Counter};
use std::collections::{BTreeMap, BTreeSet};

/// Annotates one IR (Algorithm 2), returning its new annotation
/// ([`Asn::NONE`] when no evidence exists at all). Reads annotation state
/// only through `view`, which presents exactly what the serial in-place
/// sweep would see at this IR's turn.
pub(crate) fn annotate_ir(ir: &Ir, view: &RouterView<'_>, ctx: &mut SweepCtx<'_>) -> Asn {
    // §4.2: use only the highest-confidence label class present — Nexthop
    // links when any exist, otherwise Echo, otherwise Multihop.
    let best_label = ir
        .links
        .iter()
        .map(|l| l.label)
        .min()
        .unwrap_or(LinkLabel::Multihop);
    let usable: Vec<bool> = ir.links.iter().map(|l| l.label == best_label).collect();

    // ---- Alg. 2 lines 3–7: per-link votes (Algorithm 3) ----
    let mut link_votes: Vec<Option<Asn>> = Vec::with_capacity(ir.links.len());
    for (i, l) in ir.links.iter().enumerate() {
        link_votes.push(if usable[i] {
            votes::link_vote(l, view, ctx)
        } else {
            None
        });
    }

    // ---- Alg. 2 line 8: reallocated-prefix correction (§6.1.2) ----
    if ctx.cfg.enable_realloc {
        realloc::correct_reallocated(ir, view, ctx, &mut link_votes, &usable);
    }

    // Tally V and the origin-set map M (Alg. 2 lines 5–7).
    let mut v: Counter<Asn> = Counter::new();
    let mut m: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    let mut link_vote_ases: BTreeSet<Asn> = BTreeSet::new();
    for (i, vote) in link_votes.iter().enumerate() {
        if let Some(a) = vote {
            v.add(*a);
            link_vote_ases.insert(*a);
            m.entry(*a)
                .or_default()
                .extend(ir.links[i].origins.iter().copied());
        }
    }

    // ---- Alg. 2 line 9: one vote per IR interface origin ----
    for &ifidx in &ir.ifaces {
        let o = ctx.graph.iface_origin[ifidx.0 as usize];
        if o.asn.is_some() && o.kind != OriginKind::Ixp {
            v.add(o.asn);
        }
    }

    if v.is_empty() {
        return Asn::NONE;
    }

    // ---- Alg. 2 line 10: exceptions (§6.1.3) ----
    if ctx.cfg.enable_exceptions {
        if let Some(a) = exceptions::check_exceptions(ir, &link_vote_ases, &v, ctx.cache.rels()) {
            ctx.sheet.inc(obs::names::REFINE_EXCEPTION_FIRINGS);
            return a;
        }
    }

    // ---- Alg. 2 lines 11–12: restricted election ----
    // R = origins ∪ subsequent ASes backed by a relationship with a prior
    // origin on their links.
    let mut r: BTreeSet<Asn> = ir.origins.clone();
    for (&cand, origins) in &m {
        if origins
            .iter()
            .any(|&o| o != cand && ctx.cache.has_relationship(o, cand))
        {
            r.insert(cand);
        }
    }
    if r != ir.origins {
        return elect(&v, &r, &mut ctx.cache);
    }

    // ---- Alg. 2 lines 13–14: open election + hidden-AS check ----
    let all: BTreeSet<Asn> = v.keys().copied().collect();
    let a = elect(&v, &all, &mut ctx.cache);
    if ctx.cfg.enable_hidden_as {
        let vote_origins = m.get(&a).cloned().unwrap_or_default();
        let replaced = hidden::check_hidden_as(ir, a, &vote_origins, ctx.cache.rels());
        if replaced != a {
            ctx.sheet.inc(obs::names::REFINE_HIDDEN_FIRINGS);
        }
        return replaced;
    }
    a
}

/// The election: most votes among `allowed`, ties to the smallest customer
/// cone then the lowest ASN (§6.1.4). Cone sizes go through the memo cache —
/// the same candidates recur every sweep.
fn elect(v: &Counter<Asn>, allowed: &BTreeSet<Asn>, cache: &mut RelQueryCache<'_>) -> Asn {
    let mut best: Option<(u64, Asn)> = None;
    for &cand in allowed {
        let count = v.get(&cand);
        if count == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((bc, ba)) => {
                count > bc
                    || (count == bc && (cache.cone_size(cand), cand) < (cache.cone_size(ba), ba))
            }
        };
        if better {
            best = Some((count, cand));
        }
    }
    best.map_or(Asn::NONE, |(_, a)| a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_rel::{AsRelationships, CustomerCones};

    fn elect_with(
        v: &Counter<Asn>,
        allowed: &BTreeSet<Asn>,
        rels: &AsRelationships,
        cones: &CustomerCones,
    ) -> Asn {
        let mut cache = RelQueryCache::new(rels, cones);
        elect(v, allowed, &mut cache)
    }

    #[test]
    fn elect_majority() {
        let mut v = Counter::new();
        v.add_n(Asn(1), 3);
        v.add_n(Asn(2), 5);
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        let allowed: BTreeSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        assert_eq!(elect_with(&v, &allowed, &rels, &cones), Asn(2));
    }

    #[test]
    fn elect_tie_smallest_cone() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(1), Asn(9));
        let cones = CustomerCones::compute(&rels);
        let mut v = Counter::new();
        v.add_n(Asn(1), 4);
        v.add_n(Asn(2), 4);
        let allowed: BTreeSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        // AS1 has cone 2; AS2 is a stub (cone 1) → the presumed customer.
        assert_eq!(elect_with(&v, &allowed, &rels, &cones), Asn(2));
    }

    #[test]
    fn elect_respects_allowed_set() {
        let mut v = Counter::new();
        v.add_n(Asn(1), 10);
        v.add_n(Asn(2), 1);
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        let allowed: BTreeSet<Asn> = [Asn(2)].into_iter().collect();
        assert_eq!(elect_with(&v, &allowed, &rels, &cones), Asn(2));
    }

    #[test]
    fn elect_empty() {
        let v = Counter::new();
        let rels = AsRelationships::new();
        let cones = CustomerCones::compute(&rels);
        assert_eq!(elect_with(&v, &BTreeSet::new(), &rels, &cones), Asn::NONE);
    }
}
