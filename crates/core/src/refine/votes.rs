//! Link-vote heuristics (§6.1.1, Algorithm 3).
//!
//! For each link `IR → j`, the vote is normally `j`'s interface annotation,
//! with three exceptions: the origin AS of `j` when it already appears in
//! the link's origin set (line 1); the top of the transit hierarchy when
//! `j` is an IXP address (line 2); and `j`'s *router* annotation when `j`
//! is unannounced or inferred to be a third-party address (lines 5–8).

use crate::graph::Link;
use crate::refine::parallel::{RouterView, SweepCtx};
use bgp::OriginKind;
use net_types::Asn;

/// Algorithm 3: the AS a single link votes for, or `None` when the link
/// contributes no information.
pub(crate) fn link_vote(link: &Link, view: &RouterView<'_>, ctx: &mut SweepCtx<'_>) -> Option<Asn> {
    let j = link.dst.0 as usize;
    let j_origin = ctx.graph.iface_origin[j];

    // Line 1: the subsequent origin already appears among the origins seen
    // prior to it — the link stays inside (or returns into) that AS.
    if j_origin.asn.is_some() && link.origins.contains(&j_origin.asn) {
        return Some(j_origin.asn);
    }

    // Line 2: IXP public peering address. Vote for the likely transit
    // provider among the prior origins: the largest customer cone.
    if j_origin.kind == OriginKind::Ixp {
        if !ctx.cfg.enable_ixp_heuristic {
            return None;
        }
        return ctx.cache.largest_cone(link.origins.iter().copied());
    }

    // Line 3: the annotation of j's router.
    let jr = ctx.graph.iface_ir[j];
    let as_j = view.router(jr);

    if as_j.is_none() {
        // j's IR not yet annotated (first iteration only): skip the
        // third-party tests entirely (§6.1.1) and use the interface
        // annotation, unless j is unannounced and thus mute.
        if j_origin.asn.is_none() {
            return None;
        }
        let ann = view.iface(link.dst);
        return ann.is_some().then_some(ann);
    }

    // Line 5: unannounced subsequent address — vote for its router's
    // annotation, letting chains of unannounced hops resolve over
    // iterations (Fig. 8).
    if j_origin.asn.is_none() {
        return Some(as_j);
    }

    // Lines 6–8: third-party detection. The origin of j disagrees with its
    // router's annotation, some prior origin has a relationship with that
    // router's AS (the probe could reach it without crossing j's origin AS),
    // and no probe crossing this link was ever destined to j's origin AS.
    if ctx.cfg.enable_third_party
        && j_origin.asn != as_j
        && link
            .origins
            .iter()
            .any(|&o| ctx.cache.has_relationship(o, as_j))
        && !link.dests.contains(&j_origin.asn)
    {
        ctx.sheet.inc(obs::names::REFINE_THIRD_PARTY_VOTES);
        return Some(as_j);
    }

    // Line 9: the interface annotation.
    let ann = view.iface(link.dst);
    if ann.is_some() {
        Some(ann)
    } else {
        Some(j_origin.asn)
    }
}
