//! Interface annotation (§6.2).
//!
//! An interface annotation names the AS on the *other side* of the link the
//! interface terminates (Fig. 3). If the interface's origin AS differs from
//! its router's annotation, the address was supplied by the connected
//! network, so the origin AS is the answer (Fig. 13a). Otherwise the
//! connected IRs vote — one vote per prior interface — with ties broken
//! toward the largest customer cone holding a BGP relationship with the
//! interface origin (Figs. 13b, 13c).

use crate::graph::IrGraph;
use crate::AnnotationState;
use as_rel::{AsRelationships, CustomerCones};
use bgp::OriginKind;
use net_types::{Asn, Counter};

/// Re-annotates every interface from the current router annotations.
pub fn annotate_interfaces(
    graph: &IrGraph,
    state: &mut AnnotationState,
    rels: &AsRelationships,
    cones: &CustomerCones,
) {
    for idx in 0..graph.iface_addrs.len() {
        let origin = graph.iface_origin[idx];
        // IXP LAN addresses connect many routers; the point-to-point
        // assumption doesn't hold, so they are left alone (§6.2).
        if origin.kind == OriginKind::Ixp {
            continue;
        }
        let ir = graph.iface_ir[idx];
        let r_ann = state.router[ir.0 as usize];
        if r_ann.is_none() {
            continue;
        }
        if origin.asn.is_some() && origin.asn != r_ann {
            // Fig. 13a: the address must come from the connected AS.
            state.iface[idx] = origin.asn;
            continue;
        }
        // Fig. 13b/13c: vote among connected IRs, one vote per interface of
        // theirs seen immediately prior to this one.
        let mut v: Counter<Asn> = Counter::new();
        for (pred_ir, prior_ifaces) in &graph.preds[idx] {
            let ann = state.router[pred_ir.0 as usize];
            if ann.is_some() {
                v.add_n(ann, prior_ifaces.len() as u64);
            }
        }
        if v.is_empty() {
            if origin.asn.is_some() {
                state.iface[idx] = origin.asn;
            }
            continue;
        }
        let tied = v.max_keys();
        let winner = if tied.len() == 1 {
            tied[0]
        } else {
            // Tie: largest cone among tied ASes with a BGP-observed
            // relationship to the interface origin; none → origin AS.
            let related: Vec<Asn> = tied
                .iter()
                .copied()
                .filter(|&w| {
                    origin.asn.is_some()
                        && (w == origin.asn || rels.has_relationship(w, origin.asn))
                })
                .collect();
            match cones.largest_cone(related) {
                Some(w) => w,
                None => origin.asn,
            }
        };
        if winner.is_some() {
            state.iface[idx] = winner;
        }
    }
}
