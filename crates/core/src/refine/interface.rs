//! Interface annotation (§6.2).
//!
//! An interface annotation names the AS on the *other side* of the link the
//! interface terminates (Fig. 3). If the interface's origin AS differs from
//! its router's annotation, the address was supplied by the connected
//! network, so the origin AS is the answer (Fig. 13a). Otherwise the
//! connected IRs vote — one vote per prior interface — with ties broken
//! toward the largest customer cone holding a BGP relationship with the
//! interface origin (Figs. 13b, 13c).

use crate::refine::parallel::{RouterView, SweepCells, SweepCtx};
use bgp::OriginKind;
use net_types::{Asn, Counter};

/// Computes the new annotation of one interface from the committed router
/// annotations, or `None` to keep the current value. Reads no interface
/// annotation (only router state), so a whole sweep can run in any order —
/// or concurrently — and commit as it goes.
pub(crate) fn annotate_iface_one(
    idx: usize,
    cells: &SweepCells,
    ctx: &mut SweepCtx<'_>,
) -> Option<Asn> {
    let graph = ctx.graph;
    let origin = graph.iface_origin[idx];
    // IXP LAN addresses connect many routers; the point-to-point
    // assumption doesn't hold, so they are left alone (§6.2).
    if origin.kind == OriginKind::Ixp {
        return None;
    }
    let view = RouterView::committed(cells);
    let ir = graph.iface_ir[idx];
    let r_ann = view.router(ir);
    if r_ann.is_none() {
        return None;
    }
    if origin.asn.is_some() && origin.asn != r_ann {
        // Fig. 13a: the address must come from the connected AS.
        return Some(origin.asn);
    }
    // Fig. 13b/13c: vote among connected IRs, one vote per interface of
    // theirs seen immediately prior to this one.
    let mut v: Counter<Asn> = Counter::new();
    for (pred_ir, prior_ifaces) in &graph.preds[idx] {
        let ann = view.router(*pred_ir);
        if ann.is_some() {
            v.add_n(ann, prior_ifaces.len() as u64);
        }
    }
    if v.is_empty() {
        return origin.asn.is_some().then_some(origin.asn);
    }
    let tied = v.max_keys();
    let winner = if tied.len() == 1 {
        tied[0]
    } else {
        // Tie: largest cone among tied ASes with a BGP-observed
        // relationship to the interface origin; none → origin AS.
        let related: Vec<Asn> = tied
            .iter()
            .copied()
            .filter(|&w| {
                origin.asn.is_some()
                    && (w == origin.asn || ctx.cache.has_relationship(w, origin.asn))
            })
            .collect();
        match ctx.cache.largest_cone(related) {
            Some(w) => w,
            None => origin.asn,
        }
    };
    winner.is_some().then_some(winner)
}
