//! Parallel execution of the refinement loop, bit-identical to serial.
//!
//! Two tiers of parallelism, both derived from the dependency analysis in
//! [`shard`](crate::refine::shard):
//!
//! 1. **Across shards.** Weakly connected components share no annotation
//!    state, so whole shards converge independently. Small shards are dealt
//!    round-robin to workers, each running the ordinary single-threaded
//!    per-shard loop.
//! 2. **Within a shard.** Large shards are processed by *all* workers in
//!    lockstep, one wavefront level at a time. The serial sweep's
//!    Gauss-Seidel semantics — a read of a lower-indexed mid-path IR sees
//!    this sweep's value, a read of a higher-indexed one sees the pre-sweep
//!    value — are reproduced exactly with a versioned view: current values
//!    for lower indices (their level has already completed), a pre-sweep
//!    snapshot for higher ones. Within one level no IR reads another's
//!    output, so commits are immediate and order-free.
//!
//! Both tiers run the **same** `converge_shard` routine the serial engine
//! uses; parallelism changes only who executes which slice, never what any
//! slice computes. That is the whole equivalence argument: results are
//! identical for every thread count by construction, and the determinism
//! suite (`tests/determinism.rs`) checks it end to end.
//!
//! Annotation values live in `AtomicU32` cells so workers can share them
//! without locks; all data accesses are `Relaxed` (disjoint by the level
//! discipline) with a spin barrier providing the ordering between levels.

use crate::graph::{IfIdx, IrGraph, IrId};
use crate::refine::engine::{ShardHasher, CONVERGENCE_HASH_SEED};
use crate::refine::shard::{Shard, ShardPlan};
use crate::refine::{interface, router};
use crate::{AnnotationState, Config};
use as_rel::{AsRelationships, CustomerCones, RelQueryCache};
use net_types::Asn;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Mid-path population below which a shard is not worth lockstep scheduling
/// and is instead handed to a single worker.
pub(crate) const LOCKSTEP_MIN_MID_PATH: usize = 16;

/// Shared annotation cells for one refinement run.
///
/// `prev` holds, for every IR, its annotation as of the start of the current
/// router sweep (non-mid-path IRs never change, so they are written once at
/// construction).
pub(crate) struct SweepCells {
    pub router: Vec<AtomicU32>,
    pub prev: Vec<AtomicU32>,
    pub iface: Vec<AtomicU32>,
    pub frozen: Vec<bool>,
}

impl SweepCells {
    pub fn new(state: &AnnotationState) -> SweepCells {
        SweepCells {
            router: state.router.iter().map(|a| AtomicU32::new(a.0)).collect(),
            prev: state.router.iter().map(|a| AtomicU32::new(a.0)).collect(),
            iface: state.iface.iter().map(|a| AtomicU32::new(a.0)).collect(),
            frozen: state.frozen.clone(),
        }
    }

    /// Copies the final annotations back into the plain state vectors.
    pub fn write_back(&self, state: &mut AnnotationState) {
        for (dst, cell) in state.router.iter_mut().zip(&self.router) {
            *dst = Asn(cell.load(Ordering::Relaxed));
        }
        for (dst, cell) in state.iface.iter_mut().zip(&self.iface) {
            *dst = Asn(cell.load(Ordering::Relaxed));
        }
    }
}

/// Read-only context threaded through the annotation routines. Each worker
/// owns one, so the memoized relationship/cone cache is contention-free —
/// and so is the telemetry sheet, which the engine merges in worker order
/// after the pool joins (telemetry is write-only: nothing here reads it).
pub(crate) struct SweepCtx<'a> {
    pub graph: &'a IrGraph,
    pub cfg: &'a Config,
    pub cache: RelQueryCache<'a>,
    pub sheet: obs::MetricSheet,
    /// Per-worker event track (disabled by default; the engine installs a
    /// live one when the recorder traces). Write-only, like the sheet.
    pub tracer: obs::WorkerTracer,
}

impl<'a> SweepCtx<'a> {
    pub fn new(
        graph: &'a IrGraph,
        cfg: &'a Config,
        rels: &'a AsRelationships,
        cones: &'a CustomerCones,
    ) -> Self {
        SweepCtx {
            graph,
            cfg,
            cache: RelQueryCache::new(rels, cones),
            sheet: obs::MetricSheet::new(),
            tracer: obs::WorkerTracer::default(),
        }
    }

    /// Moves the accumulated cache hit/miss tallies into the sheet (called
    /// once per worker, after its last shard). Execution-dependent class:
    /// each worker's cache sees a different slice of the work, so the split
    /// varies with the thread count.
    pub fn flush_cache_stats(&mut self) {
        let stats = self.cache.stats();
        self.sheet.add_exec(obs::names::EXEC_CACHE_HITS, stats.hits);
        self.sheet
            .add_exec(obs::names::EXEC_CACHE_MISSES, stats.misses);
    }
}

/// Versioned view of the annotation state as seen while annotating IR `me`
/// during a router sweep: lower-indexed IRs expose this sweep's value,
/// higher-indexed ones the pre-sweep snapshot — exactly what the serial
/// in-place sweep observes at `me`'s turn.
pub(crate) struct RouterView<'a> {
    cells: &'a SweepCells,
    me: u32,
}

impl<'a> RouterView<'a> {
    pub fn at(cells: &'a SweepCells, me: u32) -> Self {
        RouterView { cells, me }
    }

    /// A view of the fully committed state (used between sweeps, e.g. by
    /// the interface sweep, which runs after the router sweep completes).
    pub fn committed(cells: &'a SweepCells) -> Self {
        RouterView {
            cells,
            me: u32::MAX,
        }
    }

    /// The router annotation of `jr` as the serial sweep would see it.
    pub fn router(&self, jr: IrId) -> Asn {
        let cell = if jr.0 < self.me {
            &self.cells.router[jr.0 as usize]
        } else {
            &self.cells.prev[jr.0 as usize]
        };
        // detlint::allow(relaxed-atomic-output): cells are written only at barrier-separated level boundaries; within a level every read is a stable snapshot
        Asn(cell.load(Ordering::Relaxed))
    }

    /// The interface annotation of `j` (never written during a router
    /// sweep, so unversioned).
    pub fn iface(&self, j: IfIdx) -> Asn {
        // detlint::allow(relaxed-atomic-output): iface cells are never written during a router sweep, so the load is a stable snapshot
        Asn(self.cells.iface[j.0 as usize].load(Ordering::Relaxed))
    }
}

/// `worker`'s contiguous slice of a level/list when `workers` cooperate.
fn chunk(items: &[u32], worker: usize, workers: usize) -> &[u32] {
    let n = items.len();
    &items[n * worker / workers..n * (worker + 1) / workers]
}

/// Stable hash of one shard's annotation state (routers then interfaces,
/// ascending index order).
pub(crate) fn shard_hash(shard: &Shard, cells: &SweepCells) -> u64 {
    let mut h = ShardHasher::new(CONVERGENCE_HASH_SEED);
    for &ir in &shard.irs {
        // detlint::allow(relaxed-atomic-output): hashed after the sweep's final barrier, when cells are quiescent; determinism suite pins the trace
        h.write_u32(cells.router[ir as usize].load(Ordering::Relaxed));
    }
    for &j in &shard.ifaces {
        h.write_u32(cells.iface[j as usize].load(Ordering::Relaxed));
    }
    h.finish()
}

#[inline]
fn sync(barrier: Option<&SpinBarrier>) {
    if let Some(b) = barrier {
        b.wait();
    }
}

/// What one shard's convergence run produced: the iteration count and the
/// full convergence hash trace (pre-sweep state hash, then one hash per
/// iteration). The trace is part of the determinism contract: serial and
/// parallel execution must produce identical traces, not merely identical
/// fixpoints, so an ordering bug that happens to converge to the right
/// answer still shows up.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ShardRun {
    /// Iterations executed before the first repeated state (or the cap).
    pub iterations: usize,
    /// `[h_0, h_1, ..., h_n]`: shard-state hash before refinement and after
    /// each iteration.
    pub trace: Vec<u64>,
}

/// Runs one shard to convergence (§6.3 applied shard-locally): sweep
/// routers level by level, sweep interfaces, and stop at the first repeated
/// shard state, with `max_iterations` as the backstop.
///
/// This single routine *is* the refinement algorithm for every execution
/// mode. Called with `workers == 1` and no barrier it is the serial engine;
/// called by `workers` threads in lockstep (same shard, same barrier, each
/// with a distinct `worker` index) the per-level chunks partition each
/// wavefront and every participant returns the same iteration count. All
/// workers hash the whole shard redundantly, so their stop decisions agree
/// without communicating — and every participant computes the identical
/// [`ShardRun::trace`].
pub(crate) fn converge_shard(
    shard: &Shard,
    cells: &SweepCells,
    ctx: &mut SweepCtx<'_>,
    max_iterations: usize,
    worker: usize,
    workers: usize,
    barrier: Option<&SpinBarrier>,
) -> ShardRun {
    // detlint::allow(unordered-collection): membership-only duplicate
    // detector for convergence hashes; never iterated, so storage order
    // cannot influence when the loop stops
    let mut seen: HashSet<u64> = HashSet::new();
    let h0 = shard_hash(shard, cells);
    seen.insert(h0);
    let mut trace = vec![h0];
    let mut iterations = 0;
    for i in 0..max_iterations {
        ctx.tracer.begin(obs::names::EV_REFINE_WAVE, i as u64);
        // Snapshot this shard's mid-path annotations (only those can have
        // changed) so higher-index reads see pre-sweep values.
        for &ir in chunk(&shard.mid_path, worker, workers) {
            cells.prev[ir as usize].store(
                // detlint::allow(relaxed-atomic-output): barrier-delimited snapshot copy; each cell has exactly one writer per level, pinned by the determinism suite
                cells.router[ir as usize].load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        sync(barrier);
        // Router sweep (§6.1), one wavefront level at a time.
        for level in &shard.levels {
            for &iri in chunk(level, worker, workers) {
                if cells.frozen[iri as usize] {
                    continue;
                }
                let ir = &ctx.graph.irs[iri as usize];
                let view = RouterView::at(cells, iri);
                let a = router::annotate_ir(ir, &view, ctx);
                if a.is_some() {
                    // Each IR is written by exactly one worker (its chunk
                    // owner), so counting changed values per worker sums to
                    // the serial total for every thread count.
                    if cells.router[iri as usize].load(Ordering::Relaxed) != a.0 {
                        ctx.sheet.inc(obs::names::REFINE_VOTES_CHANGED);
                    }
                    cells.router[iri as usize].store(a.0, Ordering::Relaxed);
                }
            }
            sync(barrier);
        }
        // Interface sweep (§6.2): reads only committed router annotations,
        // writes only its own cell, so one barrier at the end suffices.
        for &j in chunk(&shard.ifaces, worker, workers) {
            if let Some(a) = interface::annotate_iface_one(j as usize, cells, ctx) {
                cells.iface[j as usize].store(a.0, Ordering::Relaxed);
            }
        }
        sync(barrier);
        let h = shard_hash(shard, cells);
        iterations = i + 1;
        trace.push(h);
        let repeated = !seen.insert(h);
        // Everyone must finish reading the state for the hash before the
        // next iteration starts overwriting it.
        sync(barrier);
        ctx.tracer.end(obs::names::EV_REFINE_WAVE);
        if repeated {
            break;
        }
    }
    ShardRun { iterations, trace }
}

/// Runs the whole plan on `threads` workers broadcast from the shared
/// worker pool (one crew slot per worker — lockstep participants must
/// never share a thread, so these slots are not stealable). Returns the
/// maximum per-shard iteration count plus the convergence hash trace of
/// every shard, indexed by the shard's position in `plan.shards` — the same
/// order the serial engine visits them, so the two paths yield comparable
/// trace vectors — plus the workers' telemetry sheets merged in
/// worker-index order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_parallel(
    graph: &IrGraph,
    plan: &ShardPlan,
    cells: &SweepCells,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    threads: usize,
    wp: &pool::WorkerPool,
    tracer: &obs::Tracer,
) -> (usize, Vec<Vec<u64>>, obs::MetricSheet) {
    // A shard tagged with its index in `plan.shards`, which survives the
    // big/small partition so traces land in plan order.
    type Indexed<'a> = Vec<(usize, &'a Shard)>;
    let (big, small): (Indexed, Indexed) = plan
        .shards
        .iter()
        .enumerate()
        .partition(|(_, s)| s.mid_path.len() >= LOCKSTEP_MIN_MID_PATH);
    let barrier = SpinBarrier::new(threads);
    let max_iterations = AtomicUsize::new(0);
    // One slot per shard, written exactly once: by worker 0 for lockstep
    // shards (all participants compute the identical trace) and by the
    // round-robin owner for solo shards.
    let traces: Vec<Mutex<Vec<u64>>> = plan.shards.iter().map(|_| Mutex::new(Vec::new())).collect();
    // One telemetry sheet slot per worker, written exactly once when the
    // worker finishes; merged below in worker-index order so the combined
    // sheet is identical run to run.
    let sheets: Vec<Mutex<obs::MetricSheet>> = (0..threads)
        .map(|_| Mutex::new(obs::MetricSheet::new()))
        .collect();
    // One event-track slot per worker, parked when the worker finishes and
    // submitted below in worker-index order so the merged trace document has
    // a deterministic track structure.
    let tracer_slots: Vec<Mutex<Option<obs::WorkerTracer>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let worker = |w: usize| {
        let mut ctx = SweepCtx::new(graph, cfg, rels, cones);
        ctx.tracer = tracer.worker(obs::names::TRACK_REFINE_WORKER, w);
        let mut local = 0usize;
        // Big shards: every worker, lockstep.
        for &(idx, shard) in &big {
            ctx.tracer.begin(obs::names::EV_REFINE_SHARD, idx as u64);
            let run = converge_shard(
                shard,
                cells,
                &mut ctx,
                cfg.max_iterations,
                w,
                threads,
                Some(&barrier),
            );
            ctx.tracer.end(obs::names::EV_REFINE_SHARD);
            local = local.max(run.iterations);
            if w == 0 {
                // Every lockstep participant computes the identical run;
                // one designated worker records it (trace and histogram).
                ctx.sheet
                    .record(obs::names::HIST_SHARD_ITERATIONS, run.iterations as u64);
                // detlint::allow(interior-mut-in-worker): slot-per-shard mailbox; exactly one designated worker (w == 0) writes each slot, so no lock-order dependence
                *traces[idx].lock().unwrap() = run.trace;
            }
        }
        // Small shards: dealt round-robin, each converged solo.
        for (k, &(idx, shard)) in small.iter().enumerate() {
            if k % threads == w {
                ctx.tracer.begin(obs::names::EV_REFINE_SHARD, idx as u64);
                let run = converge_shard(shard, cells, &mut ctx, cfg.max_iterations, 0, 1, None);
                ctx.tracer.end(obs::names::EV_REFINE_SHARD);
                local = local.max(run.iterations);
                ctx.sheet
                    .record(obs::names::HIST_SHARD_ITERATIONS, run.iterations as u64);
                *traces[idx].lock().unwrap() = run.trace;
            }
        }
        ctx.flush_cache_stats();
        *sheets[w].lock().unwrap() = ctx.sheet;
        *tracer_slots[w].lock().unwrap() = Some(ctx.tracer);
        max_iterations.fetch_max(local, Ordering::SeqCst);
    };
    wp.broadcast(obs::names::EXEC_POOL_BUSY_REFINE, threads, worker);
    for slot in tracer_slots {
        if let Some(wt) = slot.into_inner().unwrap() {
            tracer.submit(wt);
        }
    }
    let traces = traces
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    let mut sheet = obs::MetricSheet::new();
    for s in sheets {
        sheet.merge(&s.into_inner().unwrap());
    }
    (max_iterations.load(Ordering::SeqCst), traces, sheet)
}

/// A sense-reversing spin barrier.
///
/// Refinement synchronizes once per wavefront level — far too often for an
/// OS-futex barrier — so waiters spin briefly and then yield (degrading
/// gracefully when threads exceed cores).
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    pub fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.total {
            self.count.store(0, Ordering::SeqCst);
            self.generation
                .store(generation.wrapping_add(1), Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) == generation {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition() {
        let items: Vec<u32> = (0..13).collect();
        for workers in 1..=5 {
            let mut rebuilt = Vec::new();
            for w in 0..workers {
                rebuilt.extend_from_slice(chunk(&items, w, workers));
            }
            assert_eq!(rebuilt, items, "workers={workers}");
        }
        assert!(chunk(&[], 0, 3).is_empty());
    }

    #[test]
    fn spin_barrier_synchronizes() {
        let threads = 4;
        let barrier = SpinBarrier::new(threads);
        let counter = AtomicUsize::new(0);
        // The same broadcast primitive the engine uses: one concurrent,
        // unstealable crew slot per barrier participant.
        pool::WorkerPool::new(threads).broadcast("pool.busy_us.test", threads, |_| {
            for round in 1..=50usize {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // Between barriers every thread observes the full round's
                // increments.
                assert_eq!(counter.load(Ordering::SeqCst), round * threads);
                barrier.wait();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * threads);
    }

    #[test]
    fn single_thread_barrier_is_noop() {
        let barrier = SpinBarrier::new(1);
        barrier.wait();
        barrier.wait();
    }
}
