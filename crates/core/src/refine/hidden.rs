//! Hidden-AS detection (§6.1.5).
//!
//! A traceroute can traverse an AS without ever reporting one of its
//! addresses — most often a small transit AS whose customer-side links use
//! the customer's space and whose provider-side links use the provider's
//! (Fig. 12). When the elected AS has no relationship with any IR origin
//! AS, an AS that bridges the origin side and the elected side — customer
//! of an origin-side AS and provider of the elected AS — is the likelier
//! operator.

use crate::graph::Ir;
use as_rel::AsRelationships;
use net_types::Asn;
use std::collections::BTreeSet;

/// If `selected` has a relationship with an IR origin AS, keeps it.
/// Otherwise searches for a unique bridging AS between the origin side
/// (`ir.origins` ∪ the link origin sets behind the winning votes) and
/// `selected`; a unique bridge replaces the selection.
pub fn check_hidden_as(
    ir: &Ir,
    selected: Asn,
    vote_origins: &BTreeSet<Asn>,
    rels: &AsRelationships,
) -> Asn {
    if ir
        .origins
        .iter()
        .any(|&o| o == selected || rels.has_relationship(o, selected))
    {
        return selected;
    }
    let origin_side: BTreeSet<Asn> = ir
        .origins
        .iter()
        .chain(vote_origins.iter())
        .copied()
        .filter(|&o| o != selected)
        .collect();
    let mut bridges: BTreeSet<Asn> = BTreeSet::new();
    for p in rels.providers_of(selected) {
        if origin_side.iter().any(|&o| rels.is_customer(p, o)) {
            bridges.insert(p);
        }
    }
    let mut it = bridges.into_iter();
    match (it.next(), it.next()) {
        (Some(bridge), None) => bridge,
        _ => selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IrId;

    fn ir(origins: &[u32]) -> Ir {
        Ir {
            id: IrId(0),
            ifaces: vec![],
            links: vec![],
            origins: origins.iter().map(|&a| Asn(a)).collect(),
            dests: BTreeSet::new(),
        }
    }

    fn set(v: &[u32]) -> BTreeSet<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn keeps_selection_with_relationship() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(1), Asn(3));
        assert_eq!(
            check_hidden_as(&ir(&[1]), Asn(3), &set(&[1]), &rels),
            Asn(3)
        );
    }

    #[test]
    fn finds_unique_bridge() {
        // Fig. 12: origins {A=1}; selected C=3; hidden B=2 is a customer of
        // A and a provider of C.
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(1), Asn(2));
        rels.add_p2c(Asn(2), Asn(3));
        assert_eq!(
            check_hidden_as(&ir(&[1]), Asn(3), &set(&[1]), &rels),
            Asn(2)
        );
    }

    #[test]
    fn ambiguous_bridges_keep_selection() {
        let mut rels = AsRelationships::new();
        for b in [2u32, 4] {
            rels.add_p2c(Asn(1), Asn(b));
            rels.add_p2c(Asn(b), Asn(3));
        }
        assert_eq!(
            check_hidden_as(&ir(&[1]), Asn(3), &set(&[1]), &rels),
            Asn(3)
        );
    }

    #[test]
    fn no_bridge_keeps_selection() {
        let rels = AsRelationships::new();
        assert_eq!(
            check_hidden_as(&ir(&[1]), Asn(3), &set(&[1]), &rels),
            Asn(3)
        );
    }

    #[test]
    fn selection_in_origins_kept() {
        let rels = AsRelationships::new();
        assert_eq!(check_hidden_as(&ir(&[3]), Asn(3), &set(&[]), &rels), Asn(3));
    }
}
