//! Election exceptions (§6.1.3).
//!
//! Two situations where the AS with the most votes is systematically wrong:
//!
//! * **Multihomed to a provider** (Fig. 11): a stub customer's border router
//!   carries several provider-addressed interfaces but few links into the
//!   customer's own space, so the provider out-votes the true owner. When a
//!   single subsequent AS is a customer of an IR origin AS, the customer is
//!   selected.
//! * **Multiple peers/providers**: all interfaces share one origin AS and
//!   every subsequent AS is a peer or provider of it (or the mirror image),
//!   making the common denominator the operator — provided it retains at
//!   least half the leading vote count.

use crate::graph::Ir;
use as_rel::{AsRelationships, Relationship};
use net_types::{Asn, Counter};
use std::collections::BTreeSet;

/// Checks the exceptions given the post-correction link votes and the full
/// vote counter (links + interface votes). Returns the exceptional
/// annotation if one applies.
pub fn check_exceptions(
    ir: &Ir,
    link_vote_ases: &BTreeSet<Asn>,
    all_votes: &Counter<Asn>,
    rels: &AsRelationships,
) -> Option<Asn> {
    // ---- multihomed customer ----
    if link_vote_ases.len() == 1 {
        let s = *link_vote_ases.iter().next().expect("one element");
        if ir.origins.iter().any(|&o| rels.is_customer(s, o)) {
            return Some(s);
        }
    }

    let vote_guard = |candidate: Asn| -> bool {
        let max = all_votes.max_count();
        max == 0 || all_votes.get(&candidate) * 2 >= max
    };

    // ---- multiple peers/providers, single-origin form ----
    if ir.origins.len() == 1 && link_vote_ases.len() >= 2 {
        let o = *ir.origins.iter().next().expect("one origin");
        let all_up = link_vote_ases.iter().all(|&s| {
            s != o
                && matches!(
                    rels.relationship(s, o),
                    Some(Relationship::Peer) | Some(Relationship::Provider)
                )
        });
        if all_up && vote_guard(o) {
            return Some(o);
        }
    }

    // ---- mirror image: many origins, one subsequent AS above them all ----
    if ir.origins.len() >= 2 && link_vote_ases.len() == 1 {
        let s = *link_vote_ases.iter().next().expect("one element");
        let above_all = ir.origins.iter().all(|&o| {
            s != o
                && matches!(
                    rels.relationship(s, o),
                    Some(Relationship::Peer) | Some(Relationship::Provider)
                )
        });
        if above_all && vote_guard(s) {
            return Some(s);
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IrId;

    fn ir(origins: &[u32]) -> Ir {
        Ir {
            id: IrId(0),
            ifaces: vec![],
            links: vec![],
            origins: origins.iter().map(|&a| Asn(a)).collect(),
            dests: BTreeSet::new(),
        }
    }

    fn set(v: &[u32]) -> BTreeSet<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn multihomed_customer_selected() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(10), Asn(20)); // 20 is a customer of origin 10
        let mut votes = Counter::new();
        votes.add_n(Asn(10), 3); // provider out-votes...
        votes.add_n(Asn(20), 1);
        let got = check_exceptions(&ir(&[10]), &set(&[20]), &votes, &rels);
        assert_eq!(got, Some(Asn(20)));
    }

    #[test]
    fn multihomed_requires_relationship() {
        let rels = AsRelationships::new();
        let votes = Counter::new();
        assert_eq!(
            check_exceptions(&ir(&[10]), &set(&[20]), &votes, &rels),
            None
        );
    }

    #[test]
    fn single_origin_multiple_uphill_neighbors() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(20), Asn(10));
        rels.add_p2p(Asn(30), Asn(10));
        let mut votes = Counter::new();
        votes.add_n(Asn(20), 2);
        votes.add_n(Asn(30), 2);
        votes.add_n(Asn(10), 2); // origin has exactly half the max
        let got = check_exceptions(&ir(&[10]), &set(&[20, 30]), &votes, &rels);
        assert_eq!(got, Some(Asn(10)));
    }

    #[test]
    fn vote_guard_rejects_weak_candidate() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(20), Asn(10));
        rels.add_p2p(Asn(30), Asn(10));
        let mut votes = Counter::new();
        votes.add_n(Asn(20), 5);
        votes.add_n(Asn(30), 1);
        votes.add_n(Asn(10), 1); // less than half of 5
        assert_eq!(
            check_exceptions(&ir(&[10]), &set(&[20, 30]), &votes, &rels),
            None
        );
    }

    #[test]
    fn mirror_form_single_subsequent_above_all_origins() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(30), Asn(10));
        rels.add_p2p(Asn(30), Asn(11));
        let mut votes = Counter::new();
        votes.add_n(Asn(30), 2);
        votes.add_n(Asn(10), 2);
        let got = check_exceptions(&ir(&[10, 11]), &set(&[30]), &votes, &rels);
        assert_eq!(got, Some(Asn(30)));
    }

    #[test]
    fn downhill_neighbor_blocks_exception() {
        let mut rels = AsRelationships::new();
        rels.add_p2c(Asn(20), Asn(10));
        rels.add_p2c(Asn(10), Asn(30)); // 30 is a CUSTOMER of the origin
        let votes = Counter::new();
        assert_eq!(
            check_exceptions(&ir(&[10]), &set(&[20, 30]), &votes, &rels),
            None
        );
    }
}
