//! Annotation-dependency shards and wavefront levels.
//!
//! During a router sweep (§6.1), annotating IR *i* reads only the state of
//! IRs reachable through *i*'s links (`state.router` of the subsequent
//! router, `state.iface` of the subsequent interface); during an interface
//! sweep (§6.2), interface *j* reads only the router annotations of its own
//! IR and of the predecessor IRs in `preds[j]` — all of which hold a link
//! to *j*. Annotation state therefore never flows between two IRs unless
//! they are connected by a chain of Nexthop/Echo/Multihop links, so the
//! weakly connected components of the IR graph partition the refinement
//! problem into independent **shards** that can converge separately and in
//! parallel without changing any result.
//!
//! Within one shard, the serial engine is Gauss-Seidel: IRs are processed in
//! ascending index order and a read of a *lower*-indexed mid-path IR sees
//! the value written earlier in the same sweep. Those "reads new value"
//! edges always point from a lower index to a higher one, so they form a
//! DAG, and scheduling IRs by longest-path depth (**wavefront levels**)
//! exposes the second tier of parallelism: all IRs in one level can be
//! annotated concurrently while reproducing the serial sweep bit for bit
//! (reads of higher-indexed IRs go to the pre-sweep snapshot either way —
//! see `refine::parallel`).

use crate::graph::{Ir, IrId};

/// One weakly connected component of the IR graph.
#[derive(Clone, Debug, Default)]
pub struct Shard {
    /// Every member IR (ascending). Last-hop IRs are included: their frozen
    /// annotations are part of the shard's convergence state.
    pub irs: Vec<u32>,
    /// Member IRs with outgoing links (ascending) — the router-sweep set.
    pub mid_path: Vec<u32>,
    /// Member interface indices (ascending) — the interface-sweep set.
    pub ifaces: Vec<u32>,
    /// Wavefront levels over `mid_path`: `levels[d]` holds the IRs whose
    /// longest same-sweep dependency chain has depth `d`, each level
    /// ascending. Concatenated they contain exactly `mid_path`.
    pub levels: Vec<Vec<u32>>,
}

/// The shard partition of an IR graph, computed once at graph-build time.
#[derive(Clone, Debug, Default)]
pub struct ShardPlan {
    /// All shards, ordered by their lowest member IR index.
    pub shards: Vec<Shard>,
    /// IR index → index into [`ShardPlan::shards`].
    pub ir_shard: Vec<u32>,
}

impl ShardPlan {
    /// Partitions the IR graph into link-connected shards and computes the
    /// wavefront levels of each.
    pub fn compute(irs: &[Ir], iface_ir: &[IrId]) -> ShardPlan {
        let n = irs.len();
        // Union-find over IR indices; links connect an IR to the IR owning
        // the destination interface.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }
        for ir in irs {
            for link in &ir.links {
                let jr = iface_ir[link.dst.0 as usize].0;
                let a = find(&mut parent, ir.id.0);
                let b = find(&mut parent, jr);
                if a != b {
                    // Union toward the smaller root so each component's
                    // representative is its lowest member.
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }

        // Number shards by first appearance in ascending IR order, which
        // orders them by lowest member.
        let mut ir_shard = vec![u32::MAX; n];
        let mut shards: Vec<Shard> = Vec::new();
        for i in 0..n as u32 {
            let root = find(&mut parent, i) as usize;
            let sid = if ir_shard[root] == u32::MAX {
                shards.push(Shard::default());
                let sid = (shards.len() - 1) as u32;
                ir_shard[root] = sid;
                sid
            } else {
                ir_shard[root]
            };
            ir_shard[i as usize] = sid;
            shards[sid as usize].irs.push(i);
            if !irs[i as usize].links.is_empty() {
                shards[sid as usize].mid_path.push(i);
            }
        }

        // Interfaces follow their owning IR.
        for (idx, &ir) in iface_ir.iter().enumerate() {
            shards[ir_shard[ir.0 as usize] as usize]
                .ifaces
                .push(idx as u32);
        }

        // Wavefront levels: depth(i) = 1 + max depth over same-sweep
        // dependencies (mid-path link destinations with a lower index).
        // Ascending order means every dependency is resolved before use.
        let mut depth = vec![0u32; n];
        for ir in irs {
            if ir.links.is_empty() {
                continue;
            }
            let i = ir.id.0;
            let mut d = 0;
            for link in &ir.links {
                let jr = iface_ir[link.dst.0 as usize].0;
                if jr < i && !irs[jr as usize].links.is_empty() {
                    d = d.max(depth[jr as usize] + 1);
                }
            }
            depth[i as usize] = d;
            let shard = &mut shards[ir_shard[i as usize] as usize];
            if shard.levels.len() <= d as usize {
                shard.levels.resize(d as usize + 1, Vec::new());
            }
            shard.levels[d as usize].push(i);
        }

        ShardPlan { shards, ir_shard }
    }

    /// The widest wavefront level across all shards — an upper bound on the
    /// useful intra-shard parallelism.
    pub fn max_level_width(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.levels.iter().map(Vec::len))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{IfIdx, Link, LinkLabel};
    use std::collections::BTreeSet;

    /// Builds `n` IRs each owning one interface, wired by `edges`
    /// (src IR → dst IR, through the dst IR's interface).
    fn plan_of(n: u32, edges: &[(u32, u32)]) -> ShardPlan {
        let mut irs: Vec<Ir> = (0..n)
            .map(|i| Ir {
                id: IrId(i),
                ifaces: vec![IfIdx(i)],
                links: Vec::new(),
                origins: BTreeSet::new(),
                dests: BTreeSet::new(),
            })
            .collect();
        for &(src, dst) in edges {
            irs[src as usize].links.push(Link {
                dst: IfIdx(dst),
                label: LinkLabel::Nexthop,
                origins: BTreeSet::new(),
                dests: BTreeSet::new(),
            });
        }
        let iface_ir: Vec<IrId> = (0..n).map(IrId).collect();
        ShardPlan::compute(&irs, &iface_ir)
    }

    #[test]
    fn partition_covers_every_ir_exactly_once() {
        let plan = plan_of(7, &[(0, 1), (1, 2), (4, 5), (2, 0)]);
        let mut seen = vec![0u32; 7];
        for shard in &plan.shards {
            for &ir in &shard.irs {
                seen[ir as usize] += 1;
            }
        }
        assert_eq!(seen, vec![1; 7], "every IR in exactly one shard");
        // ir_shard agrees with membership.
        for (sid, shard) in plan.shards.iter().enumerate() {
            for &ir in &shard.irs {
                assert_eq!(plan.ir_shard[ir as usize], sid as u32);
            }
        }
    }

    #[test]
    fn components_split_correctly() {
        // {0,1,2} linked, {3} isolated, {4,5} linked, {6} isolated.
        let plan = plan_of(7, &[(0, 1), (1, 2), (4, 5)]);
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.irs.len()).collect();
        assert_eq!(sizes, vec![3, 1, 2, 1]);
        // Shards are ordered by lowest member.
        assert_eq!(plan.shards[0].irs, vec![0, 1, 2]);
        assert_eq!(plan.shards[2].irs, vec![4, 5]);
        // Destination-only IRs are members but not mid-path.
        assert_eq!(plan.shards[0].mid_path, vec![0, 1]);
        assert_eq!(plan.shards[2].mid_path, vec![4]);
    }

    #[test]
    fn ifaces_follow_their_ir() {
        let plan = plan_of(4, &[(0, 1), (2, 3)]);
        assert_eq!(plan.shards[0].ifaces, vec![0, 1]);
        assert_eq!(plan.shards[1].ifaces, vec![2, 3]);
    }

    #[test]
    fn levels_partition_mid_path_and_respect_dependencies() {
        // 0→1→2→3 chain plus 1→0 back-edge: mid-path IRs are 0,1,2.
        // Same-sweep dependencies point at *lower-indexed mid-path* IRs
        // only: 0 reads nothing below it (depth 0); 1 reads 0 via the
        // back-edge (depth 1); 2 reads only IR 3, which is higher-indexed
        // and not mid-path (depth 0).
        let plan = plan_of(4, &[(0, 1), (1, 2), (2, 3), (1, 0)]);
        let shard = &plan.shards[0];
        assert_eq!(shard.levels.len(), 2);
        assert_eq!(shard.levels[0], vec![0, 2]);
        assert_eq!(shard.levels[1], vec![1]);
        // Levels concatenate to exactly the mid-path set.
        let mut flat: Vec<u32> = shard.levels.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, shard.mid_path);
        assert_eq!(plan.max_level_width(), 2);
    }

    #[test]
    fn wide_level_for_independent_irs() {
        // 1..=4 all link only to 0: every mid-path IR sits in level 1
        // (they depend on nothing below themselves except via 0? no — 0 is
        // their destination and has no links, so all are depth 0).
        let plan = plan_of(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let shard = &plan.shards[0];
        assert_eq!(shard.levels.len(), 1);
        assert_eq!(shard.levels[0], vec![1, 2, 3, 4]);
        assert_eq!(plan.max_level_width(), 4);
    }
}
