//! Phase 3: graph refinement (§6).
//!
//! Each iteration annotates every mid-path IR with its operating AS
//! ([`router`], Algorithm 2), then re-annotates every interface with the AS
//! it connects to ([`interface`], §6.2). Annotations propagate across the
//! graph between iterations; the loop stops when the global state repeats
//! ([`engine`], §6.3).

pub mod engine;
pub mod exceptions;
pub mod hidden;
pub mod interface;
pub mod realloc;
pub mod router;
pub mod votes;

pub use engine::refine;
