//! Phase 3: graph refinement (§6).
//!
//! Each iteration annotates every mid-path IR with its operating AS
//! ([`router`], Algorithm 2), then re-annotates every interface with the AS
//! it connects to ([`interface`], §6.2). Annotations propagate across the
//! graph between iterations; each link-connected [`shard`] of the graph
//! stops when its state repeats ([`engine`], §6.3). The sweeps run serially
//! or on a thread pool ([`parallel`]) per [`Config::threads`](crate::Config)
//! with bit-identical results.

pub mod engine;
pub mod exceptions;
pub mod hidden;
pub mod incremental;
pub mod interface;
pub mod parallel;
pub mod realloc;
pub mod router;
pub mod shard;
pub mod votes;

pub use engine::{refine, refine_in_pool, refine_with_obs, CONVERGENCE_HASH_SEED};
pub use incremental::{refine_incremental, IncrementalStats, ShardCache};
pub use shard::{Shard, ShardPlan};
