//! The refinement loop (§6.3): iterate router and interface annotation
//! until the global annotation state repeats.
//!
//! The paper stops at a *repeated* state rather than an unchanged one —
//! annotation dynamics can enter short cycles (Fig. 14 shows a two-step
//! correction) — so every post-iteration state is hashed and the loop exits
//! on the first recurrence, with a configurable iteration cap as a backstop.

use crate::graph::IrGraph;
use crate::refine::{interface, router};
use crate::{AnnotationState, Config};
use as_rel::{AsRelationships, CustomerCones};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Runs phase 3 to completion.
pub fn refine(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    state: &mut AnnotationState,
) {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(state_hash(state));
    for i in 0..cfg.max_iterations {
        router::annotate_routers(graph, state, rels, cones, cfg);
        interface::annotate_interfaces(graph, state, rels, cones);
        state.iterations = i + 1;
        if !seen.insert(state_hash(state)) {
            break;
        }
    }
}

/// Hash of the full annotation vector (routers + interfaces).
fn state_hash(state: &AnnotationState) -> u64 {
    let mut h = DefaultHasher::new();
    state.router.hash(&mut h);
    state.iface.hash(&mut h);
    h.finish()
}
