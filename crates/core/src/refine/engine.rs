//! The refinement loop (§6.3): iterate router and interface annotation
//! until the annotation state repeats.
//!
//! The paper stops at a *repeated* state rather than an unchanged one —
//! annotation dynamics can enter short cycles (Fig. 14 shows a two-step
//! correction) — so every post-iteration state is hashed and the loop exits
//! on the first recurrence, with a configurable iteration cap as a backstop.
//! Convergence is detected per [`shard`](crate::refine::shard): shards share
//! no annotation state, so each component stops at its own first repeated
//! state, and `state.iterations` reports the maximum across shards.
//!
//! Depending on [`Config::threads`] the shards are converged on the calling
//! thread or by the [`parallel`](crate::refine::parallel) engine; the two
//! paths execute the identical per-shard routine and produce bit-identical
//! annotations.

use crate::graph::IrGraph;
use crate::refine::parallel::{self, SweepCells, SweepCtx, LOCKSTEP_MIN_MID_PATH};
use crate::refine::shard::ShardPlan;
use crate::{AnnotationState, Config};
use as_rel::{AsRelationships, CustomerCones};

/// Seed of the convergence hash. Fixed (rather than `DefaultHasher`'s
/// per-process randomness) so convergence traces are reproducible across
/// runs, toolchains, and platforms — CI logs the per-iteration hashes and
/// two runs of the same corpus must show the same trace.
pub const CONVERGENCE_HASH_SEED: u64 = 0xbd12_a917_2018_0603;

/// FNV-1a with an explicit seed: small, allocation-free, and — unlike
/// `std::collections::hash_map::DefaultHasher` — specified, so hashes never
/// change under a different standard library.
#[derive(Clone, Copy, Debug)]
pub struct ShardHasher(u64);

impl ShardHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash folding `seed` into the FNV offset basis.
    pub fn new(seed: u64) -> ShardHasher {
        let mut h = ShardHasher(Self::OFFSET);
        h.write_u64(seed);
        h
    }

    /// Absorbs one little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    /// The hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Runs phase 3 to completion.
pub fn refine(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    state: &mut AnnotationState,
) {
    refine_with_obs(graph, rels, cones, cfg, state, &obs::Recorder::disabled());
}

/// Runs phase 3 to completion, reporting convergence telemetry through
/// `rec`. Telemetry is write-only: every annotation, iteration count, and
/// convergence trace is bit-identical whether `rec` is enabled, disabled,
/// or shared with other phases — the determinism suite checks this at
/// thread counts 1/2/8.
pub fn refine_with_obs(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    state: &mut AnnotationState,
    rec: &obs::Recorder,
) {
    let wp = pool::WorkerPool::with_recorder(cfg.threads, rec.clone());
    refine_in_pool(graph, rels, cones, cfg, state, &wp, rec);
}

/// [`refine_with_obs`] on a caller-provided worker pool — the entry the
/// pipeline uses so all phases share one pool. The worker budget comes from
/// the pool ([`Config::threads`] only feeds the pool's construction), then
/// shrinks to what the shard plan can actually occupy.
pub fn refine_in_pool(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    state: &mut AnnotationState,
    wp: &pool::WorkerPool,
    rec: &obs::Recorder,
) {
    use obs::names;

    let plan = &graph.shards;
    let cells = SweepCells::new(state);
    let threads = effective_threads(wp.workers(), plan);
    let tracer = rec.tracer();
    let (iterations, traces, mut sheet) = if threads <= 1 {
        let mut ctx = SweepCtx::new(graph, cfg, rels, cones);
        ctx.tracer = tracer.worker(names::TRACK_REFINE_WORKER, 0);
        let mut iterations = 0;
        let mut traces = Vec::with_capacity(plan.shards.len());
        for (idx, shard) in plan.shards.iter().enumerate() {
            ctx.tracer.begin(names::EV_REFINE_SHARD, idx as u64);
            let run =
                parallel::converge_shard(shard, &cells, &mut ctx, cfg.max_iterations, 0, 1, None);
            ctx.tracer.end(names::EV_REFINE_SHARD);
            iterations = iterations.max(run.iterations);
            ctx.sheet
                .record(names::HIST_SHARD_ITERATIONS, run.iterations as u64);
            traces.push(run.trace);
        }
        ctx.flush_cache_stats();
        tracer.submit(ctx.tracer);
        (iterations, traces, ctx.sheet)
    } else {
        parallel::refine_parallel(graph, plan, &cells, rels, cones, cfg, threads, wp, &tracer)
    };
    cells.write_back(state);
    state.iterations = iterations;
    state.convergence_traces = traces;

    // Plan-level telemetry, recorded once on the calling thread so serial
    // and parallel runs produce the identical deterministic sheet.
    sheet.inc(names::REFINE_RUNS);
    sheet.add(names::REFINE_ITERATIONS, iterations as u64);
    sheet.add(names::REFINE_SHARDS, plan.shards.len() as u64);
    for shard in &plan.shards {
        sheet.record(names::HIST_SHARD_WAVEFRONTS, shard.levels.len() as u64);
    }
    sheet.add(
        names::REFINE_ROUTERS_ANNOTATED,
        state
            .router
            .iter()
            .filter(|a| **a != net_types::Asn::NONE)
            .count() as u64,
    );
    sheet.add_exec(names::EXEC_REFINE_WORKERS, threads as u64);
    rec.absorb(&sheet);
}

/// Resolves the pool's worker budget against the shard plan, falling back
/// to the serial path when the plan has nothing to offer a thread pool
/// (e.g. a single narrow shard). Shared with the incremental engine, which
/// resolves against its dirty-shard subset plan.
pub(crate) fn effective_threads(requested: usize, plan: &ShardPlan) -> usize {
    if requested <= 1 {
        return 1;
    }
    let lockstep_shards = plan
        .shards
        .iter()
        .filter(|s| s.mid_path.len() >= LOCKSTEP_MIN_MID_PATH)
        .count();
    let solo_shards = plan.shards.len() - lockstep_shards;
    if lockstep_shards == 0 && solo_shards <= 1 {
        return 1;
    }
    // More workers than the widest level (or the shard count, whichever
    // offers more slots) would only ever wait at barriers.
    requested.min(plan.max_level_width().max(plan.shards.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_stable_across_runs_and_platforms() {
        // CI runs this test with --nocapture to record the active seed in
        // the build log next to the golden hash it implies.
        println!("convergence hash seed: {CONVERGENCE_HASH_SEED:#018x}");
        // Golden value: any change to the hashing scheme shows up here
        // (and would invalidate recorded convergence traces).
        let mut h = ShardHasher::new(CONVERGENCE_HASH_SEED);
        for v in [1u32, 2, 3, 0, u32::MAX] {
            h.write_u32(v);
        }
        assert_eq!(h.finish(), 0x05c2_d6bc_0506_dcbd);
        // Distinct inputs hash apart; same input hashes the same.
        let one = |vals: &[u32]| {
            let mut h = ShardHasher::new(CONVERGENCE_HASH_SEED);
            vals.iter().for_each(|&v| h.write_u32(v));
            h.finish()
        };
        assert_eq!(one(&[7, 8]), one(&[7, 8]));
        assert_ne!(one(&[7, 8]), one(&[8, 7]));
        assert_ne!(one(&[0]), one(&[]));
    }

    #[test]
    fn seed_changes_the_hash() {
        let mut a = ShardHasher::new(1);
        let mut b = ShardHasher::new(2);
        a.write_u32(42);
        b.write_u32(42);
        assert_ne!(a.finish(), b.finish());
    }
}
