//! Reallocated-prefix vote correction (§6.1.2).
//!
//! A provider reallocates part of its space to a customer but keeps
//! announcing the covering prefix, so the customer-side link addresses vote
//! for the provider (Algorithm 3 line 1 fires). When *all* subsequent
//! interfaces mapping into the IR's own origin set share one /24, and their
//! routers are unanimously annotated with one AS that is a customer of an IR
//! origin AS, the votes flip from the provider to that customer (Fig. 10).

use crate::graph::Ir;
use crate::refine::parallel::{RouterView, SweepCtx};
use net_types::{Asn, Prefix};
use std::collections::BTreeSet;

/// Applies the correction in place on the per-link votes (parallel to
/// `ir.links`).
pub(crate) fn correct_reallocated(
    ir: &Ir,
    view: &RouterView<'_>,
    ctx: &mut SweepCtx<'_>,
    votes: &mut [Option<Asn>],
    usable: &[bool],
) {
    let graph = ctx.graph;
    // Candidates: usable links whose subsequent interface origin is in the
    // IR's own origin set.
    let mut cand: Vec<usize> = Vec::new();
    for (i, link) in ir.links.iter().enumerate() {
        if !usable[i] {
            continue;
        }
        let origin = graph.iface_origin[link.dst.0 as usize].asn;
        if origin.is_some() && ir.origins.contains(&origin) {
            cand.push(i);
        }
    }
    // "Multiple links" required — a single link is not enough evidence.
    if cand.len() < 2 {
        return;
    }
    // All candidate addresses must share one /24.
    let prefixes: BTreeSet<Prefix> = cand
        .iter()
        .map(|&i| Prefix::slash24_of(graph.iface_addrs[ir.links[i].dst.0 as usize]))
        .collect();
    if prefixes.len() != 1 {
        return;
    }
    // All their routers must carry the same annotation X...
    let annotations: BTreeSet<Asn> = cand
        .iter()
        .map(|&i| view.router(graph.iface_ir[ir.links[i].dst.0 as usize]))
        .collect();
    let [x] = annotations.into_iter().collect::<Vec<_>>()[..] else {
        return;
    };
    if x.is_none() {
        return;
    }
    // ...and X must be a customer of an IR origin AS (and differ from the
    // provider origin the votes currently carry).
    let is_customer_of_origin = ir
        .origins
        .iter()
        .any(|&o| ctx.cache.rels().is_customer(x, o));
    if !is_customer_of_origin {
        return;
    }
    let mut flipped = false;
    for &i in &cand {
        if votes[i].is_some_and(|v| v != x) {
            votes[i] = Some(x);
            flipped = true;
        }
    }
    if flipped {
        ctx.sheet.inc(obs::names::REFINE_REALLOC_FIRINGS);
    }
}
