//! Incremental re-convergence for the churn workload (DESIGN.md §16).
//!
//! A churn epoch rebuilds the IR graph from the updated trace corpus and
//! re-runs phases 2–3. Most of that work is redundant: a topology event
//! touches a handful of ASes, so most link-connected refinement shards
//! receive byte-identical inputs and would converge to byte-identical
//! annotations. This module skips them.
//!
//! The unit of reuse is the shard, and the key is a **shard fingerprint**:
//! a stable FNV-1a hash over *everything the refinement loop reads* for
//! that shard — per-IR link structure, labels, origin/destination sets,
//! per-interface origin resolution, addresses, predecessor votes, the
//! post-last-hop initial annotations, and the frozen bits. Indices are
//! relativized to the shard (an IR is hashed as its position in
//! `shard.irs`, an interface as its position in `shard.ifaces`, and
//! predecessor interfaces by their addresses), so a shard keeps its
//! fingerprint when unrelated graph growth shifts the global index space.
//!
//! Because [`converge_shard`](super::parallel::converge_shard) is a pure
//! function of exactly those inputs (plus the relationship table and the
//! heuristic configuration, covered by the cache-level environment
//! fingerprint), a fingerprint hit replays the cached converged
//! annotations and convergence trace *byte-identically* — there is no
//! "approximately equal" path. Shards that miss are re-converged on the
//! shared [`pool::WorkerPool`] by the very same routine the full engine
//! uses, wavefront levels and all. The churn driver additionally
//! byte-compares every incremental epoch against a from-scratch recompute,
//! so a fingerprint collision (2⁻⁶⁴ per pair) cannot silently ship.

use crate::graph::IrGraph;
use crate::refine::engine::{effective_threads, ShardHasher, CONVERGENCE_HASH_SEED};
use crate::refine::parallel::{self, SweepCells, SweepCtx};
use crate::refine::shard::{Shard, ShardPlan};
use crate::{AnnotationState, Config};
use as_rel::{AsRelationships, CustomerCones, Relationship};
use net_types::Asn;
use std::collections::BTreeMap;

/// Domain separator folded into shard fingerprints (vs convergence hashes).
const FINGERPRINT_SEED: u64 = CONVERGENCE_HASH_SEED ^ 0x6368_7572_6e00_0001;
/// Domain separator for the environment fingerprint.
const ENV_SEED: u64 = CONVERGENCE_HASH_SEED ^ 0x6368_7572_6e00_0002;

/// A converged shard outcome in shard-relative form: final annotations for
/// `shard.irs` / `shard.ifaces` in member order, plus the convergence trace.
#[derive(Clone, Debug)]
struct ShardOutcome {
    /// Final router annotation per member IR (position-aligned with
    /// `shard.irs`).
    router: Vec<u32>,
    /// Final interface annotation per member interface (position-aligned
    /// with `shard.ifaces`).
    iface: Vec<u32>,
    /// The convergence hash trace `[h_0, ..., h_n]`; `n` is the iteration
    /// count.
    trace: Vec<u64>,
}

/// Cross-epoch cache of converged shard outcomes, keyed by shard
/// fingerprint.
///
/// The cache is rebuilt wholesale every epoch: entries for the epoch's
/// shards (hit or freshly converged) are kept, anything else is dropped, so
/// it never grows beyond one epoch's shard count. An environment change
/// (relationships or heuristic configuration) clears it entirely.
#[derive(Debug, Default)]
pub struct ShardCache {
    env: u64,
    entries: BTreeMap<u64, ShardOutcome>,
}

impl ShardCache {
    /// An empty cache; the first [`refine_incremental`] call converges
    /// every shard and populates it.
    pub fn new() -> ShardCache {
        ShardCache::default()
    }

    /// Cached shard outcomes currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no outcomes are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What one incremental refinement run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Shards re-converged because their fingerprint missed the cache.
    pub dirty_shards: usize,
    /// Shards replayed from the cache.
    pub reused_shards: usize,
    /// `state.iterations` after the run (max across all shards, cached or
    /// not — identical to what a full recompute reports).
    pub iterations: usize,
}

/// Everything outside the graph that the refinement heuristics read: the
/// relationship table and the heuristic knobs of [`Config`]. `threads` is
/// deliberately excluded — it can only change scheduling, never output.
fn env_fingerprint(rels: &AsRelationships, cfg: &Config) -> u64 {
    let mut h = ShardHasher::new(ENV_SEED);
    for (a, b, rel) in rels.iter() {
        h.write_u32(a.0);
        h.write_u32(b.0);
        h.write_u32(match rel {
            Relationship::Provider => 0,
            Relationship::Customer => 1,
            Relationship::Peer => 2,
        });
    }
    let flags = [
        cfg.enable_last_hop,
        cfg.enable_third_party,
        cfg.enable_realloc,
        cfg.enable_exceptions,
        cfg.enable_hidden_as,
        cfg.enable_ixp_heuristic,
    ]
    .iter()
    .fold(0u32, |acc, &f| (acc << 1) | u32::from(f));
    h.write_u32(flags);
    h.write_u64(cfg.realloc_cone_max as u64);
    h.write_u64(cfg.max_iterations as u64);
    h.finish()
}

/// Position of `x` in the ascending member list `members`.
#[inline]
fn rel_pos(members: &[u32], x: u32) -> u32 {
    members
        .binary_search(&x)
        .expect("member index present in its own shard") as u32
}

/// Fingerprints one shard: every graph field and every initial annotation
/// the convergence loop can read, in shard-relative form.
fn shard_fingerprint(graph: &IrGraph, state: &AnnotationState, shard: &Shard) -> u64 {
    let mut h = ShardHasher::new(FINGERPRINT_SEED);
    h.write_u64(shard.irs.len() as u64);
    h.write_u64(shard.ifaces.len() as u64);
    for &iri in &shard.irs {
        let ir = &graph.irs[iri as usize];
        h.write_u32(u32::from(state.frozen[iri as usize]));
        h.write_u32(state.router[iri as usize].0);
        h.write_u64(ir.ifaces.len() as u64);
        for &j in &ir.ifaces {
            h.write_u32(rel_pos(&shard.ifaces, j.0));
        }
        h.write_u64(ir.origins.len() as u64);
        for a in &ir.origins {
            h.write_u32(a.0);
        }
        h.write_u64(ir.dests.len() as u64);
        for a in &ir.dests {
            h.write_u32(a.0);
        }
        h.write_u64(ir.links.len() as u64);
        for link in &ir.links {
            h.write_u32(rel_pos(&shard.ifaces, link.dst.0));
            h.write_u32(link.label as u32);
            h.write_u64(link.origins.len() as u64);
            for a in &link.origins {
                h.write_u32(a.0);
            }
            h.write_u64(link.dests.len() as u64);
            for a in &link.dests {
                h.write_u32(a.0);
            }
        }
    }
    for &j in &shard.ifaces {
        let ji = j as usize;
        h.write_u32(graph.iface_addrs[ji]);
        let origin = graph.iface_origin[ji];
        h.write_u32(origin.asn.0);
        h.write_u32(origin.kind as u32);
        match origin.prefix {
            Some(p) => {
                h.write_u32(p.addr());
                h.write_u32(u32::from(p.len()));
            }
            None => h.write_u32(u32::MAX),
        }
        h.write_u32(state.iface[ji].0);
        h.write_u32(rel_pos(&shard.irs, graph.iface_ir[ji].0));
        let preds = &graph.preds[ji];
        h.write_u64(preds.len() as u64);
        for (pred, prior) in preds {
            h.write_u32(rel_pos(&shard.irs, pred.0));
            h.write_u64(prior.len() as u64);
            for &pi in prior {
                // Predecessor interfaces by address, not index: addresses
                // are what the voting heuristics compare, and they survive
                // global index shifts.
                h.write_u32(graph.iface_addrs[pi.0 as usize]);
            }
        }
    }
    h.finish()
}

/// Runs phase 3 incrementally: shards whose fingerprint hits `cache`
/// replay their cached annotations and convergence trace; the rest
/// converge on `wp` exactly as [`refine_in_pool`](super::refine_in_pool)
/// would converge them. On return, `state` (annotations, iteration count,
/// convergence traces) is byte-identical to what a full recompute with the
/// same inputs produces, and `cache` holds exactly this epoch's shards.
///
/// `state` must be the post-phase-2 state (last hops annotated, frozen
/// bits set) for the *current* `graph`.
#[allow(clippy::too_many_arguments)]
pub fn refine_incremental(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    cfg: &Config,
    state: &mut AnnotationState,
    wp: &pool::WorkerPool,
    rec: &obs::Recorder,
    cache: &mut ShardCache,
) -> IncrementalStats {
    use obs::names;

    let env = env_fingerprint(rels, cfg);
    if cache.env != env {
        cache.entries.clear();
        cache.env = env;
    }

    let plan = &graph.shards;
    let fingerprints: Vec<u64> = plan
        .shards
        .iter()
        .map(|s| shard_fingerprint(graph, state, s))
        .collect();

    // Replay hits straight into the state; collect the misses.
    let mut dirty: Vec<usize> = Vec::new();
    let mut traces: Vec<Vec<u64>> = vec![Vec::new(); plan.shards.len()];
    let mut iterations = 0usize;
    for (idx, shard) in plan.shards.iter().enumerate() {
        match cache.entries.get(&fingerprints[idx]) {
            Some(out) => {
                for (r, &iri) in shard.irs.iter().enumerate() {
                    state.router[iri as usize] = Asn(out.router[r]);
                }
                for (r, &j) in shard.ifaces.iter().enumerate() {
                    state.iface[j as usize] = Asn(out.iface[r]);
                }
                iterations = iterations.max(out.trace.len() - 1);
                traces[idx] = out.trace.clone();
            }
            None => {
                rec.tracer()
                    .instant_main(names::EV_REFINE_DIRTY_SHARD, idx as u64);
                dirty.push(idx);
            }
        }
    }

    // Converge the dirty subset with the full engine's machinery. The
    // subset plan's `ir_shard` is left empty: the convergence paths never
    // consult it.
    if !dirty.is_empty() {
        let sub = ShardPlan {
            shards: dirty.iter().map(|&i| plan.shards[i].clone()).collect(),
            ir_shard: Vec::new(),
        };
        let cells = SweepCells::new(state);
        let threads = effective_threads(wp.workers(), &sub);
        let tracer = rec.tracer();
        let (max_iter, sub_traces, sheet) = if threads <= 1 {
            let mut ctx = SweepCtx::new(graph, cfg, rels, cones);
            ctx.tracer = tracer.worker(names::TRACK_REFINE_WORKER, 0);
            let mut max_iter = 0;
            let mut sub_traces = Vec::with_capacity(sub.shards.len());
            for (k, shard) in sub.shards.iter().enumerate() {
                ctx.tracer.begin(names::EV_REFINE_SHARD, dirty[k] as u64);
                let run = parallel::converge_shard(
                    shard,
                    &cells,
                    &mut ctx,
                    cfg.max_iterations,
                    0,
                    1,
                    None,
                );
                ctx.tracer.end(names::EV_REFINE_SHARD);
                max_iter = max_iter.max(run.iterations);
                sub_traces.push(run.trace);
            }
            ctx.flush_cache_stats();
            tracer.submit(ctx.tracer);
            (max_iter, sub_traces, ctx.sheet)
        } else {
            parallel::refine_parallel(graph, &sub, &cells, rels, cones, cfg, threads, wp, &tracer)
        };
        cells.write_back(state);
        iterations = iterations.max(max_iter);
        for (k, trace) in sub_traces.into_iter().enumerate() {
            traces[dirty[k]] = trace;
        }
        rec.absorb(&sheet);
    }

    state.iterations = iterations;
    state.convergence_traces = traces;

    // Rebuild the cache to exactly this epoch's shards: refreshed hits,
    // fresh outcomes for the dirty ones, stale entries dropped.
    let mut entries = BTreeMap::new();
    for (idx, shard) in plan.shards.iter().enumerate() {
        entries.insert(
            fingerprints[idx],
            ShardOutcome {
                router: shard
                    .irs
                    .iter()
                    .map(|&iri| state.router[iri as usize].0)
                    .collect(),
                iface: shard
                    .ifaces
                    .iter()
                    .map(|&j| state.iface[j as usize].0)
                    .collect(),
                trace: state.convergence_traces[idx].clone(),
            },
        );
    }
    cache.entries = entries;

    let stats = IncrementalStats {
        dirty_shards: dirty.len(),
        reused_shards: plan.shards.len() - dirty.len(),
        iterations,
    };
    rec.add(names::CHURN_DIRTY_SHARDS, stats.dirty_shards as u64);
    rec.add(names::CHURN_REUSED_SHARDS, stats.reused_shards as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lasthop;
    use crate::Bdrmapit;
    use alias::{observed_addresses, resolve_midar};
    use as_rel::infer::{infer_relationships, InferenceConfig};
    use bgp::IpToAs;
    use traceroute::sim::{self, ProbeConfig};

    fn corpus(
        seed: u64,
    ) -> (
        Vec<traceroute::Trace>,
        alias::AliasSets,
        IpToAs,
        AsRelationships,
    ) {
        let net = topo_gen::Internet::generate(topo_gen::GeneratorConfig::tiny(seed));
        let cfg = ProbeConfig {
            per_prefix_cap: 2,
            ..ProbeConfig::default()
        };
        let vps = sim::select_vps(&net, 4, &[], seed);
        let traces = sim::probe_campaign(&net, &vps, &cfg);
        let observed = observed_addresses(&traces);
        let aliases = resolve_midar(&net, &observed, 0.9, seed);
        let rib = net.build_rib();
        let ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
        let rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
        (traces, aliases, ip2as, rels)
    }

    /// Fresh graph + post-lasthop state for a corpus.
    fn prepared(
        traces: &[traceroute::Trace],
        aliases: &alias::AliasSets,
        ip2as: &bgp::IpToAs,
        rels: &AsRelationships,
        cfg: &Config,
    ) -> (IrGraph, AnnotationState, CustomerCones) {
        let cones = CustomerCones::compute(rels);
        let graph = IrGraph::build(traces, aliases, ip2as, cfg, rels, &cones);
        let mut state = AnnotationState::new(&graph);
        lasthop::annotate_last_hops(&graph, rels, &cones, &mut state);
        (graph, state, cones)
    }

    fn assert_states_identical(a: &AnnotationState, b: &AnnotationState) {
        assert_eq!(a.router, b.router);
        assert_eq!(a.iface, b.iface);
        assert_eq!(a.frozen, b.frozen);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.convergence_traces, b.convergence_traces);
    }

    #[test]
    fn cold_cache_matches_full_recompute_and_warms() {
        let (traces, aliases, ip2as, rels) = corpus(21);
        let cfg = Config {
            threads: 1,
            ..Config::default()
        };
        let full = Bdrmapit::new(cfg.clone()).run(&traces, &aliases, &ip2as, &rels);

        let (graph, mut state, cones) = prepared(&traces, &aliases, &ip2as, &rels, &cfg);
        let wp = pool::WorkerPool::new(1);
        let rec = obs::Recorder::disabled();
        let mut cache = ShardCache::new();
        let stats = refine_incremental(
            &graph, &rels, &cones, &cfg, &mut state, &wp, &rec, &mut cache,
        );
        assert_eq!(stats.reused_shards, 0, "cold cache reuses nothing");
        assert_eq!(stats.dirty_shards, graph.shards.shards.len());
        assert_states_identical(&state, &full.state);
        assert_eq!(cache.len(), graph.shards.shards.len());

        // Second run over the identical corpus: everything replays.
        let (graph2, mut state2, cones2) = prepared(&traces, &aliases, &ip2as, &rels, &cfg);
        let stats2 = refine_incremental(
            &graph2,
            &rels,
            &cones2,
            &cfg,
            &mut state2,
            &wp,
            &rec,
            &mut cache,
        );
        assert_eq!(stats2.dirty_shards, 0, "warm cache re-converges nothing");
        assert_eq!(stats2.reused_shards, graph2.shards.shards.len());
        assert_states_identical(&state2, &full.state);
    }

    #[test]
    fn incremental_is_thread_invariant() {
        let (traces, aliases, ip2as, rels) = corpus(22);
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = Config {
                threads,
                ..Config::default()
            };
            let (graph, mut state, cones) = prepared(&traces, &aliases, &ip2as, &rels, &cfg);
            let wp = pool::WorkerPool::new(threads);
            let rec = obs::Recorder::disabled();
            let mut cache = ShardCache::new();
            refine_incremental(
                &graph, &rels, &cones, &cfg, &mut state, &wp, &rec, &mut cache,
            );
            results.push(state);
        }
        assert_states_identical(&results[0], &results[1]);
        assert_states_identical(&results[0], &results[2]);
    }

    #[test]
    fn env_change_clears_the_cache() {
        let (traces, aliases, ip2as, rels) = corpus(23);
        let cfg = Config {
            threads: 1,
            ..Config::default()
        };
        let wp = pool::WorkerPool::new(1);
        let rec = obs::Recorder::disabled();
        let mut cache = ShardCache::new();
        let (graph, mut state, cones) = prepared(&traces, &aliases, &ip2as, &rels, &cfg);
        refine_incremental(
            &graph, &rels, &cones, &cfg, &mut state, &wp, &rec, &mut cache,
        );

        // Toggling a heuristic must not replay outcomes computed under the
        // old configuration.
        let cfg2 = Config {
            enable_hidden_as: false,
            threads: 1,
            ..Config::default()
        };
        let (graph2, mut state2, cones2) = prepared(&traces, &aliases, &ip2as, &rels, &cfg2);
        let stats = refine_incremental(
            &graph2,
            &rels,
            &cones2,
            &cfg2,
            &mut state2,
            &wp,
            &rec,
            &mut cache,
        );
        assert_eq!(stats.reused_shards, 0, "config change must clear cache");
        let full = Bdrmapit::new(cfg2.clone()).run(&traces, &aliases, &ip2as, &rels);
        assert_states_identical(&state2, &full.state);
    }

    #[test]
    fn fingerprint_is_sensitive_to_initial_annotations() {
        let (traces, aliases, ip2as, rels) = corpus(24);
        let cfg = Config {
            threads: 1,
            ..Config::default()
        };
        let (graph, state, _) = prepared(&traces, &aliases, &ip2as, &rels, &cfg);
        let shard = &graph.shards.shards[0];
        let base = shard_fingerprint(&graph, &state, shard);
        assert_eq!(base, shard_fingerprint(&graph, &state, shard));
        let mut tweaked = state.clone();
        tweaked.router[shard.irs[0] as usize] = Asn(0xdead);
        assert_ne!(base, shard_fingerprint(&graph, &tweaked, shard));
        let mut tweaked = state.clone();
        tweaked.frozen[shard.irs[0] as usize] = !tweaked.frozen[shard.irs[0] as usize];
        assert_ne!(base, shard_fingerprint(&graph, &tweaked, shard));
    }
}
