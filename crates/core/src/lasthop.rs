//! Phase 2: annotating last-hop IRs (§5, Algorithm 1).
//!
//! ≈98% of IRs in an ITDK have no outgoing links (destinations, firewalled
//! edges, rate-limited tails). Their annotations come entirely from static
//! metadata — origin AS sets and destination AS sets — and are *frozen*:
//! phase 3 never revises them, but leans on them heavily.

use crate::graph::{Ir, IrGraph};
use crate::AnnotationState;
use as_rel::{AsRelationships, CustomerCones};
use net_types::Asn;
use std::collections::BTreeSet;

/// Annotates every IR without outgoing links. Annotations are written into
/// `state.router` and marked frozen.
pub fn annotate_last_hops(
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
    state: &mut AnnotationState,
) {
    for ir in graph.last_hop_irs() {
        let asn = if ir.dests.is_empty() {
            annotate_empty_dest(ir, graph, rels, cones)
        } else {
            annotate_with_dests(ir, rels, cones)
        };
        if let Some(asn) = asn {
            state.router[ir.id.0 as usize] = asn;
            state.frozen[ir.id.0 as usize] = true;
        }
    }
}

/// §5.1: only the origin AS set is available (all interfaces appeared solely
/// in Echo Replies, so no destination ASes were recorded).
fn annotate_empty_dest(
    ir: &Ir,
    graph: &IrGraph,
    rels: &AsRelationships,
    cones: &CustomerCones,
) -> Option<Asn> {
    let origins = &ir.origins;
    if origins.is_empty() {
        return None;
    }
    if origins.len() == 1 {
        return origins.iter().next().copied();
    }
    // 1. An origin AS with a relationship to every other origin AS; ties go
    //    to the smallest customer cone (the presumed customer).
    let related_to_all: Vec<Asn> = origins
        .iter()
        .copied()
        .filter(|&a| {
            origins
                .iter()
                .all(|&o| o == a || rels.has_relationship(a, o))
        })
        .collect();
    if !related_to_all.is_empty() {
        return cones.smallest_cone(related_to_all);
    }
    // 2. An AS outside the set related to every AS in the set.
    let mut candidates: Option<BTreeSet<Asn>> = None;
    for &o in origins {
        let neigh: BTreeSet<Asn> = rels.neighbors_of(o);
        candidates = Some(match candidates {
            None => neigh,
            Some(prev) => prev.intersection(&neigh).copied().collect(),
        });
        if candidates.as_ref().is_some_and(BTreeSet::is_empty) {
            break;
        }
    }
    if let Some(cands) = candidates {
        let outside: Vec<Asn> = cands.into_iter().filter(|a| !origins.contains(a)).collect();
        if !outside.is_empty() {
            return cones.smallest_cone(outside);
        }
    }
    // 3. The origin AS with the most interface mappings (one vote per
    //    interface on the IR), ties to the smallest cone.
    let mut weighted: net_types::Counter<Asn> = net_types::Counter::new();
    for &ifidx in &ir.ifaces {
        let o = graph.iface_origin[ifidx.0 as usize].asn;
        if o.is_some() {
            weighted.add(o);
        }
    }
    if weighted.is_empty() {
        // Defensive: no per-interface data (possible for synthetic IRs in
        // tests); fall back to the unweighted origin set.
        return cones.smallest_cone(origins.iter().copied());
    }
    cones.smallest_cone(weighted.max_keys())
}

/// §5.2, Algorithm 1: destination ASes constrain the inference.
fn annotate_with_dests(ir: &Ir, rels: &AsRelationships, cones: &CustomerCones) -> Option<Asn> {
    let dests = &ir.dests;
    let origins = &ir.origins;

    // Line 3: overlap between origins and destinations.
    let overlap: Vec<Asn> = origins.intersection(dests).copied().collect();
    if overlap.len() == 1 {
        return Some(overlap[0]);
    }
    if overlap.len() > 1 {
        // Multiple overlaps: the smallest cone is the presumed reallocation
        // customer (§5.2 "Overlapping ASes").
        return cones.smallest_cone(overlap);
    }

    // Lines 4–6: destinations related to an origin.
    let related: Vec<Asn> = dests
        .iter()
        .copied()
        .filter(|&d| origins.iter().any(|&o| rels.has_relationship(d, o)))
        .collect();
    if !related.is_empty() {
        // max |customerCone(d) ∩ D|, ties toward the larger cone then the
        // lower ASN (the transit provider for the others).
        return related.into_iter().max_by_key(|&d| {
            (
                cones.intersection_size(d, dests),
                cones.size(d),
                std::cmp::Reverse(d),
            )
        });
    }

    // Lines 7–10: no relationships at all.
    let a = cones.smallest_cone(dests.iter().copied())?;
    // A bridging AS: provider of `a`(the smallest-cone destination) and
    // customer of an origin AS.
    let customers_of_origins: BTreeSet<Asn> =
        origins.iter().flat_map(|&o| rels.customers_of(o)).collect();
    let bridges: Vec<Asn> = rels
        .providers_of(a)
        .filter(|p| customers_of_origins.contains(p))
        .collect();
    if bridges.len() == 1 {
        return Some(bridges[0]);
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IrId;

    fn ir(origins: &[u32], dests: &[u32]) -> Ir {
        Ir {
            id: IrId(0),
            ifaces: vec![],
            links: vec![],
            origins: origins.iter().map(|&a| Asn(a)).collect(),
            dests: dests.iter().map(|&a| Asn(a)).collect(),
        }
    }

    fn rels() -> AsRelationships {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(1), Asn(2));
        r.add_p2c(Asn(2), Asn(3));
        r.add_p2c(Asn(1), Asn(4));
        r.add_p2p(Asn(2), Asn(4));
        r
    }

    #[test]
    fn empty_dest_single_origin() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        assert_eq!(
            annotate_empty_dest(&ir(&[7], &[]), &IrGraph::default(), &r, &cones),
            Some(Asn(7))
        );
    }

    #[test]
    fn empty_dest_related_origin_smallest_cone() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // Origins {1, 2}: both related; 2 has the smaller cone.
        assert_eq!(
            annotate_empty_dest(&ir(&[1, 2], &[]), &IrGraph::default(), &r, &cones),
            Some(Asn(2))
        );
    }

    #[test]
    fn empty_dest_bridge_outside_set() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // Origins {1, 3}: unrelated to each other, but AS2 relates to both.
        assert_eq!(
            annotate_empty_dest(&ir(&[1, 3], &[]), &IrGraph::default(), &r, &cones),
            Some(Asn(2))
        );
    }

    #[test]
    fn empty_dest_fallback_smallest_cone() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // Origins {3, 9}: no relationships at all; pick smallest cone
        // (both stubs, tie → lowest ASN).
        assert_eq!(
            annotate_empty_dest(&ir(&[3, 9], &[]), &IrGraph::default(), &r, &cones),
            Some(Asn(3))
        );
    }

    #[test]
    fn empty_both_sets() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        assert_eq!(
            annotate_empty_dest(&ir(&[], &[]), &IrGraph::default(), &r, &cones),
            None
        );
    }

    #[test]
    fn dests_single_overlap_wins() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // Alg. 1 line 3: O ∩ D = {2}.
        assert_eq!(
            annotate_with_dests(&ir(&[1, 2], &[2, 9]), &r, &cones),
            Some(Asn(2))
        );
    }

    #[test]
    fn dests_multi_overlap_smallest_cone() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // O ∩ D = {1, 3}: 3 is the stub (smallest cone).
        assert_eq!(
            annotate_with_dests(&ir(&[1, 3], &[1, 3]), &r, &cones),
            Some(Asn(3))
        );
    }

    #[test]
    fn dests_related_destination() {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        // Fig. 7's IR3 analogue: origins {2}, dests {4, 9}; 4 has a
        // relationship (peer) with 2, 9 has none → 4.
        assert_eq!(
            annotate_with_dests(&ir(&[2], &[4, 9]), &r, &cones),
            Some(Asn(4))
        );
    }

    #[test]
    fn dests_related_tie_prefers_larger_coverage() {
        let mut r = rels();
        // Make 4 a provider of 9 so its cone covers more of D.
        r.add_p2c(Asn(4), Asn(9));
        // Both 2 and 4 relate to origin 1; 4's cone covers {4,9} of D.
        let cones = CustomerCones::compute(&r);
        assert_eq!(
            annotate_with_dests(&ir(&[1], &[2, 4, 9]), &r, &cones),
            Some(Asn(4))
        );
    }

    #[test]
    fn dests_unrelated_bridge() {
        let mut r = AsRelationships::new();
        // origins {10}; dest {30}. 20 is customer of 10 and provider of 30.
        r.add_p2c(Asn(10), Asn(20));
        r.add_p2c(Asn(20), Asn(30));
        let cones = CustomerCones::compute(&r);
        assert_eq!(
            annotate_with_dests(&ir(&[10], &[30]), &r, &cones),
            Some(Asn(20))
        );
    }

    #[test]
    fn dests_unrelated_no_bridge_smallest_cone() {
        let r = AsRelationships::new();
        let cones = CustomerCones::compute(&r);
        assert_eq!(
            annotate_with_dests(&ir(&[10], &[30, 40]), &r, &cones),
            Some(Asn(30))
        );
    }
}
