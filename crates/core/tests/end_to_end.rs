//! End-to-end: run bdrmapIT on a synthetic Internet and validate router
//! annotations against generator ground truth.

use alias::{observed_addresses, resolve_midar};
use as_rel::infer::{infer_relationships, InferenceConfig};
use bdrmapit_core::{Bdrmapit, Config};
use bgp::IpToAs;
use net_types::Asn;
use topo_gen::{GeneratorConfig, Internet};
use traceroute::sim::{probe_campaign, select_vps, ProbeConfig};

struct Pipeline {
    net: Internet,
    result: bdrmapit_core::Annotated,
}

fn run_pipeline(seed: u64, vps: usize) -> Pipeline {
    let net = Internet::generate(GeneratorConfig::tiny(seed));
    let probe_cfg = ProbeConfig {
        per_prefix_cap: 3,
        ..ProbeConfig::default()
    };
    let vp_routers = select_vps(&net, vps, &[], seed);
    let traces = probe_campaign(&net, &vp_routers, &probe_cfg);
    assert!(traces.len() > 100, "campaign too small: {}", traces.len());

    let rib = net.build_rib();
    let ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
    let rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
    let observed = observed_addresses(&traces);
    let aliases = resolve_midar(&net, &observed, 0.9, seed);

    let result = Bdrmapit::new(Config::default()).run(&traces, &aliases, &ip2as, &rels);
    Pipeline { net, result }
}

/// Fraction of observed interfaces whose IR annotation matches the true
/// router owner.
fn router_accuracy(p: &Pipeline) -> (usize, usize) {
    let mut correct = 0;
    let mut total = 0;
    for (addr, asn) in p.result.router_annotations() {
        let Some(iface) = p.net.topology.iface_by_addr(addr) else {
            continue; // destination host addresses are not interfaces
        };
        if asn.is_none() {
            continue;
        }
        total += 1;
        if p.net.topology.owner(iface.router) == asn {
            correct += 1;
        }
    }
    (correct, total)
}

#[test]
fn annotates_most_observed_interfaces() {
    let p = run_pipeline(11, 6);
    let annotated = p
        .result
        .router_annotations()
        .iter()
        .filter(|(_, a)| a.is_some())
        .count();
    let total = p.result.graph.iface_addrs.len();
    assert!(
        annotated * 10 >= total * 9,
        "only {annotated}/{total} interfaces annotated"
    );
}

#[test]
fn router_ownership_accuracy_is_high() {
    let p = run_pipeline(11, 6);
    let (correct, total) = router_accuracy(&p);
    assert!(total > 200, "too few annotated interfaces: {total}");
    let acc = correct as f64 / total as f64;
    assert!(
        acc > 0.85,
        "router annotation accuracy {acc:.3} ({correct}/{total}) below floor"
    );
}

#[test]
fn interdomain_links_are_mostly_real() {
    let p = run_pipeline(13, 6);
    let links = p.result.interdomain_links();
    assert!(!links.is_empty());
    let mut correct = 0;
    let mut total = 0;
    for l in &links {
        // An inferred link (ir_as, conn_as) is correct when the true AS
        // adjacency exists in the generated graph.
        if l.ir_as == l.conn_as {
            continue;
        }
        total += 1;
        if p.net
            .graph
            .relationships
            .has_relationship(l.ir_as, l.conn_as)
        {
            correct += 1;
        }
    }
    assert!(total > 20, "too few interdomain inferences: {total}");
    let precision = correct as f64 / total as f64;
    assert!(
        precision > 0.75,
        "AS-adjacency precision {precision:.3} ({correct}/{total}) below floor"
    );
}

#[test]
fn refinement_terminates_quickly() {
    let p = run_pipeline(17, 5);
    assert!(
        p.result.state.iterations < 50,
        "took {} iterations",
        p.result.state.iterations
    );
    assert!(p.result.state.iterations >= 1);
}

#[test]
fn deterministic_end_to_end() {
    let p1 = run_pipeline(19, 4);
    let p2 = run_pipeline(19, 4);
    assert_eq!(
        p1.result.router_annotations(),
        p2.result.router_annotations()
    );
    assert_eq!(p1.result.interdomain_links(), p2.result.interdomain_links());
}

#[test]
fn last_hop_phase_annotates_firewalled_edges() {
    // With heavy firewalling, traces toward firewalled stubs end at their
    // providers' borders; phase 2 must still attribute those last-hop IRs.
    let net = Internet::generate(GeneratorConfig {
        stub_firewall_prob: 0.6,
        ..GeneratorConfig::tiny(23)
    });
    let probe_cfg = ProbeConfig::default();
    let vp_routers = select_vps(&net, 5, &[], 23);
    let traces = probe_campaign(&net, &vp_routers, &probe_cfg);
    let rib = net.build_rib();
    let ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
    let rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
    let observed = observed_addresses(&traces);
    let aliases = resolve_midar(&net, &observed, 0.9, 23);

    let with = Bdrmapit::new(Config::default()).run(&traces, &aliases, &ip2as, &rels);
    let without = Bdrmapit::new(Config {
        enable_last_hop: false,
        ..Config::default()
    })
    .run(&traces, &aliases, &ip2as, &rels);

    // The last-hop phase must produce strictly more annotated IRs.
    let count =
        |r: &bdrmapit_core::Annotated| r.state.router.iter().filter(|a| a.is_some()).count();
    assert!(
        count(&with) > count(&without),
        "last-hop phase added no annotations"
    );
    // And links toward firewalled stubs should be discoverable: some
    // inferred link must name a firewalled AS even though its routers never
    // answered a probe.
    let firewalled_named = with
        .interdomain_links()
        .iter()
        .any(|l| net.is_firewalled(l.ir_as) || net.is_firewalled(l.conn_as));
    assert!(
        firewalled_named,
        "no inferred link names a firewalled (silent) AS"
    );
}

#[test]
fn works_without_alias_resolution() {
    // §7.4: bdrmapIT runs fine on a pure interface graph.
    let net = Internet::generate(GeneratorConfig::tiny(29));
    let probe_cfg = ProbeConfig::default();
    let vp_routers = select_vps(&net, 5, &[], 29);
    let traces = probe_campaign(&net, &vp_routers, &probe_cfg);
    let rib = net.build_rib();
    let ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
    let rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());

    let result =
        Bdrmapit::new(Config::default()).run(&traces, &alias::AliasSets::empty(), &ip2as, &rels);
    // Every IR is a singleton.
    for ir in &result.graph.irs {
        assert_eq!(ir.ifaces.len(), 1);
    }
    let mut correct = 0;
    let mut total = 0;
    for (addr, asn) in result.router_annotations() {
        let Some(iface) = net.topology.iface_by_addr(addr) else {
            continue;
        };
        if asn.is_none() {
            continue;
        }
        total += 1;
        if net.topology.owner(iface.router) == asn {
            correct += 1;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.8, "no-alias accuracy {acc:.3} below floor");
}

#[test]
fn ixp_addresses_never_annotated_with_ixp_origin() {
    let p = run_pipeline(31, 5);
    for (i, addr) in p.result.graph.iface_addrs.iter().enumerate() {
        let origin = p.result.graph.iface_origin[i];
        if origin.kind == bgp::OriginKind::Ixp {
            // The IR holding an IXP port must still get a member-AS
            // annotation, never AS0.
            let ir = p.result.graph.iface_ir[i];
            let ann = p.result.state.router[ir.0 as usize];
            let _ = addr;
            if ann.is_some() {
                assert_ne!(ann, Asn::NONE);
            }
        }
    }
}
