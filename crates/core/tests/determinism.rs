//! Serial/parallel equivalence: the refinement engine must produce
//! bit-identical annotations for every thread count (the contract stated on
//! [`Config::threads`] and proven structurally in `refine::parallel`). These
//! tests check it empirically over arbitrary generated corpora, alongside
//! the shard-plan invariants the equivalence argument rests on.

use alias::AliasSets;
use as_rel::{AsRelationships, CustomerCones};
use bdrmapit_core::{Bdrmapit, Config, IrGraph};
use bgp::IpToAs;
use net_types::{Asn, Prefix};
use proptest::prelude::*;
use traceroute::{Hop, ReplyType, StopReason, Trace};

/// Oracle: 10.N.0.0/16 → AS N for N in 1..=6; everything else unannounced.
fn oracle() -> IpToAs {
    IpToAs::from_pairs(
        (1..=6u32).map(|n| (format!("10.{n}.0.0/16").parse::<Prefix>().unwrap(), Asn(n))),
    )
}

fn rels() -> AsRelationships {
    let mut r = AsRelationships::new();
    r.add_p2p(Asn(1), Asn(2));
    r.add_p2c(Asn(1), Asn(3));
    r.add_p2c(Asn(2), Asn(4));
    r.add_p2c(Asn(3), Asn(5));
    r.add_p2c(Asn(4), Asn(6));
    r
}

fn addr_strategy() -> impl Strategy<Value = u32> {
    (1u32..=7, 0u32..200).prop_map(|(net, host)| {
        if net == 7 {
            0xAC10_0000 + host // 172.16/16: unannounced
        } else {
            0x0A00_0000 + (net << 16) + host
        }
    })
}

fn reply_strategy() -> impl Strategy<Value = ReplyType> {
    prop_oneof![
        5 => Just(ReplyType::TimeExceeded),
        1 => Just(ReplyType::EchoReply),
        1 => Just(ReplyType::DestUnreachable),
    ]
}

prop_compose! {
    fn trace_strategy()(
        dst in addr_strategy(),
        hops in proptest::collection::vec(
            proptest::option::weighted(0.8, (addr_strategy(), reply_strategy())),
            1..10
        ),
    ) -> Trace {
        Trace {
            monitor: "vp".into(),
            src: 0x0A01_00FE,
            dst,
            hops: hops
                .into_iter()
                .map(|h| h.map(|(addr, reply)| Hop { addr, reply }))
                .collect(),
            stop: StopReason::GapLimit,
        }
    }
}

fn corpus_strategy() -> impl Strategy<Value = Vec<Trace>> {
    proptest::collection::vec(trace_strategy(), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline guarantee: `threads` never changes a single annotation —
    /// nor, with telemetry enabled, a single deterministic counter or
    /// histogram. Thread counts 2 and 8 exercise both parallel regimes
    /// (fewer and more workers than most corpora have shards/level slots)
    /// against serial; each count also runs with event tracing enabled,
    /// which must be just as write-only as the metric sheets.
    #[test]
    fn thread_count_never_changes_results(traces in corpus_strategy()) {
        let run = |threads: usize, tracing: bool| {
            let cfg = Config { threads, ..Config::default() };
            let rec = if tracing {
                // A small ring so large corpora also exercise wraparound.
                obs::Recorder::with_tracing(false, 4096)
            } else {
                obs::Recorder::new(false)
            };
            let annotated = Bdrmapit::new(cfg)
                .with_obs(rec.clone())
                .run(&traces, &AliasSets::empty(), &oracle(), &rels());
            (annotated, rec.report())
        };
        let (serial, serial_report) = run(1, false);
        for (threads, tracing) in [(1usize, true), (2, false), (2, true), (8, false), (8, true)] {
            let (parallel, parallel_report) = run(threads, tracing);
            // Telemetry determinism: the counter/histogram slice of the run
            // report is thread-count-invariant (wall times and exec metrics
            // are excluded by deterministic_view, per DESIGN.md §10).
            prop_assert_eq!(
                serial_report.deterministic_view(),
                parallel_report.deterministic_view(),
                "deterministic metrics diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                serial.router_annotations(),
                parallel.router_annotations(),
                "router annotations diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                serial.interdomain_links(),
                parallel.interdomain_links(),
                "interdomain links diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                &serial.state.iface,
                &parallel.state.iface,
                "interface annotations diverged at threads={}",
                threads
            );
            prop_assert_eq!(serial.state.iterations, parallel.state.iterations);
            // Stronger than fixpoint equality: the per-shard convergence
            // hash traces must match step for step, so an ordering bug that
            // happens to converge to the same answer still fails here.
            prop_assert_eq!(
                &serial.state.convergence_traces,
                &parallel.state.convergence_traces,
                "convergence traces diverged at threads={}",
                threads
            );
            prop_assert!(
                !serial.state.convergence_traces.is_empty()
                    || serial.graph.shards.shards.is_empty(),
                "traces missing despite a non-empty shard plan"
            );
        }
        // Telemetry is write-only: running with the recorder disabled gives
        // the same annotations and convergence traces as with it enabled.
        let bare = Bdrmapit::new(Config { threads: 1, ..Config::default() })
            .run(&traces, &AliasSets::empty(), &oracle(), &rels());
        prop_assert_eq!(
            serial.router_annotations(),
            bare.router_annotations(),
            "enabling telemetry changed the annotations"
        );
        prop_assert_eq!(
            &serial.state.convergence_traces,
            &bare.state.convergence_traces,
            "enabling telemetry changed the convergence traces"
        );
    }

    /// Phase 1 in isolation: the interned two-pass build (DESIGN.md §12) is
    /// structurally identical to serial for every thread count — every
    /// field of the graph, not just the annotations derived from it. Alias
    /// groups are synthesized from the corpus so grouped-IR numbering is
    /// exercised, not just singletons.
    #[test]
    fn graph_build_is_thread_count_invariant(traces in corpus_strategy()) {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        let mut observed: Vec<u32> = traces
            .iter()
            .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
            .collect();
        observed.sort_unstable();
        observed.dedup();
        let aliases = AliasSets::from_groups(
            observed
                .chunks(2)
                .map(|pair| pair.iter().copied().collect::<std::collections::BTreeSet<u32>>()),
        );
        let build = |threads: usize| {
            let cfg = Config { threads, ..Config::default() };
            IrGraph::build(&traces, &aliases, &oracle(), &cfg, &r, &cones)
        };
        let serial = build(1);
        for threads in [2usize, 8] {
            let parallel = build(threads);
            prop_assert_eq!(&serial.interner, &parallel.interner, "threads={}", threads);
            prop_assert_eq!(&serial.iface_addrs, &parallel.iface_addrs, "threads={}", threads);
            prop_assert_eq!(&serial.iface_origin, &parallel.iface_origin, "threads={}", threads);
            prop_assert_eq!(&serial.iface_ir, &parallel.iface_ir, "threads={}", threads);
            prop_assert_eq!(&serial.iface_dests, &parallel.iface_dests, "threads={}", threads);
            prop_assert_eq!(&serial.preds, &parallel.preds, "threads={}", threads);
            prop_assert_eq!(
                serde_json::to_string(&serial.irs).unwrap(),
                serde_json::to_string(&parallel.irs).unwrap(),
                "IRs diverged at threads={}",
                threads
            );
        }
    }

    /// The shard plan the equivalence rests on: every IR lands in exactly
    /// one shard, every interface follows its IR, and the wavefront levels
    /// of each shard are a partition of its mid-path set.
    #[test]
    fn shard_plan_partitions_every_built_graph(traces in corpus_strategy()) {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        let g = IrGraph::build(&traces, &AliasSets::empty(), &oracle(), &Config::default(), &r, &cones);
        let plan = &g.shards;

        let mut ir_seen = vec![0u32; g.irs.len()];
        let mut iface_seen = vec![0u32; g.iface_addrs.len()];
        for (sid, shard) in plan.shards.iter().enumerate() {
            for &ir in &shard.irs {
                ir_seen[ir as usize] += 1;
                prop_assert_eq!(plan.ir_shard[ir as usize], sid as u32);
            }
            for &j in &shard.ifaces {
                iface_seen[j as usize] += 1;
                prop_assert_eq!(
                    plan.ir_shard[g.iface_ir[j as usize].0 as usize],
                    sid as u32,
                    "interface in a different shard than its IR"
                );
            }
            let mut level_irs: Vec<u32> = shard.levels.iter().flatten().copied().collect();
            level_irs.sort_unstable();
            prop_assert_eq!(&level_irs, &shard.mid_path, "levels must partition mid_path");
            // Every link stays inside the shard (the independence property).
            for &i in &shard.irs {
                for link in &g.irs[i as usize].links {
                    let jr = g.iface_ir[link.dst.0 as usize].0;
                    prop_assert_eq!(plan.ir_shard[jr as usize], sid as u32, "link escapes shard");
                }
            }
        }
        prop_assert!(ir_seen.iter().all(|&c| c == 1), "IR not in exactly one shard");
        prop_assert!(iface_seen.iter().all(|&c| c == 1), "iface not in exactly one shard");
    }
}
