//! Property tests on the core algorithm: whatever corpus the measurement
//! layer produces, graph construction and refinement must uphold their
//! structural invariants.

use alias::AliasSets;
use as_rel::{AsRelationships, CustomerCones};
use bdrmapit_core::{Bdrmapit, Config, IrGraph};
use bgp::IpToAs;
use net_types::{Asn, Prefix};
use proptest::prelude::*;
use std::collections::BTreeSet;
use traceroute::{Hop, ReplyType, StopReason, Trace};

/// Oracle: 10.N.0.0/16 → AS N for N in 1..=6; everything else unannounced.
fn oracle() -> IpToAs {
    IpToAs::from_pairs(
        (1..=6u32).map(|n| (format!("10.{n}.0.0/16").parse::<Prefix>().unwrap(), Asn(n))),
    )
}

fn rels() -> AsRelationships {
    let mut r = AsRelationships::new();
    r.add_p2p(Asn(1), Asn(2));
    r.add_p2c(Asn(1), Asn(3));
    r.add_p2c(Asn(2), Asn(4));
    r.add_p2c(Asn(3), Asn(5));
    r.add_p2c(Asn(4), Asn(6));
    r
}

/// Strategy: an address inside one of the six announced /16s (or, rarely,
/// unannounced space).
fn addr_strategy() -> impl Strategy<Value = u32> {
    (1u32..=7, 0u32..200).prop_map(|(net, host)| {
        if net == 7 {
            0xAC10_0000 + host // 172.16/16: unannounced
        } else {
            0x0A00_0000 + (net << 16) + host
        }
    })
}

fn reply_strategy() -> impl Strategy<Value = ReplyType> {
    prop_oneof![
        5 => Just(ReplyType::TimeExceeded),
        1 => Just(ReplyType::EchoReply),
        1 => Just(ReplyType::DestUnreachable),
    ]
}

prop_compose! {
    fn trace_strategy()(
        dst in addr_strategy(),
        hops in proptest::collection::vec(
            proptest::option::weighted(0.8, (addr_strategy(), reply_strategy())),
            1..10
        ),
    ) -> Trace {
        Trace {
            monitor: "vp".into(),
            src: 0x0A01_00FE,
            dst,
            hops: hops
                .into_iter()
                .map(|h| h.map(|(addr, reply)| Hop { addr, reply }))
                .collect(),
            stop: StopReason::GapLimit,
        }
    }
}

fn corpus_strategy() -> impl Strategy<Value = Vec<Trace>> {
    proptest::collection::vec(trace_strategy(), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_construction_invariants(traces in corpus_strategy()) {
        let r = rels();
        let cones = CustomerCones::compute(&r);
        let g = IrGraph::build(&traces, &AliasSets::empty(), &oracle(), &Config::default(), &r, &cones);

        // Every responsive address has exactly one interface and one IR.
        let observed: BTreeSet<u32> = traces
            .iter()
            .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
            .collect();
        prop_assert_eq!(g.iface_addrs.len(), observed.len());
        for &addr in &observed {
            let idx = g.iface_of_addr(addr).expect("observed addr indexed");
            prop_assert_eq!(g.iface_addrs[idx.0 as usize], addr);
            let ir = g.iface_ir[idx.0 as usize];
            prop_assert!(g.irs[ir.0 as usize].ifaces.contains(&idx));
        }

        // Links point at observed interfaces, never at the IR itself, and
        // their origin sets only contain origins of the IR's own interfaces.
        for ir in &g.irs {
            for link in &ir.links {
                prop_assert!((link.dst.0 as usize) < g.iface_addrs.len());
                prop_assert!(g.iface_ir[link.dst.0 as usize] != ir.id, "self link");
                let own_origins: BTreeSet<Asn> = ir
                    .ifaces
                    .iter()
                    .map(|&i| g.iface_origin[i.0 as usize].asn)
                    .filter(|a| a.is_some())
                    .collect();
                for o in &link.origins {
                    prop_assert!(own_origins.contains(o), "foreign origin in L");
                }
            }
        }
    }

    #[test]
    fn refinement_terminates_and_is_deterministic(traces in corpus_strategy()) {
        let runner = Bdrmapit::new(Config::default());
        let a = runner.run(&traces, &AliasSets::empty(), &oracle(), &rels());
        let b = runner.run(&traces, &AliasSets::empty(), &oracle(), &rels());
        prop_assert!(a.state.iterations <= Config::default().max_iterations);
        prop_assert_eq!(a.router_annotations(), b.router_annotations());
        prop_assert_eq!(a.interdomain_links(), b.interdomain_links());
    }

    #[test]
    fn annotations_come_from_known_universe(traces in corpus_strategy()) {
        let result = Bdrmapit::new(Config::default())
            .run(&traces, &AliasSets::empty(), &oracle(), &rels());
        // Any annotation must name an AS that exists in the oracle or the
        // relationship graph — the algorithm can never invent an AS.
        let universe: BTreeSet<Asn> = (1..=6).map(Asn).collect();
        for (_, asn) in result.router_annotations() {
            if asn.is_some() {
                prop_assert!(universe.contains(&asn), "invented {asn}");
            }
        }
        for link in result.interdomain_links() {
            prop_assert!(universe.contains(&link.ir_as));
            prop_assert!(universe.contains(&link.conn_as));
            prop_assert!(link.ir_as != link.conn_as);
        }
    }

    #[test]
    fn alias_grouping_never_splits(traces in corpus_strategy(), group_seed in 0u64..1000) {
        // Group two random observed addresses: the graph must put them on
        // one IR and produce no more IRs than the no-alias graph.
        let observed: Vec<u32> = traces
            .iter()
            .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assume!(observed.len() >= 2);
        let a = observed[group_seed as usize % observed.len()];
        let b = observed[(group_seed as usize + 1) % observed.len()];
        prop_assume!(a != b);
        let aliases = AliasSets::from_groups([BTreeSet::from([a, b])]);
        let r = rels();
        let cones = CustomerCones::compute(&r);
        let with = IrGraph::build(&traces, &aliases, &oracle(), &Config::default(), &r, &cones);
        let without = IrGraph::build(&traces, &AliasSets::empty(), &oracle(), &Config::default(), &r, &cones);
        prop_assert_eq!(with.ir_of_addr(a), with.ir_of_addr(b));
        prop_assert_eq!(with.irs.len() + 1, without.irs.len());
    }
}
