//! The paper's worked examples, reconstructed hop for hop.
//!
//! Each test builds the exact micro-topology of one illustrative figure and
//! checks that the algorithm reproduces the annotation the paper derives —
//! and, where the paper contrasts with naive behaviour, that disabling the
//! responsible heuristic reproduces the naive (wrong) answer.

use alias::AliasSets;
use as_rel::AsRelationships;
use bdrmapit_core::{Annotated, Bdrmapit, Config};
use bgp::IpToAs;
use net_types::{Asn, Prefix};
use std::collections::BTreeSet;
use traceroute::{Hop, ReplyType, StopReason, Trace};

fn a(s: &str) -> u32 {
    net_types::parse_ipv4(s).unwrap()
}

/// `10.N.0.0/16` originated by `AS N` for N = 1..=9.
fn oracle() -> IpToAs {
    IpToAs::from_pairs(
        (1..=9).map(|n| (format!("10.{n}.0.0/16").parse::<Prefix>().unwrap(), Asn(n))),
    )
}

fn tr(dst: &str, hops: &[&str]) -> Trace {
    Trace {
        monitor: "vp".into(),
        src: a("10.1.0.250"),
        dst: a(dst),
        hops: hops
            .iter()
            .map(|&h| {
                Some(Hop {
                    addr: a(h),
                    reply: ReplyType::TimeExceeded,
                })
            })
            .collect(),
        stop: StopReason::GapLimit,
    }
}

fn run(traces: &[Trace], aliases: &AliasSets, rels: &AsRelationships, cfg: Config) -> Annotated {
    Bdrmapit::new(cfg).run(traces, aliases, &oracle(), rels)
}

fn owner(result: &Annotated, addr: &str) -> Option<Asn> {
    result.owner_of_addr(a(addr))
}

/// Fig. 6/7 (§5): a trace dies at a router whose interface came from AS2's
/// space, probing destinations in AS3; AS3 has a relationship with AS2, so
/// the last-hop router belongs to AS3.
#[test]
fn fig7_last_hop_destination_inference() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(2), Asn(3));
    let traces = [
        tr("10.3.0.99", &["10.1.0.1", "10.2.0.1", "10.2.0.9"]),
        tr("10.3.0.98", &["10.1.0.1", "10.2.0.1", "10.2.0.9"]),
    ];
    let result = run(&traces, &AliasSets::empty(), &rels, Config::default());
    // 10.2.0.9 is the silent edge's border router: AS3.
    assert_eq!(owner(&result, "10.2.0.9"), Some(Asn(3)));
    // And the (AS2, AS3) boundary is an inferred link.
    let pairs: BTreeSet<(Asn, Asn)> = result
        .interdomain_links()
        .iter()
        .map(|l| (l.ir_as.min(l.conn_as), l.ir_as.max(l.conn_as)))
        .collect();
    assert!(pairs.contains(&(Asn(2), Asn(3))), "pairs: {pairs:?}");
    // Without the last-hop phase the router stays unannotated.
    let no_lh = run(
        &traces,
        &AliasSets::empty(),
        &rels,
        Config {
            enable_last_hop: false,
            ..Config::default()
        },
    );
    assert_eq!(owner(&no_lh, "10.2.0.9"), None);
}

/// Fig. 8 (§6.1.1): a chain of routers numbered from unannounced space is
/// annotated hop by hop across refinement iterations, starting from a
/// last-hop inference at the far end.
#[test]
fn fig8_unannounced_chains_resolve_iteratively() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(9));
    let traces = [tr(
        "10.9.0.77",
        &["10.1.0.1", "172.16.0.1", "172.16.0.3", "172.16.0.5"],
    )];
    let result = run(&traces, &AliasSets::empty(), &rels, Config::default());
    // The far end got AS9 from the destination heuristic...
    assert_eq!(owner(&result, "172.16.0.5"), Some(Asn(9)));
    // ...and the annotation propagated up the unannounced chain.
    assert_eq!(owner(&result, "172.16.0.3"), Some(Asn(9)));
    assert_eq!(owner(&result, "172.16.0.1"), Some(Asn(9)));
    // The AS1 router before the chain: the tie between its own origin and
    // the chain annotation breaks toward the customer (Fig. 8 annotates it
    // with ASX as well).
    assert_eq!(owner(&result, "10.1.0.1"), Some(Asn(9)));
    assert!(result.state.iterations >= 2, "needs several iterations");
}

/// Fig. 10 (§6.1.2): a customer border router whose subsequent interfaces
/// live in a /24 reallocated from the provider votes for the provider until
/// the reallocation correction flips the votes to the customer.
#[test]
fn fig10_reallocated_prefix_correction() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(2));
    // 10.1.77.0/24 is reallocated from AS1 to AS2: AS2's internal routers
    // carry 10.1.77.1 / 10.1.77.5 and forward into AS2's own block.
    let traces = [
        tr(
            "10.2.0.99",
            &["10.1.0.1", "10.1.0.9", "10.1.77.1", "10.2.0.1"],
        ),
        tr(
            "10.2.0.98",
            &["10.1.0.1", "10.1.0.9", "10.1.77.5", "10.2.0.3"],
        ),
    ];
    let result = run(&traces, &AliasSets::empty(), &rels, Config::default());
    // The realloc-space routers belong to the customer...
    assert_eq!(owner(&result, "10.1.77.1"), Some(Asn(2)));
    assert_eq!(owner(&result, "10.1.77.5"), Some(Asn(2)));
    // ...and so does the border router they hang off (the Fig. 10 claim).
    assert_eq!(owner(&result, "10.1.0.9"), Some(Asn(2)));
    // The provider's own router is untouched (a single link is never
    // enough evidence for the correction).
    assert_eq!(owner(&result, "10.1.0.1"), Some(Asn(1)));
    // Disabling the correction reverts the border router to the provider.
    let no_realloc = run(
        &traces,
        &AliasSets::empty(),
        &rels,
        Config {
            enable_realloc: false,
            ..Config::default()
        },
    );
    assert_eq!(owner(&no_realloc, "10.1.0.9"), Some(Asn(1)));
}

/// Fig. 11 (§6.1.3): a customer router multihomed to one provider carries
/// more provider-space interfaces than customer links; pure voting gets it
/// wrong, the multihomed exception gets it right.
#[test]
fn fig11_multihomed_customer_exception() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(3));
    let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.2"), a("10.1.0.6")])]);
    let traces = [
        tr("10.3.0.99", &["10.1.0.1", "10.1.0.2", "10.3.0.1"]),
        tr("10.3.0.98", &["10.1.0.1", "10.1.0.6", "10.3.0.1"]),
    ];
    let result = run(&traces, &aliases, &rels, Config::default());
    // The two provider-space interfaces sit on the CUSTOMER's border router.
    assert_eq!(owner(&result, "10.1.0.2"), Some(Asn(3)));
    assert_eq!(owner(&result, "10.1.0.6"), Some(Asn(3)));
    // Pure voting (exception disabled) picks the provider.
    let no_exc = run(
        &traces,
        &aliases,
        &rels,
        Config {
            enable_exceptions: false,
            ..Config::default()
        },
    );
    assert_eq!(owner(&no_exc, "10.1.0.2"), Some(Asn(1)));
}

/// Fig. 12 (§6.1.5): a small transit AS whose links use only its neighbor's
/// address space never shows its own addresses; the hidden-AS check finds
/// the bridge between the origin side and the elected side.
#[test]
fn fig12_hidden_as() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(2)); // hidden AS2: customer of AS1...
    rels.add_p2c(Asn(2), Asn(3)); // ...provider of AS3; AS1–AS3 unrelated
    let traces = [
        tr("10.3.0.99", &["10.1.0.1", "10.1.0.3", "10.3.0.1"]),
        tr("10.3.0.98", &["10.1.0.1", "10.1.0.3", "10.3.0.5"]),
    ];
    let result = run(&traces, &AliasSets::empty(), &rels, Config::default());
    // 10.1.0.3 is on the hidden AS2's router: no AS2 address ever appears,
    // yet the bridge inference names it.
    assert_eq!(owner(&result, "10.1.0.3"), Some(Asn(2)));
    // Without the check the router is misattributed to AS3.
    let no_hidden = run(
        &traces,
        &AliasSets::empty(),
        &rels,
        Config {
            enable_hidden_as: false,
            ..Config::default()
        },
    );
    assert_eq!(owner(&no_hidden, "10.1.0.3"), Some(Asn(3)));
}

/// Fig. 14 (§6.3): an initially wrong router annotation is corrected in the
/// second iteration after interface annotation aggregates evidence from a
/// better-connected neighbor.
#[test]
fn fig14_refinement_corrects_across_iterations() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(2));
    let aliases = AliasSets::from_groups([BTreeSet::from([a("10.1.0.5"), a("10.1.0.9")])]);
    let traces = [
        // IR1 (10.1.0.1) sees only the link to b = 10.2.0.2.
        tr("10.2.0.99", &["10.1.0.1", "10.2.0.2"]),
        // IR3 (two aliased interfaces) also reaches b...
        tr("10.2.0.98", &["10.1.0.5", "10.2.0.2"]),
        tr("10.2.0.97", &["10.1.0.9", "10.2.0.2"]),
        // ...and has an AS1-internal link pinning it to AS1.
        tr("10.1.0.99", &["10.1.0.5", "10.1.0.13"]),
    ];
    let result = run(&traces, &aliases, &rels, Config::default());
    // b's router is AS2's (phase 2, destination AS2).
    assert_eq!(owner(&result, "10.2.0.2"), Some(Asn(2)));
    // IR3 stays AS1.
    assert_eq!(owner(&result, "10.1.0.5"), Some(Asn(1)));
    // IR1 would be mis-annotated AS2 in the first sweep (its only link
    // points at AS2's router and AS2 is AS1's customer); the interface
    // re-annotation of b flips it back to AS1 on the next iteration.
    assert_eq!(owner(&result, "10.1.0.1"), Some(Asn(1)));
    assert!(
        result.state.iterations >= 2,
        "correction requires a second iteration, got {}",
        result.state.iterations
    );
}

/// Fig. 9 / §6.1.1 third-party addresses: off-path replies from a third
/// AS's space must not pull the preceding router toward the third party —
/// the vote goes to the responding router's inferred operator instead.
#[test]
fn fig9_third_party_address_suppressed() {
    let mut rels = AsRelationships::new();
    rels.add_p2c(Asn(1), Asn(2));
    rels.add_p2c(Asn(4), Asn(3)); // AS3: the third party, unrelated to AS1/AS2
                                  // Both "next hops" of AS1's router reply with AS3-space addresses; the
                                  // responding routers are really AS2's (pinned by alias mates with AS2
                                  // addresses and onward AS2 links). Probes target AS2, never AS3.
    let aliases = AliasSets::from_groups([
        BTreeSet::from([a("10.3.0.1"), a("10.2.0.5")]),
        BTreeSet::from([a("10.3.0.5"), a("10.2.0.6")]),
    ]);
    let traces = [
        tr("10.2.0.99", &["10.1.0.1", "10.3.0.1", "10.2.0.9"]),
        tr("10.2.0.98", &["10.1.0.1", "10.3.0.5", "10.2.0.13"]),
        tr("10.2.0.97", &["10.1.0.2", "10.2.0.5", "10.2.0.9"]),
        tr("10.2.0.96", &["10.1.0.2", "10.2.0.6", "10.2.0.13"]),
    ];
    let result = run(&traces, &aliases, &rels, Config::default());
    // The routers holding the third-party addresses are AS2's.
    assert_eq!(owner(&result, "10.3.0.1"), Some(Asn(2)));
    assert_eq!(owner(&result, "10.3.0.5"), Some(Asn(2)));
    // With the heuristic, AS1's router is attributed within the AS1–AS2
    // boundary (never to the uninvolved AS3)...
    let with_tp = owner(&result, "10.1.0.1");
    assert_ne!(with_tp, Some(Asn(3)), "third party leaked into the vote");
    // ...while disabling it lets the third-party origin win the election.
    let no_tp = run(
        &traces,
        &aliases,
        &rels,
        Config {
            enable_third_party: false,
            ..Config::default()
        },
    );
    assert_eq!(owner(&no_tp, "10.1.0.1"), Some(Asn(3)));
}
