//! The assembled synthetic Internet.

use crate::addressing::Addressing;
use crate::asgraph::AsGraph;
use crate::routers::RouterTopology;
use crate::routing::Routing;
use crate::{GeneratorConfig, IfaceId, RouterId, Tier, TrueLink};
use bgp::{Announcement, Rib};
use net_types::{Asn, PrefixTrie};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One hop of a forwarded probe: the router it traversed and the interface
/// it arrived on (`None` for the first hop, where the probe originates
/// inside the AS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForwardHop {
    /// Traversed router.
    pub router: RouterId,
    /// Ingress interface.
    pub ingress: Option<IfaceId>,
}

/// Why a forwarded probe stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// The destination address is a real interface; the final hop's router
    /// carries it.
    ReachedIface(IfaceId),
    /// The probe reached the destination AS; whether a host answers at the
    /// probed address is the simulator's call.
    ReachedHostSpace {
        /// The AS whose space the address belongs to.
        asn: Asn,
    },
    /// No BGP route toward the address.
    NoRoute,
}

/// A fully forwarded probe path.
#[derive(Clone, Debug)]
pub struct ForwardPath {
    /// Routers traversed, in order, starting at the source router.
    pub hops: Vec<ForwardHop>,
    /// Terminal condition.
    pub outcome: ForwardOutcome,
}

/// The assembled synthetic Internet: AS graph, addressing, router topology,
/// and routing, with forwarding-plane expansion and collector-RIB synthesis.
#[derive(Debug)]
pub struct Internet {
    /// Generator parameters.
    pub cfg: GeneratorConfig,
    /// The AS-level graph.
    pub graph: AsGraph,
    /// The addressing plan.
    pub addressing: Addressing,
    /// The router-level topology.
    pub topology: RouterTopology,
    /// The routing oracle.
    pub routing: Routing,
    announced: PrefixTrie<Asn>,
}

impl Internet {
    /// Generates the whole Internet from a config. Deterministic.
    pub fn generate(cfg: GeneratorConfig) -> Internet {
        Internet::generate_with_obs(cfg, &obs::Recorder::disabled())
    }

    /// [`Internet::generate`] under an observability span: records the
    /// `topo.generate` phase and the topology size counters. The generated
    /// Internet is bit-identical to the plain variant's.
    pub fn generate_with_obs(cfg: GeneratorConfig, rec: &obs::Recorder) -> Internet {
        let _span = rec.span(obs::names::PHASE_TOPO);
        let net = Internet::generate_inner(cfg);
        rec.add(obs::names::TOPO_ASES, net.graph.nodes.len() as u64);
        rec.add(obs::names::TOPO_ROUTERS, net.topology.routers.len() as u64);
        rec.add(obs::names::TOPO_IFACES, net.topology.ifaces.len() as u64);
        net
    }

    fn generate_inner(cfg: GeneratorConfig) -> Internet {
        let graph = AsGraph::generate(&cfg);
        let addressing = Addressing::generate(&cfg, &graph);
        let topology = RouterTopology::generate(&cfg, &graph, &addressing);
        let routing = Routing::new(graph.relationships.clone(), addressing.announce_via.clone());
        let announced = addressing.announced.iter().map(|&(p, a)| (p, a)).collect();
        Internet {
            cfg,
            graph,
            addressing,
            topology,
            routing,
            announced,
        }
    }

    /// The BGP origin for an address under the synthetic announcements
    /// (longest prefix match), if any.
    pub fn bgp_origin(&self, addr: u32) -> Option<Asn> {
        self.announced.longest_match(addr).map(|(_, &a)| a)
    }

    /// Forwards a probe from `src_router` toward `dst_addr`, expanding the
    /// AS-level route into the router-level path with per-hop ingress
    /// interfaces.
    pub fn forward_path(&self, src_router: RouterId, dst_addr: u32) -> ForwardPath {
        let src_as = self.topology.owner(src_router);

        // Work out the AS-level path and the target router.
        let target_iface = self.topology.iface_by_addr(dst_addr).map(|i| i.id);
        let (as_path, target_router, outcome) =
            if let Some(r) = self.addressing.realloc_covering(dst_addr) {
                // Reallocated /24: global routing follows the provider's
                // covering prefix; the provider hands off to the customer.
                let Some(mut path) = self.routing.as_path(src_as, r.provider) else {
                    return ForwardPath {
                        hops: vec![],
                        outcome: ForwardOutcome::NoRoute,
                    };
                };
                if *path.last().expect("non-empty") != r.customer {
                    path.push(r.customer);
                }
                let (router, outcome) = match target_iface {
                    Some(ifid)
                        if self.topology.iface(ifid).router_owner(&self.topology) == r.customer =>
                    {
                        (
                            self.topology.iface(ifid).router,
                            ForwardOutcome::ReachedIface(ifid),
                        )
                    }
                    _ => (
                        self.router_for_addr(r.customer, dst_addr),
                        ForwardOutcome::ReachedHostSpace { asn: r.customer },
                    ),
                };
                (path, router, outcome)
            } else if let Some(ifid) = target_iface {
                // A real interface address: terminate at its router.
                let router = self.topology.iface(ifid).router;
                let owner = self.topology.owner(router);
                let Some(path) = self.routing.as_path(src_as, owner) else {
                    return ForwardPath {
                        hops: vec![],
                        outcome: ForwardOutcome::NoRoute,
                    };
                };
                (path, router, ForwardOutcome::ReachedIface(ifid))
            } else {
                match self.bgp_origin(dst_addr) {
                    Some(origin) => {
                        let Some(path) = self.routing.as_path(src_as, origin) else {
                            return ForwardPath {
                                hops: vec![],
                                outcome: ForwardOutcome::NoRoute,
                            };
                        };
                        (
                            path,
                            self.router_for_addr(origin, dst_addr),
                            ForwardOutcome::ReachedHostSpace { asn: origin },
                        )
                    }
                    None => {
                        return ForwardPath {
                            hops: vec![],
                            outcome: ForwardOutcome::NoRoute,
                        }
                    }
                }
            };

        // Expand the AS path to routers.
        let mut hops: Vec<ForwardHop> = vec![ForwardHop {
            router: src_router,
            ingress: None,
        }];
        let mut cur = src_router;
        for win in as_path.windows(2) {
            let (here, next) = (win[0], win[1]);
            let (egress_router, ingress_router, ingress_iface) =
                self.cross_boundary(here, next, dst_addr);
            // Internal walk to the egress border router.
            self.extend_internal(&mut hops, cur, egress_router);
            hops.push(ForwardHop {
                router: ingress_router,
                ingress: Some(ingress_iface),
            });
            cur = ingress_router;
        }
        // Internal walk to the target router inside the final AS.
        self.extend_internal(&mut hops, cur, target_router);

        ForwardPath { hops, outcome }
    }

    /// Chooses the router-level crossing for an AS adjacency, load-balanced
    /// deterministically by destination address. Returns
    /// `(egress router in here, ingress router in next, ingress interface)`.
    fn cross_boundary(&self, here: Asn, next: Asn, dst_addr: u32) -> (RouterId, RouterId, IfaceId) {
        if let Some(ixp) = self.graph.ixp_for_pair(here, next) {
            let &(r_e, _) = self
                .topology
                .ixp_ports
                .get(&(ixp, here))
                .expect("member has a port");
            let &(r_i, if_i) = self
                .topology
                .ixp_ports
                .get(&(ixp, next))
                .expect("member has a port");
            return (r_e, r_i, if_i);
        }
        let key = (here.min(next), here.max(next));
        let links = self
            .topology
            .ext_links
            .get(&key)
            .unwrap_or_else(|| panic!("no link between {here} and {next}"));
        let link = &links[dst_addr as usize % links.len()];
        if key.0 == here {
            (link.router_a, link.router_b, link.iface_b)
        } else {
            (link.router_b, link.router_a, link.iface_a)
        }
    }

    /// Appends the internal path `from → to` (excluding `from`) to `hops`,
    /// with per-hop ingress interfaces.
    fn extend_internal(&self, hops: &mut Vec<ForwardHop>, from: RouterId, to: RouterId) {
        if from == to {
            return;
        }
        let path = self
            .topology
            .internal_path(from, to)
            .expect("AS internal topology is connected");
        for win in path.windows(2) {
            let (prev, cur) = (win[0], win[1]);
            let ingress = self.topology.router(cur).ifaces.iter().copied().find(|&i| {
                self.topology
                    .iface(i)
                    .neighbor
                    .is_some_and(|n| self.topology.iface(n).router == prev)
            });
            hops.push(ForwardHop {
                router: cur,
                ingress,
            });
        }
    }

    /// Deterministic "host location": which router inside `asn` serves
    /// `addr`.
    pub fn router_for_addr(&self, asn: Asn, addr: u32) -> RouterId {
        let routers = &self.topology.as_routers[&asn];
        routers[addr as usize % routers.len()]
    }

    /// The source address a router uses when replying to a probe that
    /// arrived on `ingress`, given the prober's AS. Implements the response
    /// behaviours: normal routers reply with the ingress interface;
    /// `egress_reply` routers reply with the interface facing the return
    /// route (which can expose a third-party address).
    pub fn reply_source(&self, router: RouterId, ingress: Option<IfaceId>, vp_as: Asn) -> u32 {
        let info = self.topology.router(router);
        let router_id_iface = info.ifaces[0];
        if info.egress_reply {
            if let Some(addr) = self.egress_iface_addr(router, vp_as) {
                return addr;
            }
        }
        match ingress {
            Some(i) => self.topology.iface(i).addr,
            None => self.topology.iface(router_id_iface).addr,
        }
    }

    /// The address of the interface `router` would use toward `vp_as`
    /// (reply direction), if one is identifiable.
    fn egress_iface_addr(&self, router: RouterId, vp_as: Asn) -> Option<u32> {
        let owner = self.topology.owner(router);
        if owner == vp_as {
            // Replying within the same AS: use the router-id interface.
            let info = self.topology.router(router);
            return Some(self.topology.iface(info.ifaces[0]).addr);
        }
        let tree = self.routing.tree(vp_as);
        let next = tree.get(&owner)?.next;
        // A direct link from this router to the next AS?
        if let Some(ixp) = self.graph.ixp_for_pair(owner, next) {
            if let Some(&(r, i)) = self.topology.ixp_ports.get(&(ixp, owner)) {
                if r == router {
                    return Some(self.topology.iface(i).addr);
                }
            }
        }
        let key = (owner.min(next), owner.max(next));
        if let Some(links) = self.topology.ext_links.get(&key) {
            for l in links {
                if l.router_a == router {
                    return Some(self.topology.iface(l.iface_a).addr);
                }
                if l.router_b == router {
                    return Some(self.topology.iface(l.iface_b).addr);
                }
            }
        }
        // Not a border router for the return direction: fall back to the
        // router-id interface ("some other interface", §1).
        let info = self.topology.router(router);
        Some(self.topology.iface(info.ifaces[0]).addr)
    }

    /// Synthesizes the route-collector RIB: every announced prefix as seen
    /// from each collector peer.
    pub fn build_rib(&self) -> Rib {
        let peers = self.collector_peers();
        let mut rib = Rib::new();
        for &(prefix, origin) in &self.addressing.announced {
            for &peer in &peers {
                if let Some(path) = self.routing.as_path(peer, origin) {
                    if let Ok(ann) = Announcement::new(prefix, path) {
                        rib.add(ann);
                    }
                }
            }
        }
        rib
    }

    /// The ASes peering with the synthetic collectors (deterministic
    /// sample of transit/access/R&E networks).
    pub fn collector_peers(&self) -> Vec<Asn> {
        let mut pool: Vec<Asn> = Vec::new();
        pool.extend(self.graph.tier_members(Tier::Transit));
        pool.extend(self.graph.tier_members(Tier::Access));
        pool.extend(self.graph.tier_members(Tier::ResearchEducation));
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0xA5A5_0004);
        let mut peers: Vec<Asn> = pool
            .choose_multiple(&mut rng, self.cfg.collector_peers.min(pool.len()))
            .copied()
            .collect();
        peers.sort_unstable();
        peers
    }

    /// Ground truth: the operator of a router.
    pub fn true_owner(&self, router: RouterId) -> Asn {
        self.topology.owner(router)
    }

    /// Ground truth: all interdomain links at router granularity.
    pub fn true_links(&self) -> Vec<TrueLink> {
        self.topology.true_links(&self.graph)
    }

    /// Ground truth: is this AS firewalled (drops external probes)?
    pub fn is_firewalled(&self, asn: Asn) -> bool {
        self.graph.node(asn).is_some_and(|n| n.firewalled)
    }
}

// Small helper so the realloc branch above reads cleanly.
impl crate::routers::InterfaceInfo {
    fn router_owner(&self, topo: &RouterTopology) -> Asn {
        topo.owner(self.router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(seed: u64) -> Internet {
        Internet::generate(GeneratorConfig::tiny(seed))
    }

    #[test]
    fn rib_covers_all_blocks() {
        let net = net(1);
        let rib = net.build_rib();
        for node in net.graph.nodes.values() {
            let block = net.addressing.blocks[&node.asn];
            assert_eq!(rib.origin(block), Some(node.asn), "{} missing", node.asn);
        }
    }

    #[test]
    fn rib_paths_are_loop_free() {
        let net = net(2);
        let rib = net.build_rib();
        for ann in rib.iter() {
            Announcement::validate_path(&ann.as_path).expect("loop-free, AS0-free");
        }
    }

    #[test]
    fn forward_reaches_interface_addresses() {
        let net = net(3);
        // Probe an actual interface address from a VP router elsewhere.
        let vp = net.topology.as_routers[&net.graph.tier_members(Tier::Access)[0]][0];
        let target = net
            .topology
            .ifaces
            .iter()
            .find(|i| {
                // Pick an announced-space interface far from the VP.
                net.bgp_origin(i.addr).is_some()
                    && net.topology.owner(i.router) != net.topology.owner(vp)
            })
            .expect("some interface");
        let fwd = net.forward_path(vp, target.addr);
        assert_eq!(fwd.outcome, ForwardOutcome::ReachedIface(target.id));
        let last = fwd.hops.last().unwrap();
        assert_eq!(last.router, target.router);
        assert_eq!(fwd.hops[0].router, vp);
    }

    #[test]
    fn forward_hops_are_contiguous() {
        let net = net(4);
        let stub = net.graph.tier_members(Tier::Stub)[5];
        let vp = net.topology.as_routers[&net.graph.tier_members(Tier::Transit)[0]][0];
        let dst = net.addressing.host_region(stub).addr() + 77;
        let fwd = net.forward_path(vp, dst);
        assert!(matches!(
            fwd.outcome,
            ForwardOutcome::ReachedHostSpace { .. }
        ));
        // Every hop after the first must have an ingress interface on the
        // hop's router, connected to the previous hop's router (or cross an
        // IXP LAN, where ingress is the LAN port).
        for win in fwd.hops.windows(2) {
            let (prev, cur) = (win[0], win[1]);
            let ingress = cur.ingress.expect("non-first hops have ingress");
            let info = net.topology.iface(ingress);
            assert_eq!(info.router, cur.router);
            if let Some(n) = info.neighbor {
                assert_eq!(net.topology.iface(n).router, prev.router);
            }
        }
    }

    #[test]
    fn forward_as_sequence_is_valley_free() {
        let net = net(5);
        let vp = net.topology.as_routers[&net.graph.tier_members(Tier::Access)[1]][0];
        let stub = net.graph.tier_members(Tier::Stub)[9];
        let dst = net.addressing.host_region(stub).addr() + 5;
        let fwd = net.forward_path(vp, dst);
        let mut as_seq: Vec<Asn> = Vec::new();
        for h in &fwd.hops {
            let owner = net.topology.owner(h.router);
            if as_seq.last() != Some(&owner) {
                as_seq.push(owner);
            }
        }
        assert!(
            as_rel::valley_free(&net.graph.relationships, &as_seq),
            "{as_seq:?} not valley-free"
        );
        assert_eq!(*as_seq.last().unwrap(), stub);
    }

    #[test]
    fn realloc_traffic_crosses_the_reallocating_provider() {
        let cfg = GeneratorConfig {
            realloc_prob: 1.0,
            stub_multihome_prob: 1.0,
            ..GeneratorConfig::tiny(6)
        };
        let net = Internet::generate(cfg);
        let r = net.addressing.reallocs[0];
        // A VP outside both provider and customer.
        let vp_as = net
            .graph
            .tier_members(Tier::Transit)
            .into_iter()
            .find(|&a| a != r.provider)
            .unwrap();
        let vp = net.topology.as_routers[&vp_as][0];
        let dst = r.prefix.addr() + 200; // host space inside the realloc /24
        let fwd = net.forward_path(vp, dst);
        assert_eq!(
            fwd.outcome,
            ForwardOutcome::ReachedHostSpace { asn: r.customer }
        );
        let owners: Vec<Asn> = fwd
            .hops
            .iter()
            .map(|h| net.topology.owner(h.router))
            .collect();
        assert!(
            owners.contains(&r.provider),
            "realloc traffic must transit the reallocating provider"
        );
        assert_eq!(*owners.last().unwrap(), r.customer);
    }

    #[test]
    fn realloc_customer_own_block_avoids_realloc_provider() {
        let cfg = GeneratorConfig {
            realloc_prob: 1.0,
            stub_multihome_prob: 1.0,
            ..GeneratorConfig::tiny(7)
        };
        let net = Internet::generate(cfg);
        let r = net.addressing.reallocs[0];
        let rib = net.build_rib();
        // In the collector RIB, the customer's own block must never show the
        // reallocating provider as the last-hop transit.
        let block = net.addressing.blocks[&r.customer];
        for ann in rib.announcements(block) {
            let path = ann.collapsed_path();
            let pos = path.iter().position(|&a| a == r.customer).unwrap();
            if pos > 0 {
                assert_ne!(
                    path[pos - 1],
                    r.provider,
                    "aggregating provider must be invisible in BGP"
                );
            }
        }
    }

    #[test]
    fn no_route_for_dark_space_host_addrs() {
        let cfg = GeneratorConfig {
            unannounced_space_prob: 1.0,
            ..GeneratorConfig::tiny(8)
        };
        let net = Internet::generate(cfg);
        // A dark address that is NOT an interface: no route.
        let dark = net
            .addressing
            .dark
            .iter()
            .find(|d| {
                let probe = d.prefix.last_addr() - 1;
                net.topology.iface_by_addr(probe).is_none()
            })
            .expect("some dark block with spare space");
        let vp = net.topology.routers[0].id;
        let fwd = net.forward_path(vp, dark.prefix.last_addr() - 1);
        assert_eq!(fwd.outcome, ForwardOutcome::NoRoute);
    }

    #[test]
    fn reply_source_defaults_to_ingress() {
        let net = net(9);
        // Find a well-behaved router with an ingress hop.
        let vp_as = net.graph.tier_members(Tier::Access)[0];
        let vp = net.topology.as_routers[&vp_as][0];
        let stub = net.graph.tier_members(Tier::Stub)[3];
        let dst = net.addressing.host_region(stub).addr() + 9;
        let fwd = net.forward_path(vp, dst);
        for h in fwd.hops.iter().skip(1) {
            if !net.topology.router(h.router).egress_reply {
                let src = net.reply_source(h.router, h.ingress, vp_as);
                assert_eq!(src, net.topology.iface(h.ingress.unwrap()).addr);
            }
        }
    }

    #[test]
    fn collector_peers_deterministic_and_sized() {
        let net = net(10);
        let p1 = net.collector_peers();
        let p2 = net.collector_peers();
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), net.cfg.collector_peers);
    }
}
