//! Synthetic Internet generator.
//!
//! The bdrmapIT paper runs on CAIDA ITDK traceroute corpora plus BGP, RIR,
//! and IXP datasets, validated against confidential operator ground truth.
//! None of those inputs can ship with a reproduction, so this crate builds a
//! deterministic synthetic Internet that produces every input *and* the
//! ground truth:
//!
//! * a tiered AS-level graph (clique, transit, access, R&E, stubs) with
//!   ground-truth business relationships and IXP fabrics ([`asgraph`]);
//! * address space per AS, RIR delegations (with stale entries), customer
//!   prefix reallocations, and BGP announcements ([`addressing`]);
//! * a router-level topology per AS with interdomain links addressed the way
//!   operators address them — /31s from the provider's space, IXP LAN
//!   addresses, occasionally the customer's space ([`routers`]);
//! * Gao-Rexford (valley-free) AS-level routing with router-level path
//!   expansion, the forwarding plane under the traceroute simulator
//!   ([`routing`]);
//! * per-router traceroute response behaviours (silent, rate-limited,
//!   egress-replying, firewalled edge networks) that create exactly the
//!   artifacts bdrmapIT's heuristics exist to handle ([`routers`]);
//! * the [`Internet`] façade tying it all together, and ground-truth
//!   accessors used for validation.
//!
//! Everything is seeded: the same [`GeneratorConfig`] always yields the same
//! Internet, byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod asgraph;
pub mod config;
pub mod dynamics;
pub mod routers;
pub mod routing;

mod internet;

pub use config::GeneratorConfig;
pub use dynamics::{EventOutcome, TopologyEvent};
pub use internet::{ForwardHop, ForwardOutcome, ForwardPath, Internet};

use net_types::Asn;
use serde::{Deserialize, Serialize};

/// Identifier of a router in the generated topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RouterId(pub u32);

/// Identifier of an interface in the generated topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IfaceId(pub u32);

/// The role an AS plays in the synthetic hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Tier-1: member of the peering clique, no providers.
    Clique,
    /// Large transit provider below the clique.
    Transit,
    /// Access / eyeball network.
    Access,
    /// Research & education network.
    ResearchEducation,
    /// Stub / edge AS (enterprise, small hosting).
    Stub,
}

impl Tier {
    /// All tiers in hierarchy order.
    pub const ALL: [Tier; 5] = [
        Tier::Clique,
        Tier::Transit,
        Tier::Access,
        Tier::ResearchEducation,
        Tier::Stub,
    ];
}

/// A ground-truth interdomain link at router granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrueLink {
    /// Router on one side.
    pub router_a: RouterId,
    /// Owner of `router_a`.
    pub as_a: Asn,
    /// Router on the other side.
    pub router_b: RouterId,
    /// Owner of `router_b`.
    pub as_b: Asn,
    /// Interface address on side a (the a→b link address), if numbered.
    pub addr_a: u32,
    /// Interface address on side b.
    pub addr_b: u32,
}
