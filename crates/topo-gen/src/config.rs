//! Generator configuration.

use serde::{Deserialize, Serialize};

/// Everything the generator needs to build a synthetic Internet.
///
/// All probabilities are per-event; all counts are exact. Two configs with
/// the same field values (including `seed`) produce identical Internets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; every derived artifact is a pure function of the config.
    pub seed: u64,

    // ---- AS-level graph shape ----
    /// Tier-1 clique size (full mesh of peering).
    pub clique_size: usize,
    /// Number of large transit providers.
    pub transit_count: usize,
    /// Number of access/eyeball networks.
    pub access_count: usize,
    /// Number of research & education networks.
    pub re_count: usize,
    /// Number of stub/edge ASes.
    pub stub_count: usize,
    /// Number of IXPs.
    pub ixp_count: usize,
    /// Probability that a transit AS peers with another transit AS.
    pub transit_peering_prob: f64,
    /// Probability that an access/R&E network joins a given IXP.
    pub ixp_join_prob: f64,
    /// Probability a stub is multihomed (two providers instead of one).
    pub stub_multihome_prob: f64,

    // ---- router-level shape ----
    /// Routers per clique AS.
    pub routers_clique: usize,
    /// Routers per transit AS.
    pub routers_transit: usize,
    /// Routers per access AS.
    pub routers_access: usize,
    /// Routers per R&E AS.
    pub routers_re: usize,
    /// Routers per stub AS.
    pub routers_stub: usize,
    /// Extra random internal chords per AS beyond the connecting ring.
    pub internal_chord_factor: f64,
    /// Maximum parallel router-level links for one AS adjacency.
    pub max_parallel_links: usize,

    // ---- addressing pathologies ----
    /// Probability a transit link is numbered from the CUSTOMER's space
    /// (contrary to convention; creates hidden-AS cases, §6.1.5).
    pub customer_addressed_link_prob: f64,
    /// Probability a stub customer receives a reallocated /24 from its
    /// provider which stays aggregated in BGP (§4.4, §6.1.2).
    pub realloc_prob: f64,
    /// Probability an AS's delegation record is stale (points at previous
    /// holder's org).
    pub stale_rir_prob: f64,
    /// Probability an AS numbers some internal links from unannounced,
    /// undelegated space (§6.1.1 "unannounced addresses").
    pub unannounced_space_prob: f64,
    /// Probability an IXP LAN prefix is (incorrectly) originated into BGP by
    /// one of its members (§4.1 motivates the IXP prefix list with this).
    pub ixp_bgp_leak_prob: f64,

    // ---- traceroute response behaviours ----
    /// Probability a router never answers traceroute probes.
    pub router_silent_prob: f64,
    /// Probability a router answers with its egress (reply-direction)
    /// interface instead of the ingress interface (third-party addresses).
    pub router_egress_reply_prob: f64,
    /// Per-probe probability a responsive router drops this one response
    /// (ICMP rate limiting).
    pub rate_limit_prob: f64,
    /// Probability a stub AS firewalls all external probes (§5's motivating
    /// case: the last hop belongs to the network before the silent edge).
    pub stub_firewall_prob: f64,
    /// Probability an echo reply is sourced from the router's loopback-style
    /// id interface instead of the probed address (off-path echo, §4.2).
    pub echo_offpath_prob: f64,

    // ---- collectors ----
    /// Number of ASes peering with the synthetic route collectors.
    pub collector_peers: usize,
}

impl Default for GeneratorConfig {
    /// A mid-sized Internet: large enough to exhibit every pathology, small
    /// enough for debug-mode tests.
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x6264_726d,
            clique_size: 6,
            transit_count: 20,
            access_count: 40,
            re_count: 10,
            stub_count: 200,
            ixp_count: 4,
            transit_peering_prob: 0.25,
            ixp_join_prob: 0.3,
            stub_multihome_prob: 0.3,
            routers_clique: 24,
            routers_transit: 12,
            routers_access: 8,
            routers_re: 6,
            routers_stub: 2,
            internal_chord_factor: 0.5,
            max_parallel_links: 2,
            customer_addressed_link_prob: 0.05,
            realloc_prob: 0.12,
            stale_rir_prob: 0.05,
            unannounced_space_prob: 0.03,
            ixp_bgp_leak_prob: 0.3,
            router_silent_prob: 0.02,
            router_egress_reply_prob: 0.05,
            rate_limit_prob: 0.008,
            stub_firewall_prob: 0.25,
            echo_offpath_prob: 0.1,
            collector_peers: 25,
        }
    }
}

impl GeneratorConfig {
    /// A small Internet for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            clique_size: 3,
            transit_count: 5,
            access_count: 8,
            re_count: 2,
            stub_count: 30,
            ixp_count: 2,
            collector_peers: 8,
            routers_clique: 8,
            routers_transit: 5,
            routers_access: 4,
            routers_re: 3,
            routers_stub: 2,
            ..Self::default()
        }
    }

    /// A benchmark scale between `tiny` and the default: big enough that the
    /// front-end phases dominate wall time (the thread-sweep bench's
    /// workload), small enough to finish quickly in CI.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            clique_size: 4,
            transit_count: 10,
            access_count: 20,
            re_count: 5,
            stub_count: 80,
            ixp_count: 3,
            collector_peers: 15,
            routers_clique: 12,
            routers_transit: 8,
            routers_access: 6,
            routers_re: 4,
            routers_stub: 2,
            ..Self::default()
        }
    }

    /// An ITDK-scale Internet for the paper experiments (release mode).
    pub fn itdk_scale(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            clique_size: 10,
            transit_count: 60,
            access_count: 150,
            re_count: 30,
            stub_count: 1200,
            ixp_count: 10,
            collector_peers: 60,
            ..Self::default()
        }
    }

    /// The pool-crossover scale: ~10⁵ routers and enough transit/access/R&E
    /// ASes to host well over 100 vantage points, producing corpora with
    /// millions of hops. This is the scale the bench-pipeline speedup
    /// contract is measured at (release mode only; a debug-mode run is
    /// prohibitively slow).
    pub fn large(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            clique_size: 12,
            transit_count: 90,
            access_count: 240,
            re_count: 50,
            stub_count: 2400,
            ixp_count: 12,
            collector_peers: 90,
            routers_clique: 64,
            routers_transit: 48,
            routers_access: 36,
            routers_re: 24,
            routers_stub: 36,
            ..Self::default()
        }
    }

    /// Total number of ASes this config generates.
    pub fn as_count(&self) -> usize {
        self.clique_size + self.transit_count + self.access_count + self.re_count + self.stub_count
    }

    /// Total number of routers this config generates (exact: every AS gets
    /// its tier's router count).
    pub fn router_count(&self) -> usize {
        self.clique_size * self.routers_clique
            + self.transit_count * self.routers_transit
            + self.access_count * self.routers_access
            + self.re_count * self.routers_re
            + self.stub_count * self.routers_stub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = GeneratorConfig::tiny(1);
        assert_eq!(c.as_count(), 3 + 5 + 8 + 2 + 30);
        assert!(GeneratorConfig::small(1).as_count() > c.as_count());
        assert!(GeneratorConfig::default().as_count() > GeneratorConfig::small(1).as_count());
        assert!(GeneratorConfig::itdk_scale(0).as_count() > 1000);
        let large = GeneratorConfig::large(0);
        assert!(large.as_count() > GeneratorConfig::itdk_scale(0).as_count());
        assert!(
            large.router_count() >= 100_000,
            "large must reach ~1e5 routers, got {}",
            large.router_count()
        );
        // The VP pool draws from transit + access + R&E tiers; the speedup
        // contract sweeps >=100 vantage points at this scale.
        assert!(large.transit_count + large.access_count + large.re_count >= 100);
    }

    #[test]
    fn serde_roundtrip() {
        let c = GeneratorConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.as_count(), c.as_count());
    }
}
