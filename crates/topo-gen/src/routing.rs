//! Gao-Rexford AS-level routing.
//!
//! Routes propagate the way BGP export policies make them propagate:
//!
//! * an AS exports its own prefixes (and routes learned from customers) to
//!   everyone — customers, peers, providers;
//! * routes learned from peers or providers are exported *only to
//!   customers*.
//!
//! Selection prefers customer routes over peer routes over provider routes,
//! then shortest AS path, then lowest next-hop ASN — all deterministic. The
//! resulting per-destination next-hop trees drive both the traceroute
//! forwarding plane and the synthetic route-collector RIB, so data and
//! control plane agree by construction (modulo the deliberate reallocation
//! pathologies layered on top by [`crate::Internet`]).
//!
//! `announce_via` restrictions model selective announcement: a customer that
//! announces its block through only one of its providers (the reallocation
//! scenario of §4.4 needs the provider–customer adjacency invisible in BGP).

use as_rel::AsRelationships;
use net_types::Asn;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How an AS learned its best route toward a destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteClass {
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
    /// The destination itself.
    Origin,
}

/// One AS's routing entry toward a destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Next-hop AS (self for the origin).
    pub next: Asn,
    /// AS-path length to the destination.
    pub dist: u32,
    /// Preference class of the selected route.
    pub class: RouteClass,
}

/// A per-destination routing tree: every AS's selected route.
pub type RouteTree = BTreeMap<Asn, RouteEntry>;

/// The routing oracle: computes and caches per-destination route trees.
#[derive(Debug)]
pub struct Routing {
    rels: AsRelationships,
    announce_via: BTreeMap<Asn, Vec<Asn>>,
    cache: Mutex<BTreeMap<Asn, Arc<RouteTree>>>,
}

impl Routing {
    /// Creates the oracle from ground-truth relationships and selective
    /// announcement restrictions.
    pub fn new(rels: AsRelationships, announce_via: BTreeMap<Asn, Vec<Asn>>) -> Self {
        Routing {
            rels,
            announce_via,
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The relationships this oracle routes over.
    pub fn relationships(&self) -> &AsRelationships {
        &self.rels
    }

    /// The routing tree toward destination AS `dst` (cached).
    pub fn tree(&self, dst: Asn) -> Arc<RouteTree> {
        if let Some(t) = self.cache.lock().get(&dst) {
            return Arc::clone(t);
        }
        let tree = Arc::new(self.compute_tree(dst));
        self.cache.lock().insert(dst, Arc::clone(&tree));
        tree
    }

    fn compute_tree(&self, dst: Asn) -> RouteTree {
        let mut tree: RouteTree = BTreeMap::new();
        tree.insert(
            dst,
            RouteEntry {
                next: dst,
                dist: 0,
                class: RouteClass::Origin,
            },
        );

        // ---- Phase A: customer routes climb provider edges ----
        // Deterministic Dijkstra with unit weights: process (dist, asn) in
        // ascending order so ties resolve toward the lowest ASN.
        let mut frontier: BTreeSet<(u32, Asn)> = BTreeSet::from([(0, dst)]);
        while let Some(&(d, u)) = frontier.iter().next() {
            frontier.remove(&(d, u));
            // Selective announcement: the origin exports only to the listed
            // providers (if restricted).
            let providers: Vec<Asn> = if u == dst {
                match self.announce_via.get(&dst) {
                    Some(via) => via.clone(),
                    None => self.rels.providers_of(u).collect(),
                }
            } else {
                self.rels.providers_of(u).collect()
            };
            for p in providers {
                if let std::collections::btree_map::Entry::Vacant(e) = tree.entry(p) {
                    e.insert(RouteEntry {
                        next: u,
                        dist: d + 1,
                        class: RouteClass::Customer,
                    });
                    frontier.insert((d + 1, p));
                }
            }
        }

        // ---- Phase B: peer routes, one hop off the customer tree ----
        let customer_routed: Vec<(Asn, u32)> = tree.iter().map(|(&a, e)| (a, e.dist)).collect();
        let mut peer_routes: Vec<(Asn, RouteEntry)> = Vec::new();
        for &(a, d) in &customer_routed {
            for peer in self.rels.peers_of(a) {
                if !tree.contains_key(&peer) {
                    peer_routes.push((
                        peer,
                        RouteEntry {
                            next: a,
                            dist: d + 1,
                            class: RouteClass::Peer,
                        },
                    ));
                }
            }
        }
        // An AS with several peer offers takes the shortest, ties to lowest
        // next-hop ASN.
        peer_routes.sort_by_key(|&(peer, e)| (peer, e.dist, e.next));
        for (peer, entry) in peer_routes {
            tree.entry(peer).or_insert(entry);
        }

        // ---- Phase C: provider routes flood down p2c edges ----
        let mut frontier: BTreeSet<(u32, Asn)> = tree.iter().map(|(&a, e)| (e.dist, a)).collect();
        while let Some(&(d, u)) = frontier.iter().next() {
            frontier.remove(&(d, u));
            // Skip if u's recorded route got replaced by a shorter one (we
            // never replace, so dist is stable; this is just defensive).
            for c in self.rels.customers_of(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = tree.entry(c) {
                    e.insert(RouteEntry {
                        next: u,
                        dist: d + 1,
                        class: RouteClass::Provider,
                    });
                    frontier.insert((d + 1, c));
                }
            }
        }

        tree
    }

    /// The AS path from `src` to `dst` (inclusive), or `None` if `src` has
    /// no route.
    pub fn as_path(&self, src: Asn, dst: Asn) -> Option<Vec<Asn>> {
        let tree = self.tree(dst);
        let mut path = vec![src];
        let mut cur = src;
        for _ in 0..64 {
            if cur == dst {
                return Some(path);
            }
            let entry = tree.get(&cur)?;
            cur = entry.next;
            path.push(cur);
        }
        None // routing loop guard; unreachable by construction
    }

    /// Number of cached trees (for tests / diagnostics).
    pub fn cached_trees(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_rel::valley_free;

    /// 1 ─peer─ 2 ; 3 customer of 1 ; 4 customer of 2 ; 5 customer of 3 and 4.
    fn rels() -> AsRelationships {
        let mut r = AsRelationships::new();
        r.add_p2p(Asn(1), Asn(2));
        r.add_p2c(Asn(1), Asn(3));
        r.add_p2c(Asn(2), Asn(4));
        r.add_p2c(Asn(3), Asn(5));
        r.add_p2c(Asn(4), Asn(5));
        r
    }

    #[test]
    fn prefers_customer_routes() {
        let routing = Routing::new(rels(), BTreeMap::new());
        // 3 reaches 5 via its customer directly, never via 1.
        assert_eq!(routing.as_path(Asn(3), Asn(5)), Some(vec![Asn(3), Asn(5)]));
        // 1 reaches 5 via customer 3 (customer route), not peer 2.
        assert_eq!(
            routing.as_path(Asn(1), Asn(5)),
            Some(vec![Asn(1), Asn(3), Asn(5)])
        );
    }

    #[test]
    fn peer_routes_used_when_no_customer_route() {
        let routing = Routing::new(rels(), BTreeMap::new());
        // 3 → 4: no customer path (5 doesn't transit!), so 3 climbs to 1,
        // peers to 2, descends to 4.
        assert_eq!(
            routing.as_path(Asn(3), Asn(4)),
            Some(vec![Asn(3), Asn(1), Asn(2), Asn(4)])
        );
    }

    #[test]
    fn paths_are_valley_free() {
        let r = rels();
        let routing = Routing::new(r.clone(), BTreeMap::new());
        for src in [1u32, 2, 3, 4, 5] {
            for dst in [1u32, 2, 3, 4, 5] {
                let path = routing.as_path(Asn(src), Asn(dst)).unwrap();
                assert!(
                    valley_free(&r, &path),
                    "path {path:?} from {src} to {dst} has a valley"
                );
            }
        }
    }

    #[test]
    fn customers_never_transit() {
        let routing = Routing::new(rels(), BTreeMap::new());
        // Route from 3 to 4 must not pass through their shared customer 5.
        let path = routing.as_path(Asn(3), Asn(4)).unwrap();
        assert!(!path[1..path.len() - 1].contains(&Asn(5)));
    }

    #[test]
    fn announce_via_restriction_respected() {
        // 5 announces only via 4: 3 must now route 3→1→2→4→5.
        let via = BTreeMap::from([(Asn(5), vec![Asn(4)])]);
        let routing = Routing::new(rels(), via);
        assert_eq!(
            routing.as_path(Asn(3), Asn(5)),
            Some(vec![Asn(3), Asn(1), Asn(2), Asn(4), Asn(5)])
        );
        // ...even though 3 is directly connected to 5, it holds no customer
        // route (5 withheld the announcement).
        let tree = routing.tree(Asn(5));
        assert_ne!(tree[&Asn(3)].class, RouteClass::Customer);
    }

    #[test]
    fn tree_caching() {
        let routing = Routing::new(rels(), BTreeMap::new());
        assert_eq!(routing.cached_trees(), 0);
        let t1 = routing.tree(Asn(5));
        let t2 = routing.tree(Asn(5));
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(routing.cached_trees(), 1);
    }

    #[test]
    fn unreachable_when_no_relationship_graph() {
        let routing = Routing::new(AsRelationships::new(), BTreeMap::new());
        // src == dst is trivially reachable.
        assert_eq!(routing.as_path(Asn(9), Asn(9)), Some(vec![Asn(9)]));
        assert_eq!(routing.as_path(Asn(8), Asn(9)), None);
    }

    #[test]
    fn dist_monotone_along_path() {
        let routing = Routing::new(rels(), BTreeMap::new());
        let tree = routing.tree(Asn(5));
        for (&asn, entry) in tree.iter() {
            if asn == Asn(5) {
                assert_eq!(entry.dist, 0);
                continue;
            }
            let next_entry = &tree[&entry.next];
            assert_eq!(entry.dist, next_entry.dist + 1);
        }
    }
}
