//! Topology dynamics: the event vocabulary for churn simulation.
//!
//! A generated [`Internet`] is immutable under the original pipeline; the
//! churn workload (crates/churn) steps it through epochs by applying
//! [`TopologyEvent`]s. Every event is deterministic — applying the same
//! event sequence to the same topology always yields the same mutated
//! topology — and each application reports which ASes it *touched* so the
//! incremental pipeline can limit re-probing and re-convergence to the
//! affected slice (see DESIGN.md §16).
//!
//! Event semantics:
//!
//! * **Link failure/recovery** edits the internal adjacency of one AS only.
//!   The failed link's interfaces remain registered (their addresses still
//!   answer probes — a down link does not unnumber a router); forwarding
//!   simply routes around the adjacency. Failures that would disconnect the
//!   AS's internal topology are refused, because route expansion assumes
//!   internal connectivity.
//! * **Router addition** appends one router (all response-behaviour
//!   pathologies off) with a router-id interface and a point-to-point link
//!   to an existing router of the same AS, numbered from the first free
//!   addresses of the AS's infrastructure region. It touches only the
//!   owning AS — but note `router_for_addr` hashes host addresses over the
//!   AS's router list, so *every* path terminating in that AS's space may
//!   shift.
//! * **Prefix reannouncement** rotates which provider a multi-homed AS
//!   announces through (`announce_via`) and rebuilds the routing oracle.
//!   This changes BGP paths globally, so it reports `rib_changed` and the
//!   caller must rebuild the RIB-derived inputs.

use crate::{Internet, RouterId};
use net_types::Asn;
use std::collections::BTreeSet;

/// One timed topology mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// Fail the internal link between two routers of `asn`.
    LinkDown {
        /// Owning AS.
        asn: Asn,
        /// One endpoint.
        a: RouterId,
        /// The other endpoint.
        b: RouterId,
    },
    /// Recover a previously failed internal link.
    LinkUp {
        /// Owning AS.
        asn: Asn,
        /// One endpoint.
        a: RouterId,
        /// The other endpoint.
        b: RouterId,
    },
    /// Add a router to `asn`, linked to `attach`.
    RouterAdd {
        /// Owning AS.
        asn: Asn,
        /// Existing router of `asn` the new one connects to.
        attach: RouterId,
    },
    /// Rotate the provider `asn` announces its prefix through.
    Reannounce {
        /// The reannouncing AS (must have at least two providers to apply).
        asn: Asn,
    },
}

impl TopologyEvent {
    /// Compact display form for logs and the churn report.
    pub fn describe(&self) -> String {
        match *self {
            TopologyEvent::LinkDown { asn, a, b } => {
                format!("link-down AS{} r{}-r{}", asn.0, a.0, b.0)
            }
            TopologyEvent::LinkUp { asn, a, b } => {
                format!("link-up AS{} r{}-r{}", asn.0, a.0, b.0)
            }
            TopologyEvent::RouterAdd { asn, attach } => {
                format!("router-add AS{} @r{}", asn.0, attach.0)
            }
            TopologyEvent::Reannounce { asn } => format!("reannounce AS{}", asn.0),
        }
    }
}

/// What applying one event did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventOutcome {
    /// Whether the event took effect. Events are *skipped* (deterministically)
    /// when preconditions fail: a link failure that would disconnect an AS, a
    /// recovery of a link that is up, a router addition with an exhausted
    /// address region, a reannouncement by an AS without two providers.
    pub applied: bool,
    /// ASes whose forwarding behaviour may have changed. A traceroute path
    /// can only change if it traverses (or terminates in) a touched AS.
    pub touched: BTreeSet<Asn>,
    /// The event changed interdomain routing: every BGP-derived input (RIB,
    /// IP→AS, inferred relationships) must be rebuilt, and every path is
    /// suspect.
    pub rib_changed: bool,
}

impl EventOutcome {
    fn skipped() -> EventOutcome {
        EventOutcome::default()
    }

    fn local(asn: Asn) -> EventOutcome {
        EventOutcome {
            applied: true,
            touched: BTreeSet::from([asn]),
            rib_changed: false,
        }
    }
}

impl Internet {
    /// Applies one topology event in place. Deterministic: outcome and
    /// mutated state depend only on the current topology and the event.
    pub fn apply_event(&mut self, ev: &TopologyEvent) -> EventOutcome {
        match *ev {
            TopologyEvent::LinkDown { asn, a, b } => {
                if self.topology.owner(a) != asn || self.topology.owner(b) != asn {
                    return EventOutcome::skipped();
                }
                if self.topology.fail_internal_link(a, b) {
                    EventOutcome::local(asn)
                } else {
                    EventOutcome::skipped()
                }
            }
            TopologyEvent::LinkUp { asn, a, b } => {
                if self.topology.owner(a) != asn || self.topology.owner(b) != asn {
                    return EventOutcome::skipped();
                }
                if self.topology.restore_internal_link(a, b) {
                    EventOutcome::local(asn)
                } else {
                    EventOutcome::skipped()
                }
            }
            TopologyEvent::RouterAdd { asn, attach } => {
                if self.topology.owner(attach) != asn {
                    return EventOutcome::skipped();
                }
                let Some(addrs) = self.carve_router_addrs(asn) else {
                    return EventOutcome::skipped(); // region exhausted
                };
                self.topology.add_router(asn, attach, addrs);
                EventOutcome::local(asn)
            }
            TopologyEvent::Reannounce { asn } => {
                let providers: Vec<Asn> = {
                    let mut p: Vec<Asn> = self.graph.relationships.providers_of(asn).collect();
                    p.sort_unstable();
                    p
                };
                if providers.len() < 2 {
                    return EventOutcome::skipped();
                }
                let via = self.addressing.announce_via.entry(asn).or_default();
                let next = match via.as_slice() {
                    // Previously announcing through all providers: restrict
                    // to the first.
                    [] => providers[0],
                    // Rotate to the next provider in ASN order.
                    [cur, ..] => {
                        let i = providers.iter().position(|p| p == cur).unwrap_or(0);
                        providers[(i + 1) % providers.len()]
                    }
                };
                *via = vec![next];
                // A fresh oracle drops every cached route tree.
                self.routing = crate::routing::Routing::new(
                    self.graph.relationships.clone(),
                    self.addressing.announce_via.clone(),
                );
                EventOutcome {
                    applied: true,
                    touched: BTreeSet::from([asn]),
                    rib_changed: true,
                }
            }
        }
    }

    /// Every internal link as `(owner, a, b)` with `a < b`, sorted — the
    /// candidate set for link failure events.
    pub fn internal_links(&self) -> Vec<(Asn, RouterId, RouterId)> {
        let mut out = Vec::new();
        for r in &self.topology.routers {
            for &n in &self.topology.internal_adj[r.id.0 as usize] {
                if r.id < n {
                    out.push((r.owner, r.id, n));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Carves three fresh infrastructure addresses for a router addition:
    /// `[router-id, p2p low, p2p high]`, continuing past the highest address
    /// the generator (or an earlier addition) used in the AS's infrastructure
    /// region, with the pair /31-aligned like every generated p2p link.
    /// `None` when the region cannot fit them (the event is then skipped).
    fn carve_router_addrs(&self, asn: Asn) -> Option<[u32; 3]> {
        let region = self.addressing.infra_pool(asn).region();
        // Reallocated /24s are carved from the top of the same upper-half
        // region; never grow into them.
        let ceiling: u64 = self
            .addressing
            .reallocs
            .iter()
            .filter(|r| r.prefix.len() > region.len() && region.contains(r.prefix.addr()))
            .map(|r| u64::from(r.prefix.addr()))
            .min()
            .unwrap_or(u64::from(region.last_addr()) + 1);
        let used_max = self
            .topology
            .addr_to_iface
            .range(region.addr()..)
            .map(|(&a, _)| u64::from(a))
            .rev()
            .find(|&a| a < ceiling);
        let rid = used_max.map_or(u64::from(region.addr()), |m| m + 1);
        // /31-align the p2p pair (an odd leading address is burned, exactly
        // like `AddrPool::take_p2p_pair`).
        let lo = (rid + 1).next_multiple_of(2);
        if lo + 1 >= ceiling {
            return None;
        }
        Some([rid as u32, lo as u32, (lo + 1) as u32])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;

    fn net(seed: u64) -> Internet {
        Internet::generate(GeneratorConfig::tiny(seed))
    }

    /// A removable link: one whose failure keeps its AS connected.
    fn removable(net: &Internet) -> (Asn, RouterId, RouterId) {
        for (asn, a, b) in net.internal_links() {
            let mut probe = net.topology.clone();
            if probe.fail_internal_link(a, b) {
                return (asn, a, b);
            }
        }
        panic!("no removable link in tiny topology");
    }

    #[test]
    fn link_down_then_up_restores_adjacency() {
        let mut n = net(1);
        let (asn, a, b) = removable(&n);
        let before = n.topology.internal_adj.clone();
        let down = n.apply_event(&TopologyEvent::LinkDown { asn, a, b });
        assert!(down.applied);
        assert_eq!(down.touched, BTreeSet::from([asn]));
        assert!(!down.rib_changed);
        assert!(!n.topology.internal_adj[a.0 as usize].contains(&b));
        // The interfaces survive the failure.
        assert!(n.topology.routers[a.0 as usize].ifaces.iter().any(|&i| n
            .topology
            .iface(i)
            .neighbor
            .is_some_and(|x| n.topology.iface(x).router == b)));
        let up = n.apply_event(&TopologyEvent::LinkUp { asn, a, b });
        assert!(up.applied);
        let mut after = n.topology.internal_adj.clone();
        // Restore appends; compare as sets.
        for (x, y) in before.iter().zip(after.iter_mut()) {
            y.sort_unstable();
            let mut x = x.clone();
            x.sort_unstable();
            assert_eq!(&x, y);
        }
    }

    #[test]
    fn disconnecting_failure_is_skipped() {
        let mut n = net(2);
        // Find a bridge: fail links until one is refused, or verify every
        // AS stays connected after every applied failure.
        let links = n.internal_links();
        for (asn, a, b) in links {
            let out = n.apply_event(&TopologyEvent::LinkDown { asn, a, b });
            if out.applied {
                let routers = n.topology.as_routers[&asn].clone();
                for &r in &routers[1..] {
                    assert!(
                        n.topology.internal_path(routers[0], r).is_some(),
                        "AS{} disconnected after applied failure",
                        asn.0
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_bogus_events_are_skipped() {
        let mut n = net(3);
        let (asn, a, b) = removable(&n);
        assert!(
            n.apply_event(&TopologyEvent::LinkDown { asn, a, b })
                .applied
        );
        // Same link again: no adjacency left to fail.
        assert!(
            !n.apply_event(&TopologyEvent::LinkDown { asn, a, b })
                .applied
        );
        // Recovering an up link is a no-op too.
        assert!(n.apply_event(&TopologyEvent::LinkUp { asn, a, b }).applied);
        assert!(!n.apply_event(&TopologyEvent::LinkUp { asn, a, b }).applied);
        // Wrong-AS endpoints are refused.
        let other = n
            .topology
            .routers
            .iter()
            .find(|r| r.owner != asn)
            .expect("second AS")
            .id;
        assert!(
            !n.apply_event(&TopologyEvent::LinkDown { asn, a, b: other })
                .applied
        );
    }

    #[test]
    fn router_add_extends_topology_consistently() {
        let mut n = net(4);
        let asn = *n.topology.as_routers.keys().next().unwrap();
        let attach = n.topology.as_routers[&asn][0];
        let routers_before = n.topology.router_count();
        let ifaces_before = n.topology.iface_count();
        let out = n.apply_event(&TopologyEvent::RouterAdd { asn, attach });
        assert!(out.applied);
        assert_eq!(n.topology.router_count(), routers_before + 1);
        assert_eq!(n.topology.iface_count(), ifaces_before + 3);
        // Address uniqueness and link symmetry still hold.
        assert_eq!(n.topology.addr_to_iface.len(), n.topology.iface_count());
        let new = n.topology.routers.last().unwrap();
        assert_eq!(new.owner, asn);
        assert!(!new.silent && !new.egress_reply && !new.echo_offpath);
        assert!(n.topology.internal_path(attach, new.id).is_some());
        // New addresses live in the AS's announced space.
        for &i in &new.ifaces {
            assert_eq!(n.bgp_origin(n.topology.iface(i).addr), Some(asn));
        }
    }

    #[test]
    fn reannounce_rotates_and_rebuilds_routing() {
        let mut n = net(5);
        let multi = n
            .graph
            .relationships
            .ases()
            .into_iter()
            .find(|&a| n.graph.relationships.providers_of(a).count() >= 2)
            .expect("tiny topology has a multi-homed AS");
        let out = n.apply_event(&TopologyEvent::Reannounce { asn: multi });
        assert!(out.applied && out.rib_changed);
        let first = n.addressing.announce_via[&multi].clone();
        assert_eq!(first.len(), 1);
        // Applying again rotates to a different provider.
        let out = n.apply_event(&TopologyEvent::Reannounce { asn: multi });
        assert!(out.applied);
        assert_ne!(n.addressing.announce_via[&multi], first);
        // Routes still exist to the reannounced AS from elsewhere.
        let other = n
            .graph
            .relationships
            .ases()
            .into_iter()
            .find(|&a| a != multi)
            .unwrap();
        assert!(n.routing.as_path(other, multi).is_some());
    }

    #[test]
    fn single_homed_reannounce_is_skipped() {
        let mut n = net(6);
        if let Some(single) = n
            .graph
            .relationships
            .ases()
            .into_iter()
            .find(|&a| n.graph.relationships.providers_of(a).count() < 2)
        {
            assert!(
                !n.apply_event(&TopologyEvent::Reannounce { asn: single })
                    .applied
            );
        }
    }

    #[test]
    fn events_are_deterministic() {
        let seq = |mut n: Internet| {
            let (asn, a, b) = removable(&n);
            let asn2 = *n.topology.as_routers.keys().last().unwrap();
            let attach = n.topology.as_routers[&asn2][0];
            n.apply_event(&TopologyEvent::LinkDown { asn, a, b });
            n.apply_event(&TopologyEvent::RouterAdd { asn: asn2, attach });
            serde_json::to_string(&n.topology.ifaces).unwrap()
        };
        assert_eq!(seq(net(7)), seq(net(7)));
    }
}
