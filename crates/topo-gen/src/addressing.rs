//! Address-space allocation and announcement policy.
//!
//! Each AS receives a block sized by tier. The low half of the block is
//! *host space* (traceroute destinations live there); the high half is
//! *infrastructure space* (router interfaces are numbered from it). On top
//! of the clean allocation, this module plants the pathologies the paper's
//! heuristics target:
//!
//! * **Reallocated prefixes** (§4.4, §6.1.2): a multihomed stub customer
//!   gets a /24 carved from its primary provider's block. The customer
//!   numbers its infrastructure and the provider link from that /24, and
//!   announces its *own* block only through its secondary provider — so BGP
//!   shows no adjacency between reallocating provider and customer, and the
//!   /24 itself resolves to the provider by longest prefix match.
//! * **Stale RIR delegations** (§4.1): some ipv4 records point at an org
//!   with a different (previous holder) ASN.
//! * **Unannounced space** (§6.1.1): some ASes number a share of internal
//!   links from dark space absent from BGP; half of those at least appear in
//!   RIR delegations, half resolve to nothing at all.
//! * **IXP LAN leakage** (§4.1): some IXP peering LANs are originated into
//!   BGP by a member, which is exactly why the IXP prefix directory must
//!   shadow BGP origins.

use crate::asgraph::AsGraph;
use crate::{GeneratorConfig, Tier};
use bgp::ixp::{Ixp, IxpDirectory};
use bgp::rir::{AsnRecord, DelegationTable, Ipv4Record, Registry};
use net_types::{Asn, Prefix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A /24 reallocated from a provider's block to a customer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Realloc {
    /// The reallocated prefix (inside the provider's block).
    pub prefix: Prefix,
    /// The reallocating provider (announces the covering prefix).
    pub provider: Asn,
    /// The customer that actually uses the space.
    pub customer: Asn,
}

/// Dark (unannounced) space assigned to an AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DarkBlock {
    /// The block.
    pub prefix: Prefix,
    /// Who uses it.
    pub owner: Asn,
    /// Whether an RIR delegation record exists for it (if not, addresses
    /// from it are fully unannounced).
    pub in_rir: bool,
}

/// The complete addressing plan for a synthetic Internet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Addressing {
    /// Primary allocation per AS.
    pub blocks: BTreeMap<Asn, Prefix>,
    /// `(prefix, origin)` pairs announced into BGP.
    pub announced: Vec<(Prefix, Asn)>,
    /// Which provider(s) an AS announces through; absent = all providers.
    pub announce_via: BTreeMap<Asn, Vec<Asn>>,
    /// Reallocated /24s.
    pub reallocs: Vec<Realloc>,
    /// Dark space.
    pub dark: Vec<DarkBlock>,
    /// RIR delegation table (with staleness).
    pub delegations: DelegationTable,
    /// IXP directory with peering LAN prefixes filled in.
    pub ixps: IxpDirectory,
}

/// Sequential address allocator inside a prefix region.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AddrPool {
    region: Prefix,
    next: u32,
}

impl AddrPool {
    /// A pool over the whole region, starting at its first address.
    pub fn new(region: Prefix) -> Self {
        AddrPool {
            region,
            next: region.addr(),
        }
    }

    /// Hands out the next address.
    ///
    /// # Panics
    /// Panics if the region is exhausted — a config error, since region
    /// sizes are chosen to dominate interface counts.
    pub fn take(&mut self) -> u32 {
        assert!(
            self.region.contains(self.next),
            "address pool {} exhausted",
            self.region
        );
        let addr = self.next;
        self.next += 1;
        addr
    }

    /// Hands out `n` consecutive addresses.
    pub fn take_n(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.take()).collect()
    }

    /// Hands out a /31-aligned address pair, the way operators number
    /// point-to-point links (alias-resolution heuristics depend on the
    /// subnet-mate relation holding).
    pub fn take_p2p_pair(&mut self) -> (u32, u32) {
        if self.next & 1 == 1 {
            self.take(); // burn the odd address to realign
        }
        let a = self.take();
        let b = self.take();
        (a, b)
    }

    /// The region this pool draws from.
    pub fn region(&self) -> Prefix {
        self.region
    }

    /// Addresses handed out so far.
    pub fn used(&self) -> u32 {
        self.next - self.region.addr()
    }
}

/// Block length (CIDR prefix length) by tier.
pub fn block_len(tier: Tier) -> u8 {
    match tier {
        Tier::Clique => 14,
        Tier::Transit => 15,
        Tier::Access => 16,
        Tier::ResearchEducation => 16,
        Tier::Stub => 22,
    }
}

/// Base of the allocation region for AS blocks.
const ALLOC_BASE: u32 = 0x14000000; // 20.0.0.0
/// Base of the IXP LAN region (real IXP space historically lived around
/// 198.32.0.0/16, so we mimic it).
const IXP_BASE: u32 = 0xC6200000; // 198.32.0.0
/// Base of the dark-space region.
const DARK_BASE: u32 = 0x66000000; // 102.0.0.0

impl Addressing {
    /// Builds the addressing plan for an AS graph.
    pub fn generate(cfg: &GeneratorConfig, graph: &AsGraph) -> Addressing {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA5A5_0002);
        let mut blocks: BTreeMap<Asn, Prefix> = BTreeMap::new();
        let mut delegations = DelegationTable::new();

        // ---- primary blocks, aligned bump allocation ----
        let mut cursor = ALLOC_BASE;
        for node in graph.nodes.values() {
            let len = block_len(node.tier);
            let size = 1u32 << (32 - len);
            // Align the cursor to the block size.
            cursor = (cursor + size - 1) & !(size - 1);
            let block = Prefix::new(cursor, len);
            cursor += size;
            blocks.insert(node.asn, block);

            // RIR delegation for the block; sometimes stale.
            let org = if rng.gen_bool(cfg.stale_rir_prob) {
                // Previous holder: a different org whose asn record points
                // at another AS in the graph (deterministic pick).
                let victims: Vec<Asn> = graph.nodes.keys().copied().collect();
                let other = victims[rng.gen_range(0..victims.len())];
                if other != node.asn {
                    format!("ORG-{}", other.0)
                } else {
                    format!("ORG-{}", node.asn.0)
                }
            } else {
                format!("ORG-{}", node.asn.0)
            };
            delegations.add_ipv4(Ipv4Record {
                registry: Registry::Arin,
                prefix: block,
                org,
            });
        }
        // One asn record per AS.
        for node in graph.nodes.values() {
            delegations.add_asn(AsnRecord {
                registry: Registry::Arin,
                asn: node.asn,
                org: format!("ORG-{}", node.asn.0),
            });
        }

        // ---- reallocated /24s for multihomed stubs ----
        let mut reallocs = Vec::new();
        let mut announce_via: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut realloc_slots: BTreeMap<Asn, u32> = BTreeMap::new(); // next /24 index per provider
        for node in graph.nodes.values() {
            if node.tier != Tier::Stub {
                continue;
            }
            let providers: Vec<Asn> = graph.relationships.providers_of(node.asn).collect();
            if providers.len() < 2 || !rng.gen_bool(cfg.realloc_prob) {
                continue;
            }
            let provider = providers[0];
            let secondary = providers[1];
            let pblock = blocks[&provider];
            // Carve the next /24 from the TOP of the provider's block,
            // descending, so reallocations never collide with the provider's
            // own infrastructure region (which grows from the middle).
            let slot = realloc_slots.entry(provider).or_insert(0);
            let index = *slot;
            *slot += 1;
            let addr = pblock.last_addr() - 255 - index * 256;
            let r24 = Prefix::new(addr & !0xff, 24);
            if !pblock.covers(r24) {
                continue; // provider block exhausted; skip
            }
            reallocs.push(Realloc {
                prefix: r24,
                provider,
                customer: node.asn,
            });
            // The customer's own block is announced only via the secondary
            // provider, hiding the provider–customer adjacency from BGP.
            announce_via.insert(node.asn, vec![secondary]);
        }

        // ---- dark space ----
        let mut dark = Vec::new();
        let mut dark_cursor = DARK_BASE;
        for node in graph.nodes.values() {
            if node.tier == Tier::Stub || !rng.gen_bool(cfg.unannounced_space_prob) {
                continue;
            }
            let block = Prefix::new(dark_cursor, 24);
            dark_cursor += 256;
            let in_rir = rng.gen_bool(0.5);
            if in_rir {
                delegations.add_ipv4(Ipv4Record {
                    registry: Registry::RipeNcc,
                    prefix: block,
                    org: format!("ORG-{}", node.asn.0),
                });
            }
            dark.push(DarkBlock {
                prefix: block,
                owner: node.asn,
                in_rir,
            });
        }

        // ---- IXP LANs ----
        let mut ixp_dir = IxpDirectory::new();
        let mut announced: Vec<(Prefix, Asn)> = Vec::new();
        for spec in &graph.ixps {
            let lan = Prefix::new(IXP_BASE + spec.id * 256, 24);
            // Some members leak the LAN into BGP (§4.1's motivation for the
            // IXP prefix list).
            if !spec.members.is_empty() && rng.gen_bool(cfg.ixp_bgp_leak_prob) {
                let leaker = spec.members[rng.gen_range(0..spec.members.len())];
                announced.push((lan, leaker));
            }
            ixp_dir.add(Ixp {
                id: spec.id,
                name: format!("Synthetic-IX {}", spec.id),
                prefix: lan,
                members: spec.members.clone(),
            });
        }

        // ---- announcements ----
        for node in graph.nodes.values() {
            announced.push((blocks[&node.asn], node.asn));
        }

        Addressing {
            blocks,
            announced,
            announce_via,
            reallocs,
            dark,
            delegations,
            ixps: ixp_dir,
        }
    }

    /// The infrastructure pool for an AS: reallocated customers number from
    /// their /24; everyone else numbers from the middle of their own block.
    pub fn infra_pool(&self, asn: Asn) -> AddrPool {
        if let Some(r) = self.reallocs.iter().find(|r| r.customer == asn) {
            return AddrPool::new(r.prefix);
        }
        let block = self.blocks[&asn];
        // Infrastructure occupies the upper half of the block (minus any
        // reallocated /24s carved from the very top, which descend from the
        // end; the gap between is ample at our scales).
        let (_, hi) = block.children().expect("blocks are shorter than /32");
        AddrPool::new(hi)
    }

    /// The host (destination) region for an AS: the lower half of its block.
    pub fn host_region(&self, asn: Asn) -> Prefix {
        let block = self.blocks[&asn];
        let (lo, _) = block.children().expect("blocks are shorter than /32");
        lo
    }

    /// The dark-space pool for an AS, if it was assigned one.
    pub fn dark_pool(&self, asn: Asn) -> Option<AddrPool> {
        self.dark
            .iter()
            .find(|d| d.owner == asn)
            .map(|d| AddrPool::new(d.prefix))
    }

    /// The reallocation record for a customer, if any.
    pub fn realloc_for_customer(&self, asn: Asn) -> Option<&Realloc> {
        self.reallocs.iter().find(|r| r.customer == asn)
    }

    /// The reallocated /24 covering `addr`, if any.
    pub fn realloc_covering(&self, addr: u32) -> Option<&Realloc> {
        self.reallocs.iter().find(|r| r.prefix.contains(addr))
    }

    /// Ground truth: which AS actually holds `addr` (reallocations and dark
    /// space resolve to the *customer*/user, not the announcing AS).
    pub fn true_holder(&self, addr: u32) -> Option<Asn> {
        if let Some(r) = self.realloc_covering(addr) {
            return Some(r.customer);
        }
        if let Some(d) = self.dark.iter().find(|d| d.prefix.contains(addr)) {
            return Some(d.owner);
        }
        self.blocks
            .iter()
            .find(|(_, block)| block.contains(addr))
            .map(|(&asn, _)| asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (GeneratorConfig, AsGraph, Addressing) {
        let cfg = GeneratorConfig::tiny(21);
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        (cfg, graph, addr)
    }

    #[test]
    fn blocks_are_disjoint() {
        let (_, _, addr) = fixture();
        let blocks: Vec<Prefix> = addr.blocks.values().copied().collect();
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                assert!(!a.overlaps(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn block_sizes_match_tier() {
        let (_, graph, addr) = fixture();
        for node in graph.nodes.values() {
            assert_eq!(addr.blocks[&node.asn].len(), block_len(node.tier));
        }
    }

    #[test]
    fn every_as_announces_its_block() {
        let (_, graph, addr) = fixture();
        for node in graph.nodes.values() {
            assert!(
                addr.announced
                    .iter()
                    .any(|&(p, o)| o == node.asn && p == addr.blocks[&node.asn]),
                "{} missing announcement",
                node.asn
            );
        }
    }

    #[test]
    fn reallocs_are_inside_provider_blocks_and_unannounced() {
        let cfg = GeneratorConfig {
            realloc_prob: 1.0,
            stub_multihome_prob: 1.0,
            ..GeneratorConfig::tiny(33)
        };
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        assert!(!addr.reallocs.is_empty());
        for r in &addr.reallocs {
            assert!(addr.blocks[&r.provider].covers(r.prefix));
            assert_eq!(r.prefix.len(), 24);
            // Never announced as its own prefix.
            assert!(!addr.announced.iter().any(|&(p, _)| p == r.prefix));
            // The customer announces via the secondary provider only.
            let via = &addr.announce_via[&r.customer];
            assert_eq!(via.len(), 1);
            assert_ne!(via[0], r.provider);
            // True holder of realloc space is the customer.
            assert_eq!(addr.true_holder(r.prefix.addr()), Some(r.customer));
            // Infra pool draws from the realloc prefix.
            assert_eq!(addr.infra_pool(r.customer).region(), r.prefix);
        }
    }

    #[test]
    fn realloc_slots_do_not_collide() {
        let cfg = GeneratorConfig {
            realloc_prob: 1.0,
            stub_multihome_prob: 1.0,
            ..GeneratorConfig::tiny(5)
        };
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        for (i, a) in addr.reallocs.iter().enumerate() {
            for b in addr.reallocs.iter().skip(i + 1) {
                assert_ne!(a.prefix, b.prefix, "realloc /24 collision");
            }
        }
    }

    #[test]
    fn host_and_infra_regions_split_the_block() {
        let (_, graph, addr) = fixture();
        for node in graph.nodes.values() {
            if addr.realloc_for_customer(node.asn).is_some() {
                continue;
            }
            let block = addr.blocks[&node.asn];
            let host = addr.host_region(node.asn);
            let infra = addr.infra_pool(node.asn).region();
            assert!(block.covers(host));
            assert!(block.covers(infra));
            assert!(!host.overlaps(infra));
        }
    }

    #[test]
    fn dark_space_outside_allocations() {
        let cfg = GeneratorConfig {
            unannounced_space_prob: 1.0,
            ..GeneratorConfig::tiny(17)
        };
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        assert!(!addr.dark.is_empty());
        for d in &addr.dark {
            for block in addr.blocks.values() {
                assert!(!d.prefix.overlaps(*block));
            }
            assert!(!addr.announced.iter().any(|&(p, _)| p.overlaps(d.prefix)));
            assert_eq!(addr.true_holder(d.prefix.addr()), Some(d.owner));
        }
        // Both RIR-covered and fully-dark variants should occur at prob 1.
        assert!(addr.dark.iter().any(|d| d.in_rir));
        assert!(addr.dark.iter().any(|d| !d.in_rir));
    }

    #[test]
    fn ixp_lans_present() {
        let (cfg, _, addr) = fixture();
        assert_eq!(addr.ixps.len(), cfg.ixp_count);
        for ixp in addr.ixps.iter() {
            assert_eq!(ixp.prefix.len(), 24);
            assert!(ixp.members.len() >= 2);
        }
    }

    #[test]
    fn addr_pool_sequential() {
        let mut pool = AddrPool::new("10.0.0.0/30".parse().unwrap());
        assert_eq!(pool.take(), 0x0a000000);
        assert_eq!(pool.take(), 0x0a000001);
        assert_eq!(pool.take_n(2), vec![0x0a000002, 0x0a000003]);
        assert_eq!(pool.used(), 4);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn addr_pool_exhaustion_panics() {
        let mut pool = AddrPool::new("10.0.0.0/31".parse().unwrap());
        pool.take();
        pool.take();
        pool.take();
    }
}
