//! Router-level topology: routers, interfaces, links, response behaviours.
//!
//! Each AS gets a connected internal topology (a ring plus random chords)
//! sized by tier. Every AS relationship becomes one or more router-level
//! links between border routers; every IXP peering becomes a pair of ports
//! on the shared LAN. Interface addressing follows operator convention —
//! transit links are numbered from the provider's space — except where the
//! generator deliberately injects the pathologies bdrmapIT handles
//! (customer-addressed links, reallocated /24s, dark space).

use crate::addressing::Addressing;
use crate::asgraph::AsGraph;
use crate::{GeneratorConfig, IfaceId, RouterId, Tier, TrueLink};
use net_types::Asn;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a link was provisioned; drives addressing and ground-truth labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Internal to one AS.
    Internal,
    /// Private interdomain link (transit or private peering).
    Interdomain,
    /// Across an IXP fabric (addresses from the IXP LAN).
    Ixp(u32),
}

/// One router.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterInfo {
    /// Identifier (index into [`RouterTopology::routers`]).
    pub id: RouterId,
    /// Owning (operating) AS — the ground truth bdrmapIT tries to recover.
    pub owner: Asn,
    /// Never responds to traceroute probes.
    pub silent: bool,
    /// Responds with the interface facing the reply direction (egress)
    /// instead of the probe's ingress interface — the third-party-address
    /// mechanism of §6.1.1.
    pub egress_reply: bool,
    /// Echo replies are sourced from the router-id interface instead of the
    /// probed address (off-path echo, §4.2's `E` label discussion).
    pub echo_offpath: bool,
    /// All interfaces on this router (the alias-resolution ground truth).
    pub ifaces: Vec<IfaceId>,
}

/// One interface.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InterfaceInfo {
    /// Identifier (index into [`RouterTopology::ifaces`]).
    pub id: IfaceId,
    /// IPv4 address.
    pub addr: u32,
    /// Router carrying the interface.
    pub router: RouterId,
    /// The interface at the other end of a point-to-point link; `None` for
    /// router-id interfaces and IXP LAN ports.
    pub neighbor: Option<IfaceId>,
    /// Link provisioning.
    pub kind: LinkKind,
}

/// One router-level interdomain adjacency (possibly parallel).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExtLink {
    /// Router and its interface on the first AS (canonical pair order).
    pub router_a: RouterId,
    /// Interface on side a.
    pub iface_a: IfaceId,
    /// Router on the second AS.
    pub router_b: RouterId,
    /// Interface on side b.
    pub iface_b: IfaceId,
}

/// The full router-level topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterTopology {
    /// All routers, indexed by `RouterId`.
    pub routers: Vec<RouterInfo>,
    /// All interfaces, indexed by `IfaceId`.
    pub ifaces: Vec<InterfaceInfo>,
    /// Routers per AS (ascending ids).
    pub as_routers: BTreeMap<Asn, Vec<RouterId>>,
    /// Internal adjacency per router (same-AS neighbors), aligned with
    /// `routers`.
    pub internal_adj: Vec<Vec<RouterId>>,
    /// Private interdomain links per canonical `(low ASN, high ASN)` pair.
    pub ext_links: BTreeMap<(Asn, Asn), Vec<ExtLink>>,
    /// IXP fabric port per `(ixp id, member ASN)`.
    pub ixp_ports: BTreeMap<(u32, Asn), (RouterId, IfaceId)>,
    /// Address → interface id (for destination-hits-router detection and
    /// alias ground truth).
    pub addr_to_iface: BTreeMap<u32, IfaceId>,
}

impl RouterTopology {
    /// Builds the router topology.
    pub fn generate(cfg: &GeneratorConfig, graph: &AsGraph, addr: &Addressing) -> RouterTopology {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA5A5_0003);
        let mut topo = RouterTopology {
            routers: Vec::new(),
            ifaces: Vec::new(),
            as_routers: BTreeMap::new(),
            internal_adj: Vec::new(),
            ext_links: BTreeMap::new(),
            ixp_ports: BTreeMap::new(),
            addr_to_iface: BTreeMap::new(),
        };
        let mut pools: BTreeMap<Asn, crate::addressing::AddrPool> = BTreeMap::new();
        let mut dark_pools: BTreeMap<Asn, crate::addressing::AddrPool> = BTreeMap::new();
        for node in graph.nodes.values() {
            pools.insert(node.asn, addr.infra_pool(node.asn));
            if let Some(dp) = addr.dark_pool(node.asn) {
                dark_pools.insert(node.asn, dp);
            }
        }

        // ---- routers and internal topology ----
        for node in graph.nodes.values() {
            let count = match node.tier {
                Tier::Clique => cfg.routers_clique,
                Tier::Transit => cfg.routers_transit,
                Tier::Access => cfg.routers_access,
                Tier::ResearchEducation => cfg.routers_re,
                Tier::Stub => cfg.routers_stub,
            }
            .max(1);
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                let id = RouterId(topo.routers.len() as u32);
                topo.routers.push(RouterInfo {
                    id,
                    owner: node.asn,
                    silent: rng.gen_bool(cfg.router_silent_prob),
                    egress_reply: rng.gen_bool(cfg.router_egress_reply_prob),
                    echo_offpath: rng.gen_bool(cfg.echo_offpath_prob),
                    ifaces: Vec::new(),
                });
                topo.internal_adj.push(Vec::new());
                ids.push(id);
            }
            // Router-id interface (loopback-style) for every router.
            for &rid in &ids {
                let pool = pools.get_mut(&node.asn).expect("pool exists");
                let a = pool.take();
                topo.add_iface(a, rid, None, LinkKind::Internal);
            }
            // Ring for connectivity.
            if ids.len() > 1 {
                for i in 0..ids.len() {
                    let j = (i + 1) % ids.len();
                    if ids.len() == 2 && j < i {
                        break; // avoid a duplicate link for 2-router rings
                    }
                    topo.add_internal_link(
                        ids[i],
                        ids[j],
                        node.asn,
                        &mut pools,
                        &mut dark_pools,
                        cfg,
                        &mut rng,
                    );
                }
                // Random chords.
                let chords = (ids.len() as f64 * cfg.internal_chord_factor) as usize;
                for _ in 0..chords {
                    let i = rng.gen_range(0..ids.len());
                    let j = rng.gen_range(0..ids.len());
                    if i != j {
                        topo.add_internal_link(
                            ids[i],
                            ids[j],
                            node.asn,
                            &mut pools,
                            &mut dark_pools,
                            cfg,
                            &mut rng,
                        );
                    }
                }
            }
            topo.as_routers.insert(node.asn, ids);
        }

        // ---- interdomain links ----
        for (a, b, rel) in graph.relationships.iter() {
            // IXP peerings are provisioned on the shared LAN below.
            if graph.ixp_for_pair(a, b).is_some() {
                continue;
            }
            // Addressing side: provider's space for transit (by industry
            // convention), lower-ASN side for private peering; flipped to
            // the customer with `customer_addressed_link_prob` (the §6.1.5
            // hidden-AS mechanism). Reallocated customers always number the
            // provider link from their /24 (the §6.1.2 scenario).
            use as_rel::Relationship;
            let (provider, customer) = match rel {
                Relationship::Provider => (a, b),
                Relationship::Customer => (b, a),
                Relationship::Peer => (a.min(b), a.max(b)),
            };
            let addr_side = if rel != Relationship::Peer {
                let realloc_link = addr
                    .realloc_for_customer(customer)
                    .is_some_and(|r| r.provider == provider);
                if realloc_link || rng.gen_bool(cfg.customer_addressed_link_prob) {
                    customer
                } else {
                    provider
                }
            } else {
                provider // lower ASN for peering
            };
            let n_links = 1 + rng.gen_range(0..cfg.max_parallel_links);
            let mut links = Vec::new();
            for _ in 0..n_links {
                let ra = topo.pick_border(a, &mut rng);
                let rb = topo.pick_border(b, &mut rng);
                let pool = pools.get_mut(&addr_side).expect("pool");
                let (addr_a, addr_b) = pool.take_p2p_pair();
                // Canonical order: side a of the ExtLink is the lower ASN.
                let ia = topo.add_iface(addr_a, ra, None, LinkKind::Interdomain);
                let ib = topo.add_iface(addr_b, rb, None, LinkKind::Interdomain);
                topo.ifaces[ia.0 as usize].neighbor = Some(ib);
                topo.ifaces[ib.0 as usize].neighbor = Some(ia);
                links.push(ExtLink {
                    router_a: ra,
                    iface_a: ia,
                    router_b: rb,
                    iface_b: ib,
                });
            }
            topo.ext_links.insert((a, b), links);
        }

        // ---- IXP ports ----
        for spec in &graph.ixps {
            let lan = addr
                .ixps
                .iter()
                .find(|i| i.id == spec.id)
                .expect("ixp lan allocated")
                .prefix;
            let mut lan_pool = crate::addressing::AddrPool::new(lan);
            // Skip network address for realism.
            lan_pool.take();
            for &member in &spec.members {
                let rid = topo.pick_border(member, &mut rng);
                let ifid = topo.add_iface(lan_pool.take(), rid, None, LinkKind::Ixp(spec.id));
                topo.ixp_ports.insert((spec.id, member), (rid, ifid));
            }
        }

        topo
    }

    fn add_iface(
        &mut self,
        addr: u32,
        router: RouterId,
        neighbor: Option<IfaceId>,
        kind: LinkKind,
    ) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(InterfaceInfo {
            id,
            addr,
            router,
            neighbor,
            kind,
        });
        self.routers[router.0 as usize].ifaces.push(id);
        self.addr_to_iface.insert(addr, id);
        id
    }

    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    fn add_internal_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        owner: Asn,
        pools: &mut BTreeMap<Asn, crate::addressing::AddrPool>,
        dark_pools: &mut BTreeMap<Asn, crate::addressing::AddrPool>,
        _cfg: &GeneratorConfig,
        rng: &mut ChaCha8Rng,
    ) {
        if self.internal_adj[a.0 as usize].contains(&b) {
            return;
        }
        // Dark-space ASes number roughly half their internal links from the
        // dark block (§6.1.1's unannounced-address chains need several
        // consecutive dark hops).
        let use_dark = dark_pools.contains_key(&owner) && rng.gen_bool(0.5);
        let pool = if use_dark {
            dark_pools.get_mut(&owner).expect("dark pool")
        } else {
            pools.get_mut(&owner).expect("pool")
        };
        let (addr_a, addr_b) = pool.take_p2p_pair();
        let ia = self.add_iface(addr_a, a, None, LinkKind::Internal);
        let ib = self.add_iface(addr_b, b, None, LinkKind::Internal);
        self.ifaces[ia.0 as usize].neighbor = Some(ib);
        self.ifaces[ib.0 as usize].neighbor = Some(ia);
        self.internal_adj[a.0 as usize].push(b);
        self.internal_adj[b.0 as usize].push(a);
    }

    fn pick_border(&self, asn: Asn, rng: &mut ChaCha8Rng) -> RouterId {
        let routers = &self.as_routers[&asn];
        routers[rng.gen_range(0..routers.len())]
    }

    /// The owner of a router.
    pub fn owner(&self, r: RouterId) -> Asn {
        self.routers[r.0 as usize].owner
    }

    /// Router lookup.
    pub fn router(&self, r: RouterId) -> &RouterInfo {
        &self.routers[r.0 as usize]
    }

    /// Interface lookup.
    pub fn iface(&self, i: IfaceId) -> &InterfaceInfo {
        &self.ifaces[i.0 as usize]
    }

    /// The interface carrying `addr`, if any.
    pub fn iface_by_addr(&self, addr: u32) -> Option<&InterfaceInfo> {
        self.addr_to_iface.get(&addr).map(|&i| self.iface(i))
    }

    /// Shortest internal path between two routers of the same AS (BFS over
    /// internal links). Returns the router sequence including both ends.
    pub fn internal_path(&self, from: RouterId, to: RouterId) -> Option<Vec<RouterId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<RouterId, RouterId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        prev.insert(from, from);
        while let Some(cur) = queue.pop_front() {
            let mut neighbors = self.internal_adj[cur.0 as usize].clone();
            neighbors.sort_unstable();
            for n in neighbors {
                if let std::collections::btree_map::Entry::Vacant(e) = prev.entry(n) {
                    e.insert(cur);
                    if n == to {
                        let mut path = vec![to];
                        let mut c = to;
                        while c != from {
                            c = prev[&c];
                            path.push(c);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// The internal interface on `from` facing the first hop toward `to`
    /// (used for egress-reply behaviour).
    pub fn internal_iface_toward(&self, from: RouterId, to: RouterId) -> Option<IfaceId> {
        let path = self.internal_path(from, to)?;
        let next = *path.get(1)?;
        self.routers[from.0 as usize]
            .ifaces
            .iter()
            .copied()
            .find(|&i| {
                let info = self.iface(i);
                info.neighbor.is_some_and(|n| self.iface(n).router == next)
            })
    }

    /// Fails the internal link between `a` and `b`: removes the adjacency so
    /// forwarding routes around it. The link's interfaces stay registered —
    /// a failed link's addresses still answer pings, they just carry no
    /// transit traffic — so a later [`restore_internal_link`] re-enables the
    /// same addresses. Returns `false` (and changes nothing) when no such
    /// adjacency exists or removing it would disconnect the AS's internal
    /// topology, which `internal_path` callers assume never happens.
    ///
    /// [`restore_internal_link`]: RouterTopology::restore_internal_link
    pub fn fail_internal_link(&mut self, a: RouterId, b: RouterId) -> bool {
        if a == b || !self.internal_adj[a.0 as usize].contains(&b) {
            return false;
        }
        // Connectivity guard: with the edge masked, BFS from `a` must still
        // reach `b` some other way.
        let mut seen = std::collections::BTreeSet::from([a]);
        let mut queue = std::collections::VecDeque::from([a]);
        let mut reachable = false;
        'bfs: while let Some(cur) = queue.pop_front() {
            for &n in &self.internal_adj[cur.0 as usize] {
                if cur == a && n == b {
                    continue; // the failing edge itself
                }
                if n == b {
                    reachable = true;
                    break 'bfs;
                }
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        if !reachable {
            return false;
        }
        self.internal_adj[a.0 as usize].retain(|&r| r != b);
        self.internal_adj[b.0 as usize].retain(|&r| r != a);
        true
    }

    /// Restores a previously failed internal link by re-adding the adjacency.
    /// Returns `false` when the adjacency already exists, the routers belong
    /// to different ASes, or they never shared a link (no interface pair to
    /// re-enable). Adjacency-list order does not matter: `internal_path`
    /// sorts neighbors at every step.
    pub fn restore_internal_link(&mut self, a: RouterId, b: RouterId) -> bool {
        if a == b
            || self.internal_adj[a.0 as usize].contains(&b)
            || self.routers[a.0 as usize].owner != self.routers[b.0 as usize].owner
        {
            return false;
        }
        let linked = self.routers[a.0 as usize].ifaces.iter().any(|&i| {
            self.ifaces[i.0 as usize]
                .neighbor
                .is_some_and(|n| self.iface(n).router == b)
        });
        if !linked {
            return false;
        }
        self.internal_adj[a.0 as usize].push(b);
        self.internal_adj[b.0 as usize].push(a);
        true
    }

    /// Adds a new router to `owner`, attached to `attach` (an existing
    /// router of the same AS) by a fresh point-to-point link.
    /// `addrs = [router-id address, link address on the new router, link
    /// address on attach]`; the caller carves them from the AS's
    /// infrastructure region (see `dynamics::carve_router_addrs`). Response
    /// behaviour flags are all false, so the new router's behaviour does not
    /// depend on when it appears. Returns the new router's id.
    ///
    /// # Panics
    ///
    /// When `attach` is not owned by `owner` or an address is already in use.
    pub fn add_router(&mut self, owner: Asn, attach: RouterId, addrs: [u32; 3]) -> RouterId {
        assert_eq!(
            self.routers[attach.0 as usize].owner, owner,
            "attach router belongs to the owner AS"
        );
        for a in addrs {
            assert!(
                !self.addr_to_iface.contains_key(&a),
                "router address {a:#010x} already in use"
            );
        }
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(RouterInfo {
            id,
            owner,
            silent: false,
            egress_reply: false,
            echo_offpath: false,
            ifaces: Vec::new(),
        });
        self.internal_adj.push(Vec::new());
        // Router-id (loopback-style) interface first: `ifaces[0]` is the
        // reply-source fallback, like every generated router.
        self.add_iface(addrs[0], id, None, LinkKind::Internal);
        let ia = self.add_iface(addrs[1], id, None, LinkKind::Internal);
        let ib = self.add_iface(addrs[2], attach, None, LinkKind::Internal);
        self.ifaces[ia.0 as usize].neighbor = Some(ib);
        self.ifaces[ib.0 as usize].neighbor = Some(ia);
        self.internal_adj[id.0 as usize].push(attach);
        self.internal_adj[attach.0 as usize].push(id);
        self.as_routers
            .get_mut(&owner)
            .expect("owner AS has a router list")
            .push(id);
        id
    }

    /// Ground-truth interdomain links at router granularity, including IXP
    /// peerings.
    pub fn true_links(&self, graph: &AsGraph) -> Vec<TrueLink> {
        let mut out = Vec::new();
        for (&(a, b), links) in &self.ext_links {
            for l in links {
                out.push(TrueLink {
                    router_a: l.router_a,
                    as_a: a,
                    router_b: l.router_b,
                    as_b: b,
                    addr_a: self.iface(l.iface_a).addr,
                    addr_b: self.iface(l.iface_b).addr,
                });
            }
        }
        for &(a, b, ixp) in &graph.ixp_peerings {
            let (Some(&(ra, ia)), Some(&(rb, ib))) =
                (self.ixp_ports.get(&(ixp, a)), self.ixp_ports.get(&(ixp, b)))
            else {
                continue;
            };
            out.push(TrueLink {
                router_a: ra,
                as_a: a,
                router_b: rb,
                as_b: b,
                addr_a: self.iface(ia).addr,
                addr_b: self.iface(ib).addr,
            });
        }
        out
    }

    /// Total router count.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Total interface count.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seed: u64) -> (GeneratorConfig, AsGraph, Addressing, RouterTopology) {
        let cfg = GeneratorConfig::tiny(seed);
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        let topo = RouterTopology::generate(&cfg, &graph, &addr);
        (cfg, graph, addr, topo)
    }

    #[test]
    fn every_as_has_routers() {
        let (_, graph, _, topo) = build(1);
        for node in graph.nodes.values() {
            let routers = &topo.as_routers[&node.asn];
            assert!(!routers.is_empty());
            for &r in routers {
                assert_eq!(topo.owner(r), node.asn);
            }
        }
    }

    #[test]
    fn interfaces_consistent() {
        let (_, _, _, topo) = build(2);
        for (idx, iface) in topo.ifaces.iter().enumerate() {
            assert_eq!(iface.id.0 as usize, idx);
            assert!(topo.routers[iface.router.0 as usize]
                .ifaces
                .contains(&iface.id));
            if let Some(n) = iface.neighbor {
                assert_eq!(topo.iface(n).neighbor, Some(iface.id), "link symmetry");
            }
            assert_eq!(topo.addr_to_iface[&iface.addr], iface.id);
        }
    }

    #[test]
    fn addresses_unique() {
        let (_, _, _, topo) = build(3);
        assert_eq!(topo.addr_to_iface.len(), topo.ifaces.len());
    }

    #[test]
    fn internal_connectivity() {
        let (_, graph, _, topo) = build(4);
        for node in graph.nodes.values() {
            let routers = &topo.as_routers[&node.asn];
            let first = routers[0];
            for &r in routers.iter().skip(1) {
                assert!(
                    topo.internal_path(first, r).is_some(),
                    "{} disconnected inside {}",
                    r.0,
                    node.asn
                );
            }
        }
    }

    #[test]
    fn internal_path_is_shortest_on_ring() {
        let (_, _, _, topo) = build(5);
        // Trivial sanity: path from a router to itself.
        let r = topo.routers[0].id;
        assert_eq!(topo.internal_path(r, r), Some(vec![r]));
    }

    #[test]
    fn every_private_relationship_has_links() {
        let (_, graph, _, topo) = build(6);
        for (a, b, _) in graph.relationships.iter() {
            if graph.ixp_for_pair(a, b).is_some() {
                let found = graph
                    .ixp_peerings
                    .iter()
                    .any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b)));
                assert!(found);
                continue;
            }
            let links = &topo.ext_links[&(a, b)];
            assert!(!links.is_empty());
            for l in links {
                assert_eq!(topo.owner(l.router_a), a);
                assert_eq!(topo.owner(l.router_b), b);
            }
        }
    }

    #[test]
    fn transit_links_numbered_from_provider_space_by_default() {
        let cfg = GeneratorConfig {
            customer_addressed_link_prob: 0.0,
            realloc_prob: 0.0,
            ..GeneratorConfig::tiny(7)
        };
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        let topo = RouterTopology::generate(&cfg, &graph, &addr);
        use as_rel::Relationship;
        for (a, b, rel) in graph.relationships.iter() {
            if graph.ixp_for_pair(a, b).is_some() || rel == Relationship::Peer {
                continue;
            }
            let provider = if rel == Relationship::Provider { a } else { b };
            for l in &topo.ext_links[&(a, b)] {
                let block = addr.blocks[&provider];
                assert!(
                    block.contains(topo.iface(l.iface_a).addr),
                    "link not from provider space"
                );
                assert!(block.contains(topo.iface(l.iface_b).addr));
            }
        }
    }

    #[test]
    fn realloc_links_numbered_from_realloc_prefix() {
        let cfg = GeneratorConfig {
            realloc_prob: 1.0,
            stub_multihome_prob: 1.0,
            customer_addressed_link_prob: 0.0,
            ..GeneratorConfig::tiny(8)
        };
        let graph = AsGraph::generate(&cfg);
        let addr = Addressing::generate(&cfg, &graph);
        let topo = RouterTopology::generate(&cfg, &graph, &addr);
        assert!(!addr.reallocs.is_empty());
        for r in &addr.reallocs {
            let key = (r.provider.min(r.customer), r.provider.max(r.customer));
            for l in &topo.ext_links[&key] {
                assert!(
                    r.prefix.contains(topo.iface(l.iface_a).addr),
                    "realloc link must use the reallocated /24"
                );
                assert!(r.prefix.contains(topo.iface(l.iface_b).addr));
            }
        }
    }

    #[test]
    fn ixp_ports_on_lan() {
        let (_, graph, addr, topo) = build(9);
        for spec in &graph.ixps {
            let lan = addr.ixps.iter().find(|i| i.id == spec.id).unwrap().prefix;
            for &member in &spec.members {
                let &(rid, ifid) = topo.ixp_ports.get(&(spec.id, member)).unwrap();
                assert_eq!(topo.owner(rid), member);
                assert!(lan.contains(topo.iface(ifid).addr));
                assert_eq!(topo.iface(ifid).kind, LinkKind::Ixp(spec.id));
            }
        }
    }

    #[test]
    fn true_links_cover_relationships() {
        let (_, graph, _, topo) = build(10);
        let links = topo.true_links(&graph);
        assert!(!links.is_empty());
        for l in &links {
            assert_eq!(topo.owner(l.router_a), l.as_a);
            assert_eq!(topo.owner(l.router_b), l.as_b);
            assert_ne!(l.as_a, l.as_b);
        }
    }

    #[test]
    fn deterministic() {
        let (_, _, _, t1) = build(11);
        let (_, _, _, t2) = build(11);
        assert_eq!(t1.router_count(), t2.router_count());
        assert_eq!(t1.iface_count(), t2.iface_count());
        assert_eq!(
            serde_json::to_string(&t1.ifaces).unwrap(),
            serde_json::to_string(&t2.ifaces).unwrap()
        );
    }
}
