//! AS-level graph generation: tiers, relationships, IXP fabrics.

use crate::{GeneratorConfig, Tier};
use as_rel::AsRelationships;
use net_types::Asn;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One AS in the synthetic Internet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy role.
    pub tier: Tier,
    /// Stub ASes only: drops all externally-sourced traceroute probes at its
    /// border (paper §5's motivating case).
    pub firewalled: bool,
    /// For firewalled ASes: whether the border router itself still answers
    /// (it filters what is *behind* it), or the filter drops at the border
    /// so the provider's router becomes the last visible hop. Both shapes
    /// appear in §5's motivation.
    pub firewall_border_responds: bool,
}

/// An IXP before addressing: identity and membership.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IxpSpec {
    /// Directory id.
    pub id: u32,
    /// Members with a fabric port.
    pub members: Vec<Asn>,
}

/// The generated AS-level topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsGraph {
    /// All ASes, keyed by ASN.
    pub nodes: BTreeMap<Asn, AsNode>,
    /// Ground-truth business relationships (includes IXP peerings).
    pub relationships: AsRelationships,
    /// IXPs and their membership.
    pub ixps: Vec<IxpSpec>,
    /// Peerings established over an IXP fabric: `(a, b, ixp id)`. These AS
    /// pairs interconnect through the shared LAN instead of a private link.
    pub ixp_peerings: Vec<(Asn, Asn, u32)>,
}

/// ASN numbering scheme: readable, collision-free ranges per tier.
pub fn asn_for(tier: Tier, index: usize) -> Asn {
    let base = match tier {
        Tier::Clique => 100,
        Tier::Transit => 1_000,
        Tier::Access => 2_000,
        Tier::ResearchEducation => 3_000,
        Tier::Stub => 10_000,
    };
    Asn(base + index as u32)
}

impl AsGraph {
    /// Generates the AS graph from a config. Deterministic in the seed.
    pub fn generate(cfg: &GeneratorConfig) -> AsGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xA5A5_0001);
        let mut nodes: BTreeMap<Asn, AsNode> = BTreeMap::new();
        let mut rels = AsRelationships::new();

        let mut tier_members: BTreeMap<Tier, Vec<Asn>> = BTreeMap::new();
        let tier_counts = [
            (Tier::Clique, cfg.clique_size),
            (Tier::Transit, cfg.transit_count),
            (Tier::Access, cfg.access_count),
            (Tier::ResearchEducation, cfg.re_count),
            (Tier::Stub, cfg.stub_count),
        ];
        for (tier, count) in tier_counts {
            for i in 0..count {
                let asn = asn_for(tier, i);
                let firewalled = tier == Tier::Stub && rng.gen_bool(cfg.stub_firewall_prob);
                let firewall_border_responds = firewalled && rng.gen_bool(0.5);
                nodes.insert(
                    asn,
                    AsNode {
                        asn,
                        tier,
                        firewalled,
                        firewall_border_responds,
                    },
                );
                tier_members.entry(tier).or_default().push(asn);
            }
        }
        let clique = tier_members.get(&Tier::Clique).cloned().unwrap_or_default();
        let transits = tier_members
            .get(&Tier::Transit)
            .cloned()
            .unwrap_or_default();
        let accesses = tier_members.get(&Tier::Access).cloned().unwrap_or_default();
        let res = tier_members
            .get(&Tier::ResearchEducation)
            .cloned()
            .unwrap_or_default();
        let stubs = tier_members.get(&Tier::Stub).cloned().unwrap_or_default();

        // Tier-1 clique: full peering mesh.
        for (i, &a) in clique.iter().enumerate() {
            for &b in clique.iter().skip(i + 1) {
                rels.add_p2p(a, b);
            }
        }

        // Transit: 2–3 clique providers (tier-1s sell transit to every large
        // network — this is what puts them at the top of the transit-degree
        // ranking, the property clique inference keys on); lateral peering
        // with probability.
        for &t in &transits {
            for &p in &pick_distinct(&clique, 3.min(clique.len()), &mut rng) {
                rels.add_p2c(p, t);
            }
        }
        for (i, &a) in transits.iter().enumerate() {
            for &b in transits.iter().skip(i + 1) {
                if rng.gen_bool(cfg.transit_peering_prob) {
                    rels.add_p2p(a, b);
                }
            }
        }

        // Access: providers drawn from transit and, for a sizable share,
        // directly from the clique (large eyeballs buy from tier-1s).
        for &a in &accesses {
            let n_providers = 1 + rng.gen_range(0..=1);
            for _ in 0..n_providers {
                let provider = if rng.gen_bool(0.5) {
                    *choose(&clique, &mut rng)
                } else {
                    *choose(&transits, &mut rng)
                };
                rels.add_p2c(provider, a);
            }
        }

        // R&E: transit or tier-1 providers, plus a peering mesh among
        // themselves (national R&E backbones typically interconnect).
        for &r in &res {
            let n_providers = 1 + rng.gen_range(0..=1);
            for _ in 0..n_providers {
                let provider = if rng.gen_bool(0.3) {
                    *choose(&clique, &mut rng)
                } else {
                    *choose(&transits, &mut rng)
                };
                rels.add_p2c(provider, r);
            }
        }
        for (i, &a) in res.iter().enumerate() {
            for &b in res.iter().skip(i + 1) {
                if rng.gen_bool(0.4) {
                    rels.add_p2p(a, b);
                }
            }
        }

        // Stubs: one provider from access ∪ transit ∪ R&E ∪ clique (plenty
        // of enterprises buy directly from tier-1s); multihomed with
        // probability (the §6.1.3 multihomed-customer exception needs these).
        let mut stub_provider_pool: Vec<Asn> = Vec::new();
        stub_provider_pool.extend(&accesses);
        stub_provider_pool.extend(&transits);
        stub_provider_pool.extend(&res);
        stub_provider_pool.extend(&clique);
        for &s in &stubs {
            let primary = *choose(&stub_provider_pool, &mut rng);
            rels.add_p2c(primary, s);
            if rng.gen_bool(cfg.stub_multihome_prob) {
                // A second, distinct provider.
                for _ in 0..8 {
                    let second = *choose(&stub_provider_pool, &mut rng);
                    if second != primary {
                        rels.add_p2c(second, s);
                        break;
                    }
                }
            }
        }

        // IXPs: membership from transit/access/R&E; new peerings across the
        // fabric between members with no existing relationship.
        let mut ixps = Vec::new();
        let mut ixp_peerings = Vec::new();
        let mut member_pool: Vec<Asn> = Vec::new();
        member_pool.extend(&transits);
        member_pool.extend(&accesses);
        member_pool.extend(&res);
        for ixp_id in 0..cfg.ixp_count as u32 {
            let mut members: Vec<Asn> = member_pool
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(cfg.ixp_join_prob))
                .collect();
            members.sort_unstable();
            members.dedup();
            if members.len() < 2 {
                // Ensure every IXP has at least two members.
                members = pick_distinct(&member_pool, 2.min(member_pool.len()), &mut rng);
                members.sort_unstable();
            }
            for (i, &a) in members.iter().enumerate() {
                for &b in members.iter().skip(i + 1) {
                    if !rels.has_relationship(a, b) && rng.gen_bool(0.25) {
                        rels.add_p2p(a, b);
                        ixp_peerings.push((a, b, ixp_id));
                    }
                }
            }
            ixps.push(IxpSpec {
                id: ixp_id,
                members,
            });
        }

        AsGraph {
            nodes,
            relationships: rels,
            ixps,
            ixp_peerings,
        }
    }

    /// All ASNs of a tier, ascending.
    pub fn tier_members(&self, tier: Tier) -> Vec<Asn> {
        self.nodes
            .values()
            .filter(|n| n.tier == tier)
            .map(|n| n.asn)
            .collect()
    }

    /// Total AS count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Lookup one AS.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.nodes.get(&asn)
    }

    /// Does the AS pair interconnect over an IXP fabric (rather than a
    /// private link)?
    pub fn ixp_for_pair(&self, a: Asn, b: Asn) -> Option<u32> {
        let (lo, hi) = (a.min(b), a.max(b));
        self.ixp_peerings
            .iter()
            .find(|&&(x, y, _)| x == lo && y == hi)
            .map(|&(_, _, id)| id)
    }
}

fn choose<'a, T>(slice: &'a [T], rng: &mut ChaCha8Rng) -> &'a T {
    slice.choose(rng).expect("non-empty pool")
}

fn pick_distinct(pool: &[Asn], n: usize, rng: &mut ChaCha8Rng) -> Vec<Asn> {
    let mut picked: Vec<Asn> = pool.choose_multiple(rng, n).copied().collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_rel::{valley_free, CustomerCones};

    #[test]
    fn deterministic() {
        let cfg = GeneratorConfig::tiny(42);
        let g1 = AsGraph::generate(&cfg);
        let g2 = AsGraph::generate(&cfg);
        assert_eq!(g1.relationships.len(), g2.relationships.len());
        assert_eq!(
            serde_json::to_string(&g1.ixps).unwrap(),
            serde_json::to_string(&g2.ixps).unwrap()
        );
        // A different seed should change something.
        let g3 = AsGraph::generate(&GeneratorConfig::tiny(43));
        assert!(
            g1.relationships.to_serial1() != g3.relationships.to_serial1()
                || g1.ixp_peerings != g3.ixp_peerings
        );
    }

    #[test]
    fn tier_counts_respected() {
        let cfg = GeneratorConfig::tiny(7);
        let g = AsGraph::generate(&cfg);
        assert_eq!(g.len(), cfg.as_count());
        assert_eq!(g.tier_members(Tier::Clique).len(), cfg.clique_size);
        assert_eq!(g.tier_members(Tier::Stub).len(), cfg.stub_count);
    }

    #[test]
    fn clique_is_full_mesh() {
        let g = AsGraph::generate(&GeneratorConfig::tiny(7));
        let clique = g.tier_members(Tier::Clique);
        for (i, &a) in clique.iter().enumerate() {
            for &b in clique.iter().skip(i + 1) {
                assert!(g.relationships.is_peer(a, b), "{a} and {b} must peer");
            }
        }
    }

    #[test]
    fn every_non_clique_as_has_a_provider() {
        let g = AsGraph::generate(&GeneratorConfig::tiny(7));
        for node in g.nodes.values() {
            if node.tier != Tier::Clique {
                assert!(
                    g.relationships.providers_of(node.asn).next().is_some(),
                    "{} ({:?}) has no provider",
                    node.asn,
                    node.tier
                );
            } else {
                assert_eq!(g.relationships.providers_of(node.asn).count(), 0);
            }
        }
    }

    #[test]
    fn hierarchy_reaches_clique() {
        // Every AS must have a valley-free path to the clique: climb
        // providers greedily and confirm arrival.
        let g = AsGraph::generate(&GeneratorConfig::tiny(9));
        let clique = g.tier_members(Tier::Clique);
        for node in g.nodes.values() {
            let mut cur = node.asn;
            let mut hops = 0;
            while !clique.contains(&cur) {
                let Some(p) = g.relationships.providers_of(cur).next() else {
                    panic!("{cur} stranded below the clique");
                };
                cur = p;
                hops += 1;
                assert!(hops < 10, "provider chain too deep at {}", node.asn);
            }
        }
    }

    #[test]
    fn up_peer_down_paths_are_valley_free() {
        let g = AsGraph::generate(&GeneratorConfig::tiny(5));
        let clique = g.tier_members(Tier::Clique);
        // A canonical up-peer-down path across two clique members.
        let stub = g.tier_members(Tier::Stub)[0];
        let p1 = g.relationships.providers_of(stub).next().unwrap();
        let mut up = vec![stub, p1];
        let mut cur = p1;
        while !clique.contains(&cur) {
            cur = g.relationships.providers_of(cur).next().unwrap();
            up.push(cur);
        }
        let other = clique.iter().copied().find(|&c| c != cur).unwrap();
        up.push(other);
        assert!(valley_free(&g.relationships, &up));
    }

    #[test]
    fn ixps_have_members_and_peerings_recorded() {
        let g = AsGraph::generate(&GeneratorConfig::tiny(11));
        assert_eq!(g.ixps.len(), 2);
        for ixp in &g.ixps {
            assert!(ixp.members.len() >= 2);
        }
        for &(a, b, id) in &g.ixp_peerings {
            assert!(g.relationships.is_peer(a, b));
            assert_eq!(g.ixp_for_pair(a, b), Some(id));
            assert_eq!(g.ixp_for_pair(b, a), Some(id));
        }
    }

    #[test]
    fn cones_are_sane() {
        let g = AsGraph::generate(&GeneratorConfig::tiny(13));
        let cones = CustomerCones::compute(&g.relationships);
        // Stubs have the smallest cones.
        for s in g.tier_members(Tier::Stub) {
            assert_eq!(cones.size(s), 1);
        }
        // Clique cones dominate stub cones.
        let max_clique_cone = g
            .tier_members(Tier::Clique)
            .into_iter()
            .map(|a| cones.size(a))
            .max()
            .unwrap();
        assert!(max_clique_cone > 10);
    }
}
