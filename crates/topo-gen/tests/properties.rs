//! Property tests on the synthetic Internet: across random seeds, the
//! generated forwarding plane must uphold BGP's structural guarantees.

use as_rel::valley_free;
use net_types::Asn;
use proptest::prelude::*;
use topo_gen::{ForwardOutcome, GeneratorConfig, Internet, Tier};

fn net_for(seed: u64) -> Internet {
    Internet::generate(GeneratorConfig::tiny(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_seed_generates_a_sound_internet(seed in 0u64..10_000) {
        let net = net_for(seed);
        // Structural soundness.
        prop_assert_eq!(net.graph.len(), net.cfg.as_count());
        prop_assert!(net.topology.router_count() > 0);
        // Unique addresses.
        prop_assert_eq!(net.topology.addr_to_iface.len(), net.topology.iface_count());
        // Every non-clique AS reaches the clique through providers.
        let clique = net.graph.tier_members(Tier::Clique);
        for node in net.graph.nodes.values() {
            if node.tier == Tier::Clique {
                continue;
            }
            let mut cur = node.asn;
            for _ in 0..12 {
                if clique.contains(&cur) {
                    break;
                }
                cur = net
                    .graph
                    .relationships
                    .providers_of(cur)
                    .next()
                    .expect("provider chain");
            }
            prop_assert!(clique.contains(&cur), "{} stranded", node.asn);
        }
    }

    #[test]
    fn forwarding_is_total_and_valley_free(
        seed in 0u64..1_000,
        src_pick in 0usize..1_000,
        dst_pick in 0usize..1_000,
        host in 1u32..250,
    ) {
        let net = net_for(seed);
        let routers: Vec<_> = net.topology.routers.iter().map(|r| r.id).collect();
        let src = routers[src_pick % routers.len()];
        let ases: Vec<Asn> = net.graph.nodes.keys().copied().collect();
        let dst_as = ases[dst_pick % ases.len()];
        let dst = net.addressing.host_region(dst_as).addr() + host;

        let fwd = net.forward_path(src, dst);
        match fwd.outcome {
            ForwardOutcome::NoRoute => {
                // Host space of an announced block is always routable.
                prop_assert!(false, "announced host space unroutable");
            }
            _ => {
                // Hop contiguity: each ingress interface links back to the
                // previous hop's router.
                for w in fwd.hops.windows(2) {
                    let ingress = w[1].ingress.expect("non-first hop has ingress");
                    let info = net.topology.iface(ingress);
                    prop_assert_eq!(info.router, w[1].router);
                    if let Some(n) = info.neighbor {
                        prop_assert_eq!(net.topology.iface(n).router, w[0].router);
                    }
                }
                // The AS-level projection is valley-free.
                let mut as_seq: Vec<Asn> = Vec::new();
                for h in &fwd.hops {
                    let owner = net.topology.owner(h.router);
                    if as_seq.last() != Some(&owner) {
                        as_seq.push(owner);
                    }
                }
                prop_assert!(
                    valley_free(&net.graph.relationships, &as_seq),
                    "valley in {as_seq:?}"
                );
                prop_assert_eq!(*as_seq.last().unwrap(), dst_as);
            }
        }
    }

    #[test]
    fn collector_rib_paths_match_routing(seed in 0u64..1_000) {
        let net = net_for(seed);
        let rib = net.build_rib();
        for ann in rib.iter().take(200) {
            // Each archived path is loop-free and ends at the origin.
            bgp::Announcement::validate_path(&ann.as_path).expect("valid path");
            // And the path is valley-free under ground-truth relationships.
            prop_assert!(
                valley_free(&net.graph.relationships, &ann.collapsed_path()),
                "collector archived a valley"
            );
        }
    }

    #[test]
    fn relationship_inference_agrees_with_truth(seed in 0u64..1_000) {
        let net = net_for(seed);
        let rib = net.build_rib();
        let inferred = as_rel::infer::infer_relationships(
            &rib.collapsed_paths(),
            &as_rel::infer::InferenceConfig::default(),
        );
        let (agree, common) = as_rel::infer::agreement(&inferred, &net.graph.relationships);
        prop_assert!(common > 0);
        // At default scale the inference agrees with ground truth at
        // 0.95–0.997 (the literature reports ~90–95% for production
        // algorithms); the tiny topology used here is evidence-starved
        // (8 collector peers, 3-member clique), so the floor is lower.
        let ratio = agree as f64 / common as f64;
        prop_assert!(ratio > 0.75, "inference agreement {ratio:.3} too low");
    }
}
