//! BGP announcements as archived by a route collector.

use net_types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when validating an AS path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The AS path was empty.
    Empty,
    /// The AS path contained a routing loop (a non-adjacent repeat).
    Loop(Asn),
    /// The AS path contained the AS0 sentinel.
    ZeroAsn,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty AS path"),
            PathError::Loop(a) => write!(f, "AS path loop through {a}"),
            PathError::ZeroAsn => write!(f, "AS0 in AS path"),
        }
    }
}

impl std::error::Error for PathError {}

/// A single prefix announcement observed by a collector peer.
///
/// `as_path[0]` is the collector's peer AS; the last element is the origin
/// AS — exactly the convention the paper uses ("we determine the origin AS
/// as the last AS in the AS path", §4.1). Prepending is preserved, so paths
/// may contain adjacent duplicates.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The AS path as recorded (collector peer first, origin last).
    pub as_path: Vec<Asn>,
}

impl Announcement {
    /// Creates an announcement after validating the path.
    pub fn new(prefix: Prefix, as_path: Vec<Asn>) -> Result<Self, PathError> {
        Self::validate_path(&as_path)?;
        Ok(Announcement { prefix, as_path })
    }

    /// The origin AS (last element of the AS path).
    pub fn origin(&self) -> Asn {
        *self.as_path.last().expect("validated non-empty path")
    }

    /// The collector peer AS (first element of the AS path).
    pub fn peer(&self) -> Asn {
        self.as_path[0]
    }

    /// The AS path with adjacent prepending collapsed.
    pub fn collapsed_path(&self) -> Vec<Asn> {
        collapse_prepending(&self.as_path)
    }

    /// Validates an AS path: non-empty, no AS0, and no non-adjacent repeats
    /// (adjacent repeats are legitimate prepending).
    pub fn validate_path(path: &[Asn]) -> Result<(), PathError> {
        if path.is_empty() {
            return Err(PathError::Empty);
        }
        let collapsed = collapse_prepending(path);
        for (i, a) in collapsed.iter().enumerate() {
            if a.is_none() {
                return Err(PathError::ZeroAsn);
            }
            if collapsed[..i].contains(a) {
                return Err(PathError::Loop(*a));
            }
        }
        Ok(())
    }
}

/// Collapses adjacent duplicates (AS-path prepending) out of a path.
pub fn collapse_prepending(path: &[Asn]) -> Vec<Asn> {
    let mut out: Vec<Asn> = Vec::with_capacity(path.len());
    for &a in path {
        if out.last() != Some(&a) {
            out.push(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn path(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn origin_and_peer() {
        let a = Announcement::new(p("10.0.0.0/8"), path(&[1, 2, 3])).unwrap();
        assert_eq!(a.peer(), Asn(1));
        assert_eq!(a.origin(), Asn(3));
    }

    #[test]
    fn prepending_is_legal_and_collapses() {
        let a = Announcement::new(p("10.0.0.0/8"), path(&[1, 2, 2, 2, 3])).unwrap();
        assert_eq!(a.collapsed_path(), path(&[1, 2, 3]));
        assert_eq!(a.origin(), Asn(3));
    }

    #[test]
    fn rejects_bad_paths() {
        assert_eq!(
            Announcement::new(p("10.0.0.0/8"), vec![]).unwrap_err(),
            PathError::Empty
        );
        assert_eq!(
            Announcement::new(p("10.0.0.0/8"), path(&[1, 2, 1])).unwrap_err(),
            PathError::Loop(Asn(1))
        );
        assert_eq!(
            Announcement::new(p("10.0.0.0/8"), path(&[1, 0, 2])).unwrap_err(),
            PathError::ZeroAsn
        );
    }

    #[test]
    fn serde_roundtrip() {
        let a = Announcement::new(p("192.0.2.0/24"), path(&[10, 20, 30])).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Announcement = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
