//! The combined IP→origin-AS oracle (paper §4.1).
//!
//! Lookup order matches the paper exactly:
//!
//! 1. **IXP prefixes** are checked first and flagged: "some ASes originate
//!    IXP prefixes in BGP, which could cause unrelated ASes to be included
//!    in an origin AS set", so IXP coverage must shadow BGP origins.
//! 2. **BGP announcements**: longest matching announced prefix, origin =
//!    last AS in the path.
//! 3. **RIR delegations**, but "only ... the prefixes from RIR delegations
//!    not already covered by a BGP prefix" — staleness protection.
//! 4. Anything else is *unannounced* ([`OriginKind::Unannounced`]).

use crate::ixp::IxpDirectory;
use crate::rir::DelegationTable;
use crate::Rib;
use net_types::{Asn, Prefix, PrefixTrie};

/// Which data source resolved an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OriginKind {
    /// Covered by an IXP peering LAN; origin votes must be suppressed.
    Ixp,
    /// Longest matching BGP prefix.
    Bgp,
    /// RIR delegation not covered by any BGP prefix.
    Rir,
    /// No matching prefix anywhere.
    Unannounced,
}

/// The result of resolving one address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OriginInfo {
    /// The origin AS ([`Asn::NONE`] for IXP and unannounced addresses).
    pub asn: Asn,
    /// Which source matched.
    pub kind: OriginKind,
    /// The matching prefix (`None` only for unannounced addresses).
    pub prefix: Option<Prefix>,
}

impl OriginInfo {
    /// The unannounced result.
    pub const UNANNOUNCED: OriginInfo = OriginInfo {
        asn: Asn::NONE,
        kind: OriginKind::Unannounced,
        prefix: None,
    };
}

/// The combined longest-prefix-match oracle consumed by the inference
/// algorithms.
#[derive(Clone, Debug, Default)]
pub struct IpToAs {
    bgp: PrefixTrie<Asn>,
    rir: PrefixTrie<Asn>,
    ixp: PrefixTrie<u32>,
}

impl IpToAs {
    /// Builds the oracle from the three paper inputs.
    ///
    /// RIR prefixes already covered by (equal to or contained in) a BGP
    /// prefix are dropped here, implementing the paper's staleness rule.
    pub fn build(rib: &Rib, delegations: &DelegationTable, ixps: &IxpDirectory) -> Self {
        let mut bgp = PrefixTrie::new();
        for (prefix, origin) in rib.origin_table() {
            bgp.insert(prefix, origin);
        }
        let joined = delegations.join();
        let mut rir = PrefixTrie::new();
        for (prefix, &asn) in joined.iter() {
            // Covered by BGP at or above this prefix → stale risk → skip.
            if bgp
                .longest_match(prefix.addr())
                .is_some_and(|(p, _)| p.covers(prefix))
            {
                continue;
            }
            rir.insert(prefix, asn);
        }
        let ixp = ixps.iter().map(|i| (i.prefix, i.id)).collect();
        IpToAs { bgp, rir, ixp }
    }

    /// Builds an oracle from raw `(prefix, origin)` pairs — useful in tests
    /// and when replaying CAIDA-style `prefix2as` files.
    pub fn from_pairs<I: IntoIterator<Item = (Prefix, Asn)>>(pairs: I) -> Self {
        IpToAs {
            bgp: pairs.into_iter().collect(),
            rir: PrefixTrie::new(),
            ixp: PrefixTrie::new(),
        }
    }

    /// Adds IXP prefixes to an oracle built with [`IpToAs::from_pairs`].
    pub fn with_ixps(mut self, ixps: &IxpDirectory) -> Self {
        self.ixp = ixps.iter().map(|i| (i.prefix, i.id)).collect();
        self
    }

    /// Adds RIR-fallback prefixes to an oracle built with
    /// [`IpToAs::from_pairs`]. The caller is responsible for the staleness
    /// filtering [`IpToAs::build`] would otherwise apply.
    pub fn with_rir<I: IntoIterator<Item = (Prefix, Asn)>>(mut self, pairs: I) -> Self {
        self.rir = pairs.into_iter().collect();
        self
    }

    /// Resolves one address.
    pub fn lookup(&self, addr: u32) -> OriginInfo {
        if let Some((prefix, _)) = self.ixp.longest_match(addr) {
            return OriginInfo {
                asn: Asn::NONE,
                kind: OriginKind::Ixp,
                prefix: Some(prefix),
            };
        }
        if let Some((prefix, &asn)) = self.bgp.longest_match(addr) {
            return OriginInfo {
                asn,
                kind: OriginKind::Bgp,
                prefix: Some(prefix),
            };
        }
        if let Some((prefix, &asn)) = self.rir.longest_match(addr) {
            return OriginInfo {
                asn,
                kind: OriginKind::Rir,
                prefix: Some(prefix),
            };
        }
        OriginInfo::UNANNOUNCED
    }

    /// Shorthand: the origin AS for `addr` ([`Asn::NONE`] if IXP-covered or
    /// unannounced).
    pub fn origin(&self, addr: u32) -> Asn {
        self.lookup(addr).asn
    }

    /// Is `addr` inside an IXP peering LAN?
    pub fn is_ixp(&self, addr: u32) -> bool {
        self.ixp.longest_match(addr).is_some()
    }

    /// Number of BGP prefixes loaded.
    pub fn bgp_prefix_count(&self) -> usize {
        self.bgp.len()
    }

    /// Number of RIR prefixes that survived the staleness filter.
    pub fn rir_prefix_count(&self) -> usize {
        self.rir.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ixp::Ixp;
    use crate::rir::{AsnRecord, Ipv4Record, Registry};
    use crate::Announcement;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> u32 {
        net_types::parse_ipv4(s).unwrap()
    }

    fn build_fixture() -> IpToAs {
        let rib: Rib = [
            Announcement::new(p("10.0.0.0/8"), vec![Asn(1), Asn(100)]).unwrap(),
            Announcement::new(p("10.1.0.0/16"), vec![Asn(1), Asn(200)]).unwrap(),
            // An AS that (incorrectly) originates the IXP LAN into BGP.
            Announcement::new(p("198.32.0.0/24"), vec![Asn(1), Asn(300)]).unwrap(),
        ]
        .into_iter()
        .collect();

        let mut del = DelegationTable::new();
        del.add_asn(AsnRecord {
            registry: Registry::Arin,
            asn: Asn(400),
            org: "ORG-D".into(),
        });
        // Not covered by BGP → usable.
        del.add_ipv4(Ipv4Record {
            registry: Registry::Arin,
            prefix: p("172.16.0.0/16"),
            org: "ORG-D".into(),
        });
        // Covered by BGP 10/8 → stale, must be dropped.
        del.add_ipv4(Ipv4Record {
            registry: Registry::Arin,
            prefix: p("10.9.0.0/16"),
            org: "ORG-D".into(),
        });

        let ixps = IxpDirectory::from_ixps(vec![Ixp {
            id: 7,
            name: "IX".into(),
            prefix: p("198.32.0.0/24"),
            members: vec![Asn(100), Asn(200)],
        }]);

        IpToAs::build(&rib, &del, &ixps)
    }

    #[test]
    fn bgp_longest_match_wins() {
        let oracle = build_fixture();
        assert_eq!(oracle.origin(ip("10.1.2.3")), Asn(200));
        assert_eq!(oracle.origin(ip("10.2.2.3")), Asn(100));
    }

    #[test]
    fn ixp_shadows_bgp() {
        let oracle = build_fixture();
        let info = oracle.lookup(ip("198.32.0.9"));
        assert_eq!(info.kind, OriginKind::Ixp);
        assert_eq!(info.asn, Asn::NONE);
        assert!(oracle.is_ixp(ip("198.32.0.9")));
    }

    #[test]
    fn rir_fallback_only_when_uncovered() {
        let oracle = build_fixture();
        let info = oracle.lookup(ip("172.16.5.5"));
        assert_eq!(info.kind, OriginKind::Rir);
        assert_eq!(info.asn, Asn(400));
        // The stale delegation inside 10/8 must NOT shadow BGP.
        let info = oracle.lookup(ip("10.9.1.1"));
        assert_eq!(info.kind, OriginKind::Bgp);
        assert_eq!(info.asn, Asn(100));
        assert_eq!(oracle.rir_prefix_count(), 1);
    }

    #[test]
    fn unannounced() {
        let oracle = build_fixture();
        let info = oracle.lookup(ip("203.0.113.1"));
        assert_eq!(info, OriginInfo::UNANNOUNCED);
        assert!(info.asn.is_none());
    }

    #[test]
    fn from_pairs_shortcut() {
        let oracle = IpToAs::from_pairs([(p("192.0.2.0/24"), Asn(9))]);
        assert_eq!(oracle.origin(ip("192.0.2.1")), Asn(9));
        assert_eq!(oracle.origin(ip("192.0.3.1")), Asn::NONE);
    }
}
