//! RIR extended allocation/assignment files.
//!
//! The paper (§4.1) supplements BGP with RIR delegations: "using the AS
//! identifiers in the extended delegation files to match IP prefixes with
//! ASes. RIR delegations can be stale ... so we only use the prefixes from
//! RIR delegations not already covered by a BGP prefix."
//!
//! Real extended delegation files do not map prefixes to ASNs directly —
//! `ipv4` records and `asn` records each carry an opaque *org handle*, and
//! the join happens through that handle. We model the same indirection so
//! the join logic (and its failure modes: orgs with several ASNs, orgs with
//! none) is exercised for real.

use net_types::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The five regional internet registries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Registry {
    Afrinic,
    Apnic,
    Arin,
    Lacnic,
    RipeNcc,
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Registry::Afrinic => "afrinic",
            Registry::Apnic => "apnic",
            Registry::Arin => "arin",
            Registry::Lacnic => "lacnic",
            Registry::RipeNcc => "ripencc",
        };
        f.write_str(s)
    }
}

/// One `ipv4` record from an extended delegation file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Record {
    /// Which registry delegated the block.
    pub registry: Registry,
    /// The delegated block (extended files use start+count; we require
    /// CIDR-aligned blocks, as the vast majority are).
    pub prefix: Prefix,
    /// Opaque org handle joining this block to `asn` records.
    pub org: String,
}

/// One `asn` record from an extended delegation file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnRecord {
    /// Which registry delegated the ASN.
    pub registry: Registry,
    /// The delegated ASN.
    pub asn: Asn,
    /// Opaque org handle.
    pub org: String,
}

/// A parsed, joined delegation table: prefix → ASN via shared org handles.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DelegationTable {
    ipv4: Vec<Ipv4Record>,
    asns: Vec<AsnRecord>,
}

impl DelegationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an `ipv4` record.
    pub fn add_ipv4(&mut self, rec: Ipv4Record) {
        self.ipv4.push(rec);
    }

    /// Adds an `asn` record.
    pub fn add_asn(&mut self, rec: AsnRecord) {
        self.asns.push(rec);
    }

    /// Number of ipv4 records.
    pub fn ipv4_count(&self) -> usize {
        self.ipv4.len()
    }

    /// Joins ipv4 records to ASNs through org handles and builds the
    /// prefix→ASN trie used as the BGP fallback.
    ///
    /// When an org holds several ASNs we pick the lowest (deterministic, and
    /// matches how a single-AS mapping must collapse the ambiguity). Blocks
    /// whose org holds no ASN are dropped — they cannot inform ownership.
    pub fn join(&self) -> PrefixTrie<Asn> {
        let mut org_to_asn: BTreeMap<&str, Asn> = BTreeMap::new();
        for rec in &self.asns {
            org_to_asn
                .entry(rec.org.as_str())
                .and_modify(|a| *a = (*a).min(rec.asn))
                .or_insert(rec.asn);
        }
        let mut trie = PrefixTrie::new();
        for rec in &self.ipv4 {
            if let Some(&asn) = org_to_asn.get(rec.org.as_str()) {
                trie.insert(rec.prefix, asn);
            }
        }
        trie
    }

    /// Serializes to the pipe-separated extended format, e.g.
    /// `arin|US|ipv4|192.0.2.0|256|20180101|assigned|ORG-1` and
    /// `arin|US|asn|64500|1|20180101|assigned|ORG-1`.
    pub fn to_extended_format(&self) -> String {
        let mut out = String::new();
        for rec in &self.asns {
            out.push_str(&format!(
                "{}|ZZ|asn|{}|1|20180101|assigned|{}\n",
                rec.registry, rec.asn.0, rec.org
            ));
        }
        for rec in &self.ipv4 {
            out.push_str(&format!(
                "{}|ZZ|ipv4|{}|{}|20180101|assigned|{}\n",
                rec.registry,
                net_types::format_ipv4(rec.prefix.addr()),
                rec.prefix.size(),
                rec.org
            ));
        }
        out
    }

    /// Parses the pipe-separated extended format produced by
    /// [`Self::to_extended_format`] (and by the real RIR files, for the
    /// record types we consume). Unknown record types, summary lines, and
    /// comments are skipped. Non-CIDR-aligned ipv4 blocks are split into
    /// maximal CIDR blocks, as CAIDA's tooling does.
    pub fn parse_extended_format(text: &str) -> Result<Self, String> {
        let mut table = DelegationTable::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('2') {
                // Comments and version/summary header lines.
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            if fields.len() < 7 {
                continue;
            }
            let registry = match fields[0] {
                "afrinic" => Registry::Afrinic,
                "apnic" => Registry::Apnic,
                "arin" => Registry::Arin,
                "lacnic" => Registry::Lacnic,
                "ripencc" => Registry::RipeNcc,
                other => return Err(format!("line {}: unknown registry {other}", lineno + 1)),
            };
            let org = fields.get(7).unwrap_or(&"").to_string();
            if org.is_empty() {
                continue;
            }
            match fields[2] {
                "asn" => {
                    let asn: u32 = fields[3]
                        .parse()
                        .map_err(|_| format!("line {}: bad asn", lineno + 1))?;
                    table.add_asn(AsnRecord {
                        registry,
                        asn: Asn(asn),
                        org,
                    });
                }
                "ipv4" => {
                    let start = net_types::parse_ipv4(fields[3])
                        .ok_or_else(|| format!("line {}: bad ipv4", lineno + 1))?;
                    let count: u64 = fields[4]
                        .parse()
                        .map_err(|_| format!("line {}: bad count", lineno + 1))?;
                    for prefix in cidr_cover(start, count) {
                        table.add_ipv4(Ipv4Record {
                            registry,
                            prefix,
                            org: org.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(table)
    }
}

/// Decomposes an arbitrary `[start, start+count)` address range into maximal
/// CIDR blocks.
pub fn cidr_cover(start: u32, count: u64) -> Vec<Prefix> {
    let mut out = Vec::new();
    let mut cur = start as u64;
    let end = start as u64 + count;
    while cur < end {
        // Largest power-of-two block that is both aligned at `cur` and fits.
        let align = if cur == 0 {
            1u64 << 32
        } else {
            cur & cur.wrapping_neg()
        };
        let mut block = align.min(end - cur);
        // Round block down to a power of two.
        block = 1u64 << (63 - block.leading_zeros());
        let len = 32 - (block.trailing_zeros() as u8);
        out.push(Prefix::new(cur as u32, len));
        cur += block;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn cidr_cover_aligned() {
        assert_eq!(cidr_cover(0xc0000200, 256), vec![p("192.0.2.0/24")]);
        assert_eq!(cidr_cover(0x0a000000, 1 << 24), vec![p("10.0.0.0/8")]);
    }

    #[test]
    fn cidr_cover_unaligned() {
        // 192.0.2.64 count 192 = /26 at .64 + /25 at .128
        assert_eq!(
            cidr_cover(0xc0000240, 192),
            vec![p("192.0.2.64/26"), p("192.0.2.128/25")]
        );
        // count 3 from .0: /31 + /32
        assert_eq!(
            cidr_cover(0xc0000200, 3),
            vec![p("192.0.2.0/31"), p("192.0.2.2/32")]
        );
    }

    #[test]
    fn join_through_org_handles() {
        let mut t = DelegationTable::new();
        t.add_asn(AsnRecord {
            registry: Registry::Arin,
            asn: Asn(64500),
            org: "ORG-A".into(),
        });
        t.add_ipv4(Ipv4Record {
            registry: Registry::Arin,
            prefix: p("192.0.2.0/24"),
            org: "ORG-A".into(),
        });
        t.add_ipv4(Ipv4Record {
            registry: Registry::Arin,
            prefix: p("198.51.100.0/24"),
            org: "ORG-NOASN".into(),
        });
        let trie = t.join();
        assert_eq!(
            trie.longest_match(net_types::parse_ipv4("192.0.2.1").unwrap())
                .map(|(_, a)| *a),
            Some(Asn(64500))
        );
        // Org without an ASN record contributes nothing.
        assert!(trie
            .longest_match(net_types::parse_ipv4("198.51.100.1").unwrap())
            .is_none());
    }

    #[test]
    fn join_multi_asn_org_picks_lowest() {
        let mut t = DelegationTable::new();
        for asn in [64510u32, 64501] {
            t.add_asn(AsnRecord {
                registry: Registry::RipeNcc,
                asn: Asn(asn),
                org: "ORG-M".into(),
            });
        }
        t.add_ipv4(Ipv4Record {
            registry: Registry::RipeNcc,
            prefix: p("192.0.2.0/24"),
            org: "ORG-M".into(),
        });
        let trie = t.join();
        assert_eq!(
            trie.longest_match(net_types::parse_ipv4("192.0.2.9").unwrap())
                .map(|(_, a)| *a),
            Some(Asn(64501))
        );
    }

    #[test]
    fn extended_format_roundtrip() {
        let mut t = DelegationTable::new();
        t.add_asn(AsnRecord {
            registry: Registry::Apnic,
            asn: Asn(64500),
            org: "ORG-A".into(),
        });
        t.add_ipv4(Ipv4Record {
            registry: Registry::Apnic,
            prefix: p("192.0.2.0/24"),
            org: "ORG-A".into(),
        });
        let text = t.to_extended_format();
        let back = DelegationTable::parse_extended_format(&text).unwrap();
        assert_eq!(back.ipv4, t.ipv4);
        assert_eq!(back.asns, t.asns);
    }

    #[test]
    fn parse_skips_noise() {
        let text = "\
# comment
2|arin|20180101|1|19700101|20180101|+0000
arin|US|ipv4|192.0.2.0|256|20180101|assigned|ORG-1
arin|US|asn|64500|1|20180101|assigned|ORG-1
arin|US|ipv6|2001:db8::|32|20180101|assigned|ORG-1
arin||ipv4|*|summary
";
        let t = DelegationTable::parse_extended_format(text).unwrap();
        assert_eq!(t.ipv4_count(), 1);
        assert_eq!(t.asns.len(), 1);
    }

    #[test]
    fn parse_rejects_unknown_registry() {
        let text = "example|US|asn|64500|1|20180101|assigned|ORG-1\n";
        assert!(DelegationTable::parse_extended_format(text).is_err());
    }
}
