//! IXP peering-LAN prefixes and membership.
//!
//! The paper (§4.1) compiles IXP prefixes from PeeringDB, Packet Clearing
//! House, and EuroIX, "and do\[es\] not consider BGP origin ASes for addresses
//! covered by these prefixes". This module is the synthetic equivalent of
//! that merged directory.

use net_types::{Asn, Prefix, PrefixTrie};
use serde::{Deserialize, Serialize};

/// One Internet exchange point: a shared peering LAN and its members.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ixp {
    /// Stable identifier within the directory.
    pub id: u32,
    /// Human-readable name ("Synthetic-IX 3").
    pub name: String,
    /// The peering LAN prefix (one per IXP in our model; real IXPs can have
    /// several — use multiple entries if needed).
    pub prefix: Prefix,
    /// ASes with a port on the exchange fabric.
    pub members: Vec<Asn>,
}

/// The merged IXP directory (PeeringDB ∪ PCH ∪ EuroIX in the paper).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IxpDirectory {
    ixps: Vec<Ixp>,
    #[serde(skip)]
    trie: PrefixTrie<u32>,
}

impl IxpDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a directory from a list of IXPs.
    pub fn from_ixps(ixps: Vec<Ixp>) -> Self {
        let mut dir = IxpDirectory {
            ixps,
            trie: PrefixTrie::new(),
        };
        dir.rebuild();
        dir
    }

    /// Adds one IXP.
    pub fn add(&mut self, ixp: Ixp) {
        self.trie.insert(ixp.prefix, ixp.id);
        self.ixps.push(ixp);
    }

    /// Rebuilds the lookup trie (needed after deserialization).
    pub fn rebuild(&mut self) {
        self.trie = self.ixps.iter().map(|ixp| (ixp.prefix, ixp.id)).collect();
    }

    /// Number of IXPs in the directory.
    pub fn len(&self) -> usize {
        self.ixps.len()
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.ixps.is_empty()
    }

    /// Is `addr` inside any IXP peering LAN?
    pub fn contains(&self, addr: u32) -> bool {
        self.trie.longest_match(addr).is_some()
    }

    /// The IXP whose peering LAN covers `addr`, if any.
    pub fn lookup(&self, addr: u32) -> Option<&Ixp> {
        let (_, &id) = self.trie.longest_match(addr)?;
        self.ixps.iter().find(|ixp| ixp.id == id)
    }

    /// Iterates over all IXPs.
    pub fn iter(&self) -> impl Iterator<Item = &Ixp> {
        self.ixps.iter()
    }

    /// All peering LAN prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.ixps.iter().map(|ixp| ixp.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> IxpDirectory {
        IxpDirectory::from_ixps(vec![
            Ixp {
                id: 1,
                name: "IX-One".into(),
                prefix: "198.32.0.0/22".parse().unwrap(),
                members: vec![Asn(10), Asn(20)],
            },
            Ixp {
                id: 2,
                name: "IX-Two".into(),
                prefix: "206.80.0.0/24".parse().unwrap(),
                members: vec![Asn(30)],
            },
        ])
    }

    #[test]
    fn lookup_membership() {
        let d = dir();
        assert!(d.contains(net_types::parse_ipv4("198.32.1.5").unwrap()));
        assert!(!d.contains(net_types::parse_ipv4("198.33.0.1").unwrap()));
        let ixp = d
            .lookup(net_types::parse_ipv4("206.80.0.9").unwrap())
            .unwrap();
        assert_eq!(ixp.name, "IX-Two");
        assert_eq!(ixp.members, vec![Asn(30)]);
    }

    #[test]
    fn serde_rebuild() {
        let d = dir();
        let json = serde_json::to_string(&d).unwrap();
        let mut back: IxpDirectory = serde_json::from_str(&json).unwrap();
        // The trie is skipped during serde; callers must rebuild.
        back.rebuild();
        assert_eq!(back.len(), 2);
        assert!(back.contains(net_types::parse_ipv4("198.32.1.5").unwrap()));
    }
}
