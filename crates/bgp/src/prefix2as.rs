//! CAIDA `prefix2as` text format.
//!
//! The `routeviews-prefix2as` datasets map announced prefixes to origin
//! ASes, one per line: `<network>\t<length>\t<asn>`. MOAS conflicts are
//! encoded by joining the origins with `_` ("1.2.3.0 24 13335_4826"); AS
//! sets appear as `{a,b}`. Both are parsed; serialization always emits the
//! resolved single origin, matching how the bdrmapIT pipeline consumes the
//! file.

use crate::Rib;
use net_types::{format_ipv4, parse_ipv4, Asn, Prefix};
use std::fmt;

/// One parsed line: a prefix and its origin ASes (usually one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prefix2AsEntry {
    /// The announced prefix.
    pub prefix: Prefix,
    /// Origin ASes; more than one only for MOAS/AS-set lines.
    pub origins: Vec<Asn>,
}

impl Prefix2AsEntry {
    /// The resolved single origin: the lowest ASN (deterministic, the same
    /// collapse [`Rib::origin`] applies to ties).
    pub fn primary(&self) -> Asn {
        self.origins.iter().copied().min().unwrap_or(Asn::NONE)
    }
}

/// Error from parsing a prefix2as file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prefix2AsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for Prefix2AsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prefix2as parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for Prefix2AsError {}

/// Serializes a RIB's resolved origin table to prefix2as text.
pub fn to_prefix2as(rib: &Rib) -> String {
    let mut out = String::new();
    for (prefix, origin) in rib.origin_table() {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            format_ipv4(prefix.addr()),
            prefix.len(),
            origin.0
        ));
    }
    out
}

/// Parses prefix2as text (tab- or space-separated), including MOAS (`_`)
/// and AS-set (`{a,b}`) origin encodings.
pub fn parse_prefix2as(text: &str) -> Result<Vec<Prefix2AsEntry>, Prefix2AsError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| Prefix2AsError {
            line: i + 1,
            message,
        };
        let mut fields = line.split_whitespace();
        let net = fields.next().ok_or_else(|| err("missing network".into()))?;
        let len = fields.next().ok_or_else(|| err("missing length".into()))?;
        let asns = fields.next().ok_or_else(|| err("missing origin".into()))?;
        let addr = parse_ipv4(net).ok_or_else(|| err(format!("bad network {net:?}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| err(format!("bad length {len:?}")))?;
        if len > 32 {
            return Err(err(format!("length {len} out of range")));
        }
        let cleaned = asns.trim_start_matches('{').trim_end_matches('}');
        let mut origins = Vec::new();
        for tok in cleaned.split(['_', ',']) {
            let asn: u32 = tok
                .parse()
                .map_err(|_| err(format!("bad origin {tok:?}")))?;
            origins.push(Asn(asn));
        }
        if origins.is_empty() {
            return Err(err("empty origin list".into()));
        }
        out.push(Prefix2AsEntry {
            prefix: Prefix::new(addr, len),
            origins,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Announcement;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn rib_roundtrip() {
        let rib: Rib = [
            Announcement::new(p("10.0.0.0/8"), vec![Asn(1), Asn(100)]).unwrap(),
            Announcement::new(p("192.0.2.0/24"), vec![Asn(1), Asn(200)]).unwrap(),
        ]
        .into_iter()
        .collect();
        let text = to_prefix2as(&rib);
        let entries = parse_prefix2as(&text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].prefix, p("10.0.0.0/8"));
        assert_eq!(entries[0].primary(), Asn(100));
    }

    #[test]
    fn parses_moas_and_sets() {
        let text = "1.2.3.0\t24\t13335_4826\n4.5.6.0 24 {7018,3356}\n";
        let entries = parse_prefix2as(text).unwrap();
        assert_eq!(entries[0].origins, vec![Asn(13335), Asn(4826)]);
        assert_eq!(entries[0].primary(), Asn(4826));
        assert_eq!(entries[1].origins, vec![Asn(7018), Asn(3356)]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let entries = parse_prefix2as("# hi\n\n10.0.0.0\t8\t1\n").unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn error_positions() {
        let e = parse_prefix2as("10.0.0.0\t8\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing origin"));
        let e = parse_prefix2as("x\t8\t1\n").unwrap_err();
        assert!(e.message.contains("bad network"));
        let e = parse_prefix2as("10.0.0.0\t99\t1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_prefix2as("10.0.0.0\t8\tabc\n").unwrap_err();
        assert!(e.message.contains("bad origin"));
    }
}
