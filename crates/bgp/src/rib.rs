//! A route collector's RIB: every announcement seen, grouped by prefix.

use crate::Announcement;
use net_types::{Asn, Counter, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The union of announcements archived by the collectors (the synthetic
/// equivalent of a Routeviews + RIPE RIS snapshot).
///
/// The origin of a prefix is the last AS of its path; when different
/// announcements disagree (a MOAS conflict), [`Rib::origin`] resolves the
/// conflict deterministically to the origin seen on the most paths (ties to
/// the lowest ASN), while [`Rib::origins`] exposes the full set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Rib {
    by_prefix: BTreeMap<Prefix, Vec<Announcement>>,
}

impl Rib {
    /// Creates an empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one announcement.
    pub fn add(&mut self, ann: Announcement) {
        self.by_prefix.entry(ann.prefix).or_default().push(ann);
    }

    /// Number of distinct prefixes announced.
    pub fn prefix_count(&self) -> usize {
        self.by_prefix.len()
    }

    /// Total announcements stored.
    pub fn announcement_count(&self) -> usize {
        self.by_prefix.values().map(Vec::len).sum()
    }

    /// True if nothing has been announced.
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty()
    }

    /// All announcements for one prefix.
    pub fn announcements(&self, prefix: Prefix) -> &[Announcement] {
        self.by_prefix.get(&prefix).map_or(&[], Vec::as_slice)
    }

    /// Iterates over every announced prefix in ascending order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.by_prefix.keys().copied()
    }

    /// Iterates over all announcements.
    pub fn iter(&self) -> impl Iterator<Item = &Announcement> {
        self.by_prefix.values().flatten()
    }

    /// All distinct origin ASes announcing `prefix` (MOAS-aware), ascending.
    pub fn origins(&self, prefix: Prefix) -> Vec<Asn> {
        let mut set: Vec<Asn> = self
            .announcements(prefix)
            .iter()
            .map(Announcement::origin)
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// The resolved single origin AS for `prefix`: the origin announced on
    /// the most paths, breaking ties toward the lowest ASN. `None` if the
    /// prefix is not in the RIB.
    pub fn origin(&self, prefix: Prefix) -> Option<Asn> {
        let anns = self.announcements(prefix);
        if anns.is_empty() {
            return None;
        }
        let counts: Counter<Asn> = anns.iter().map(Announcement::origin).collect();
        // max_keys is ascending, so the first tied key is the lowest ASN.
        counts.max_keys().into_iter().next()
    }

    /// All collapsed AS paths in the RIB — the input to AS relationship
    /// inference.
    pub fn collapsed_paths(&self) -> Vec<Vec<Asn>> {
        self.iter().map(Announcement::collapsed_path).collect()
    }

    /// The `(prefix, origin)` pairs for the whole table, resolved.
    pub fn origin_table(&self) -> Vec<(Prefix, Asn)> {
        self.by_prefix
            .keys()
            .map(|&p| (p, self.origin(p).expect("prefix present")))
            .collect()
    }
}

impl FromIterator<Announcement> for Rib {
    fn from_iter<I: IntoIterator<Item = Announcement>>(iter: I) -> Self {
        let mut rib = Rib::new();
        for a in iter {
            rib.add(a);
        }
        rib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(p(prefix), path.iter().map(|&a| Asn(a)).collect()).unwrap()
    }

    #[test]
    fn single_origin() {
        let rib: Rib = [ann("10.0.0.0/8", &[1, 2, 3]), ann("10.0.0.0/8", &[4, 3])]
            .into_iter()
            .collect();
        assert_eq!(rib.origin(p("10.0.0.0/8")), Some(Asn(3)));
        assert_eq!(rib.origins(p("10.0.0.0/8")), vec![Asn(3)]);
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.announcement_count(), 2);
    }

    #[test]
    fn moas_resolution_prefers_majority() {
        let rib: Rib = [
            ann("10.0.0.0/8", &[1, 5]),
            ann("10.0.0.0/8", &[2, 5]),
            ann("10.0.0.0/8", &[3, 9]),
        ]
        .into_iter()
        .collect();
        assert_eq!(rib.origin(p("10.0.0.0/8")), Some(Asn(5)));
        assert_eq!(rib.origins(p("10.0.0.0/8")), vec![Asn(5), Asn(9)]);
    }

    #[test]
    fn moas_tie_breaks_low_asn() {
        let rib: Rib = [ann("10.0.0.0/8", &[1, 9]), ann("10.0.0.0/8", &[2, 5])]
            .into_iter()
            .collect();
        assert_eq!(rib.origin(p("10.0.0.0/8")), Some(Asn(5)));
    }

    #[test]
    fn missing_prefix() {
        let rib = Rib::new();
        assert_eq!(rib.origin(p("10.0.0.0/8")), None);
        assert!(rib.origins(p("10.0.0.0/8")).is_empty());
        assert!(rib.announcements(p("10.0.0.0/8")).is_empty());
    }

    #[test]
    fn origin_table_covers_all_prefixes() {
        let rib: Rib = [
            ann("10.0.0.0/8", &[1, 2]),
            ann("192.0.2.0/24", &[1, 3]),
            ann("198.51.100.0/24", &[1, 2, 4]),
        ]
        .into_iter()
        .collect();
        let table = rib.origin_table();
        assert_eq!(table.len(), 3);
        assert!(table.contains(&(p("192.0.2.0/24"), Asn(3))));
    }

    #[test]
    fn collapsed_paths_collapse() {
        let rib: Rib = [ann("10.0.0.0/8", &[1, 2, 2, 3])].into_iter().collect();
        assert_eq!(rib.collapsed_paths(), vec![vec![Asn(1), Asn(2), Asn(3)]]);
    }
}
