//! BGP substrate for bdrmapit-rs.
//!
//! The bdrmapIT paper derives interface origin ASes from BGP announcements
//! collected by Routeviews and RIPE RIS, falling back to RIR extended
//! delegation files for address space invisible in BGP, and treating IXP
//! peering-LAN prefixes specially (paper §4.1). This crate models all three
//! sources:
//!
//! * [`Announcement`] / [`Rib`] — announced prefixes with AS paths, as a
//!   route collector would archive them, and the prefix→origin table built
//!   from them.
//! * [`rir::DelegationTable`] — RIR extended delegations joined to ASNs
//!   through registry org handles, including deliberately stale entries.
//! * [`ixp::IxpDirectory`] — IXP peering LAN prefixes and membership, as
//!   published by PeeringDB/PCH/EuroIX.
//! * [`IpToAs`] — the combined longest-prefix-match oracle the algorithm
//!   consumes: BGP first, then RIR delegations not covered by BGP, with IXP
//!   prefixes flagged so callers can suppress origin votes for them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod announce;
pub mod ixp;
mod origin;
pub mod prefix2as;
mod rib;
pub mod rir;

pub use announce::{Announcement, PathError};
pub use origin::{IpToAs, OriginInfo, OriginKind};
pub use rib::Rib;
