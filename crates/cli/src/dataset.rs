//! On-disk dataset bundles: the file-driven pipeline.
//!
//! `bdrmapit probe --out DIR` materializes a complete input bundle in the
//! interchange formats the ecosystem uses — traces as JSON lines, aliases
//! as an ITDK nodes file, relationships as CAIDA serial-1, origins as
//! prefix2as, RIR delegations in the extended format, IXPs as JSON — plus
//! the generator's ground truth for scoring. `bdrmapit infer --in DIR`
//! runs bdrmapIT from those files alone, writes the annotation and link
//! CSVs, and scores against the ground truth when present.
//!
//! Anyone with real data in these formats (converted CAIDA traces, a real
//! prefix2as file, real serial-1 relationships) can run the tool on it.

use alias::AliasSets;
use as_rel::AsRelationships;
use bdrmapit_core::{Bdrmapit, Config};
use bgp::ixp::IxpDirectory;
use bgp::prefix2as::{parse_prefix2as, to_prefix2as};
use bgp::rir::DelegationTable;
use bgp::IpToAs;
use eval::Scenario;
use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;
use topo_gen::GeneratorConfig;
use traceroute::io::{read_jsonl, write_jsonl};
use traceroute::sim::ProbeConfig;

/// File names inside a dataset bundle.
pub mod files {
    /// Traceroute corpus (JSON lines).
    pub const TRACES: &str = "traces.jsonl";
    /// Alias sets (ITDK nodes format).
    pub const NODES: &str = "nodes.txt";
    /// AS relationships (CAIDA serial-1).
    pub const RELS: &str = "as-rel.txt";
    /// Prefix→origin table (CAIDA prefix2as).
    pub const PREFIX2AS: &str = "prefix2as.txt";
    /// RIR delegations (extended format).
    pub const DELEGATIONS: &str = "delegated-extended.txt";
    /// IXP directory (JSON).
    pub const IXPS: &str = "ixps.json";
    /// Ground truth for scoring (JSON; optional).
    pub const TRUTH: &str = "truth.json";
    /// Inferred per-address annotations (CSV output).
    pub const ANNOTATIONS: &str = "annotations.csv";
    /// Inferred interdomain links (CSV output).
    pub const LINKS: &str = "links.csv";
}

/// Ground truth shipped alongside a synthetic bundle.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True AS adjacencies, canonical (low, high) order.
    pub pairs: Vec<(Asn, Asn)>,
    /// `(address, true router operator)` for every generated interface.
    pub owners: Vec<(u32, Asn)>,
}

/// Writes a complete synthetic dataset bundle. `threads` sizes the sharded
/// campaign's worker pool (0 = ask the OS); the bundle contents are
/// bit-identical for every value.
pub fn write_bundle(
    dir: &Path,
    gen_cfg: GeneratorConfig,
    vps: usize,
    seed: u64,
    threads: usize,
    rec: &obs::Recorder,
) -> io::Result<String> {
    fs::create_dir_all(dir)?;
    let s = Scenario::build_with_obs(gen_cfg, rec.clone());
    let probe_cfg = ProbeConfig {
        seed,
        ..ProbeConfig::default()
    };
    let vp_routers = traceroute::sim::select_vps(&s.net, vps, &[], seed);
    let traces =
        traceroute::sim::probe_campaign_with_obs(&s.net, &vp_routers, &probe_cfg, threads, rec);
    let observed = alias::observed_addresses(&traces);
    let aliases = alias::resolve_midar_with_obs(&s.net, &observed, 0.9, seed, rec);

    let mut f = fs::File::create(dir.join(files::TRACES))?;
    write_jsonl(&mut f, &traces)?;
    fs::write(dir.join(files::NODES), aliases.to_nodes_file())?;
    fs::write(dir.join(files::RELS), s.rels.to_serial1())?;
    fs::write(dir.join(files::PREFIX2AS), to_prefix2as(&s.rib))?;
    fs::write(
        dir.join(files::DELEGATIONS),
        s.net.addressing.delegations.to_extended_format(),
    )?;
    fs::write(
        dir.join(files::IXPS),
        serde_json::to_string_pretty(&s.net.addressing.ixps).map_err(io::Error::other)?,
    )?;

    let pairs: BTreeSet<(Asn, Asn)> = s
        .net
        .true_links()
        .iter()
        .map(|l| (l.as_a.min(l.as_b), l.as_a.max(l.as_b)))
        .collect();
    let owners: Vec<(u32, Asn)> = s
        .net
        .topology
        .ifaces
        .iter()
        .map(|i| (i.addr, s.net.topology.owner(i.router)))
        .collect();
    let truth = GroundTruth {
        pairs: pairs.into_iter().collect(),
        owners,
    };
    fs::write(
        dir.join(files::TRUTH),
        serde_json::to_string(&truth).map_err(io::Error::other)?,
    )?;

    Ok(format!(
        "wrote {} traces from {} VPs, {} alias groups, {} relationships, {} prefixes to {}\n",
        traces.len(),
        vp_routers.len(),
        aliases.len(),
        s.rels.len(),
        s.rib.prefix_count(),
        dir.display()
    ))
}

/// Runs bdrmapIT from a dataset bundle on disk; returns the report text.
/// `threads` selects the refinement worker count ([`Config::threads`]).
pub fn infer_from_bundle(dir: &Path, threads: usize, rec: &obs::Recorder) -> io::Result<String> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);

    let read_span = rec.span(obs::names::PHASE_READ_BUNDLE);
    let traces = read_jsonl(fs::File::open(dir.join(files::TRACES))?)?;
    let aliases = AliasSets::from_nodes_file(&fs::read_to_string(dir.join(files::NODES))?)
        .map_err(invalid)?;
    let rels = AsRelationships::from_serial1(&fs::read_to_string(dir.join(files::RELS))?)
        .map_err(|e| invalid(e.to_string()))?;
    let entries = parse_prefix2as(&fs::read_to_string(dir.join(files::PREFIX2AS))?)
        .map_err(|e| invalid(e.to_string()))?;
    // Delegations and IXPs are optional in a bundle.
    let delegations = match fs::read_to_string(dir.join(files::DELEGATIONS)) {
        Ok(text) => DelegationTable::parse_extended_format(&text).map_err(invalid)?,
        Err(_) => DelegationTable::new(),
    };
    let mut ixps: IxpDirectory = match fs::read_to_string(dir.join(files::IXPS)) {
        Ok(text) => serde_json::from_str(&text).map_err(io::Error::other)?,
        Err(_) => IxpDirectory::new(),
    };
    ixps.rebuild();
    drop(read_span);

    // prefix2as + delegations + IXPs → the combined oracle. (IpToAs::build
    // wants a Rib for BGP; reconstruct the BGP layer from prefix2as and
    // apply the same staleness filtering by building from pairs + ixps and
    // layering RIR prefixes not covered by BGP.)
    let bgp_pairs: Vec<_> = entries.iter().map(|e| (e.prefix, e.primary())).collect();
    let mut ip2as = IpToAs::from_pairs(bgp_pairs.clone()).with_ixps(&ixps);
    let joined = delegations.join();
    let bgp_only = IpToAs::from_pairs(bgp_pairs);
    let rir_pairs: Vec<_> = joined
        .iter()
        .filter(|(p, _)| {
            // The staleness rule: only delegations not covered by BGP.
            bgp_only
                .lookup(p.addr())
                .prefix
                .is_none_or(|bp| !bp.covers(*p))
        })
        .map(|(p, &a)| (p, a))
        .collect();
    ip2as = ip2as.with_rir(rir_pairs);

    let cfg = Config {
        threads,
        ..Config::default()
    };
    let result = Bdrmapit::new(cfg)
        .with_obs(rec.clone())
        .run(&traces, &aliases, &ip2as, &rels);

    let mut ann = fs::File::create(dir.join(files::ANNOTATIONS))?;
    bdrmapit_core::output::write_annotations(&mut ann, &result)?;
    let mut links = fs::File::create(dir.join(files::LINKS))?;
    bdrmapit_core::output::write_links(&mut links, &result)?;

    let mut report = format!(
        "ran bdrmapIT on {} traces: {} IRs, {} iterations, {} interdomain links\n\
         wrote {} and {}\n",
        traces.len(),
        result.graph.irs.len(),
        result.state.iterations,
        result.interdomain_links().len(),
        dir.join(files::ANNOTATIONS).display(),
        dir.join(files::LINKS).display()
    );

    // Score against truth when available.
    if let Ok(text) = fs::read_to_string(dir.join(files::TRUTH)) {
        let truth: GroundTruth = serde_json::from_str(&text).map_err(io::Error::other)?;
        let truth_pairs: BTreeSet<(Asn, Asn)> = truth.pairs.iter().copied().collect();
        // BTreeMap rather than HashMap: the scoring path is not hot, and a
        // sorted map keeps every traversal of truth data deterministic.
        let owner_of: std::collections::BTreeMap<u32, Asn> = truth.owners.iter().copied().collect();
        let inferred: BTreeSet<(Asn, Asn)> = result
            .interdomain_links()
            .iter()
            .map(|l| (l.ir_as.min(l.conn_as), l.ir_as.max(l.conn_as)))
            .collect();
        let correct = inferred.intersection(&truth_pairs).count();
        let mut ann_correct = 0usize;
        let mut ann_total = 0usize;
        for (addr, asn) in result.router_annotations() {
            if asn.is_none() {
                continue;
            }
            if let Some(&owner) = owner_of.get(&addr) {
                ann_total += 1;
                if owner == asn {
                    ann_correct += 1;
                }
            }
        }
        report.push_str(&format!(
            "link precision vs truth: {:.3} ({}/{}); annotation accuracy: {:.3} ({}/{})\n",
            correct as f64 / inferred.len().max(1) as f64,
            correct,
            inferred.len(),
            ann_correct as f64 / ann_total.max(1) as f64,
            ann_correct,
            ann_total
        ));
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bdrmapit-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn bundle_roundtrip_scores_against_truth() {
        let dir = tmpdir("roundtrip");
        let rec = obs::Recorder::disabled();
        let report = write_bundle(&dir, GeneratorConfig::tiny(404), 4, 404, 2, &rec).unwrap();
        assert!(report.contains("wrote"));
        for f in [
            files::TRACES,
            files::NODES,
            files::RELS,
            files::PREFIX2AS,
            files::DELEGATIONS,
            files::IXPS,
            files::TRUTH,
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        // Exercise the parallel refinement path end to end: 2 workers here,
        // serial in `infer_without_truth_still_runs` — same code, same answers.
        let report = infer_from_bundle(&dir, 2, &rec).unwrap();
        assert!(report.contains("interdomain links"), "{report}");
        assert!(report.contains("link precision vs truth"), "{report}");
        assert!(dir.join(files::ANNOTATIONS).exists());
        assert!(dir.join(files::LINKS).exists());
        // The reported precision should be high; parse it back out.
        let prec: f64 = report
            .split("link precision vs truth: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("precision in report");
        assert!(prec > 0.8, "precision {prec} too low: {report}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn infer_without_truth_still_runs() {
        let dir = tmpdir("no-truth");
        let rec = obs::Recorder::disabled();
        write_bundle(&dir, GeneratorConfig::tiny(405), 3, 405, 1, &rec).unwrap();
        fs::remove_file(dir.join(files::TRUTH)).unwrap();
        let report = infer_from_bundle(&dir, 1, &rec).unwrap();
        assert!(report.contains("interdomain links"));
        assert!(!report.contains("precision"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn infer_missing_bundle_errors() {
        let dir = tmpdir("missing");
        fs::remove_dir_all(&dir).unwrap();
        assert!(infer_from_bundle(&dir, 1, &obs::Recorder::disabled()).is_err());
    }

    #[test]
    fn infer_records_read_and_pipeline_phases() {
        let dir = tmpdir("obs-phases");
        let rec = obs::Recorder::new(false);
        write_bundle(&dir, GeneratorConfig::tiny(406), 3, 406, 0, &rec).unwrap();
        infer_from_bundle(&dir, 1, &rec).unwrap();
        let report = rec.report();
        for phase in [
            obs::names::PHASE_TOPO,
            obs::names::PHASE_TRACEROUTE,
            obs::names::PHASE_ALIAS,
            obs::names::PHASE_READ_BUNDLE,
            obs::names::PHASE_GRAPH,
            obs::names::PHASE_REFINE,
        ] {
            assert!(report.phases.contains_key(phase), "missing {phase}");
        }
        assert!(report.counters[obs::names::REFINE_ITERATIONS] > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
