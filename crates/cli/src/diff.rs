//! Offline inspection of run artifacts: `report diff` and `trace check`.
//!
//! `report diff A.json B.json` compares two [`obs::RunReport`]s: counter
//! deltas, histogram changes, and phase wall-time ratios. The command exits
//! nonzero when the *deterministic* slices diverge — two runs of the same
//! corpus must agree there regardless of thread count or machine — while
//! wall times and execution-dependent counters may differ freely and are
//! reported for context only.
//!
//! `trace check FILE` validates a `--trace-out` artifact against the
//! `bdrmapit.trace/v1` schema (see DESIGN.md §15) and prints its shape.

use crate::CliError;
use obs::RunReport;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

fn load(path: &Path) -> Result<RunReport, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("reading {}: {e}", path.display())))?;
    RunReport::from_json(&text)
        .map_err(|e| CliError::Runtime(format!("parsing {}: {e}", path.display())))
}

fn diff_counters(
    out: &mut String,
    title: &str,
    a: &std::collections::BTreeMap<String, u64>,
    b: &std::collections::BTreeMap<String, u64>,
) {
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut unchanged = 0usize;
    let _ = writeln!(out, "{title}:");
    for k in keys {
        let (va, vb) = (
            a.get(k).copied().unwrap_or(0),
            b.get(k).copied().unwrap_or(0),
        );
        if va == vb {
            unchanged += 1;
        } else {
            let delta = vb as i128 - va as i128;
            let _ = writeln!(out, "  {k}: {va} -> {vb} ({delta:+})");
        }
    }
    let _ = writeln!(out, "  ({unchanged} unchanged)");
}

/// Renders the comparison of two run reports; `Err` (with the same text)
/// when their deterministic slices diverge, so scripts can gate on the exit
/// code.
pub fn report_diff(a_path: &Path, b_path: &Path) -> Result<String, CliError> {
    let a = load(a_path)?;
    let b = load(b_path)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "report diff: {} vs {}",
        a_path.display(),
        b_path.display()
    );
    diff_counters(&mut out, "deterministic counters", &a.counters, &b.counters);
    diff_counters(&mut out, "exec counters (informational)", &a.exec, &b.exec);

    let hist_keys: BTreeSet<&String> = a.histograms.keys().chain(b.histograms.keys()).collect();
    let changed: Vec<&String> = hist_keys
        .into_iter()
        .filter(|k| a.histograms.get(*k) != b.histograms.get(*k))
        .collect();
    if changed.is_empty() {
        let _ = writeln!(out, "histograms: identical");
    } else {
        let _ = writeln!(out, "histograms changed:");
        for k in &changed {
            let show = |r: &RunReport| {
                r.histograms
                    .get(*k)
                    .map_or("absent".to_string(), |h| format!("{} samples", h.count))
            };
            let _ = writeln!(out, "  {k}: {} -> {}", show(&a), show(&b));
        }
    }

    let phase_keys: BTreeSet<&String> = a.phases.keys().chain(b.phases.keys()).collect();
    let _ = writeln!(out, "phase wall times (informational):");
    for k in phase_keys {
        match (a.phases.get(k), b.phases.get(k)) {
            (Some(pa), Some(pb)) if pa.wall_ms > 0.0 => {
                let _ = writeln!(
                    out,
                    "  {k}: {:.3} ms -> {:.3} ms (x{:.2})",
                    pa.wall_ms,
                    pb.wall_ms,
                    pb.wall_ms / pa.wall_ms
                );
            }
            (pa, pb) => {
                let ms = |p: Option<&obs::PhaseStats>| {
                    p.map_or("absent".to_string(), |p| format!("{:.3} ms", p.wall_ms))
                };
                let _ = writeln!(out, "  {k}: {} -> {}", ms(pa), ms(pb));
            }
        }
    }

    if a.deterministic_view() != b.deterministic_view() {
        let _ = writeln!(
            out,
            "DIVERGENCE: deterministic counters/histograms differ between the two runs"
        );
        return Err(CliError::Runtime(out));
    }
    let _ = writeln!(out, "deterministic metrics agree");
    Ok(out)
}

/// Validates a `--trace-out` artifact and summarizes its shape.
pub fn trace_check(path: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("reading {}: {e}", path.display())))?;
    let check = obs::trace::validate_chrome_json(&text)
        .map_err(|e| CliError::Runtime(format!("{}: invalid trace: {e}", path.display())))?;
    Ok(format!(
        "{}: valid {} — {} events on {} tracks, {} dropped\n",
        path.display(),
        obs::trace::TRACE_SCHEMA,
        check.events,
        check.tracks,
        check.dropped
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::names;
    use obs::{MockClock, Recorder};

    fn write_report(rec: &Recorder, tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "bdrmapit-diff-test-{}-{tag}.json",
            std::process::id()
        ));
        std::fs::write(&path, rec.report().to_json()).unwrap();
        path
    }

    fn recorder_with(iterations: u64, cache_hits: u64) -> Recorder {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        {
            let _s = rec.span(names::PHASE_REFINE);
            clock.advance(2_000_000);
        }
        rec.add(names::REFINE_ITERATIONS, iterations);
        rec.add_exec(names::EXEC_CACHE_HITS, cache_hits);
        rec
    }

    #[test]
    fn agreeing_reports_diff_clean() {
        let a = write_report(&recorder_with(3, 10), "clean-a");
        let b = write_report(&recorder_with(3, 99), "clean-b");
        let out = report_diff(&a, &b).unwrap();
        assert!(out.contains("deterministic metrics agree"), "{out}");
        // Exec divergence is reported but not fatal.
        assert!(out.contains("asrel.cache_hits: 10 -> 99"), "{out}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn deterministic_divergence_is_an_error_carrying_the_diff() {
        let a = write_report(&recorder_with(3, 10), "div-a");
        let b = write_report(&recorder_with(4, 10), "div-b");
        let err = report_diff(&a, &b).unwrap_err();
        let CliError::Runtime(text) = err else {
            panic!("expected runtime error")
        };
        assert!(text.contains("DIVERGENCE"), "{text}");
        assert!(text.contains("refine.iterations: 3 -> 4 (+1)"), "{text}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn missing_and_malformed_inputs_are_runtime_errors() {
        let missing = Path::new("/nonexistent/report.json");
        assert!(matches!(
            report_diff(missing, missing),
            Err(CliError::Runtime(_))
        ));
        let bad =
            std::env::temp_dir().join(format!("bdrmapit-diff-bad-{}.json", std::process::id()));
        std::fs::write(&bad, "not json").unwrap();
        assert!(matches!(report_diff(&bad, &bad), Err(CliError::Runtime(_))));
        assert!(matches!(trace_check(&bad), Err(CliError::Runtime(_))));
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn trace_check_accepts_a_real_export() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock_tracing(false, Box::new(clock.clone()), 64);
        {
            let _s = rec.span(names::PHASE_GRAPH);
            clock.advance(1_000_000);
        }
        let path =
            std::env::temp_dir().join(format!("bdrmapit-trace-check-{}.json", std::process::id()));
        std::fs::write(&path, rec.tracer().finish().to_chrome_json()).unwrap();
        let out = trace_check(&path).unwrap();
        assert!(out.contains("valid bdrmapit.trace/v1"), "{out}");
        let _ = std::fs::remove_file(&path);
    }
}
