//! Offline inspection of run artifacts: `report diff`, `snapshot diff`, and
//! `trace check`.
//!
//! `report diff A.json B.json` compares two [`obs::RunReport`]s: counter
//! deltas, histogram changes, and phase wall-time ratios. The command exits
//! nonzero when the *deterministic* slices diverge — two runs of the same
//! corpus must agree there regardless of thread count or machine — while
//! wall times and execution-dependent counters may differ freely and are
//! reported for context only. Either side may also be a
//! `bdrmapit.churn-report/v1` bundle from `pipeline --churn`; `--epoch
//! X[:Y]` picks the per-epoch report to compare.
//!
//! `snapshot diff A.snap B.snap` structurally compares two
//! `bdrmapit.snapshot/v1` files — routers added/removed, ASN reassignments,
//! annotation agreement — and, like grep, exits 0 when identical and 1 when
//! they differ.
//!
//! `trace check FILE` validates a `--trace-out` artifact against the
//! `bdrmapit.trace/v1` schema (see DESIGN.md §15) and prints its shape.

use crate::CliError;
use net_types::Asn;
use obs::RunReport;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// Loads one side of a `report diff`: a plain run report, or — when the
/// file parses as a `bdrmapit.churn-report/v1` bundle — the epoch selected
/// with `--epoch`. Asking for an epoch from a plain report (or forgetting
/// `--epoch` on a bundle) is a runtime error, not a silent guess.
fn load_selected(path: &Path, epoch: Option<usize>) -> Result<RunReport, CliError> {
    let rt = CliError::Runtime;
    let text = std::fs::read_to_string(path)
        .map_err(|e| rt(format!("reading {}: {e}", path.display())))?;
    // `ChurnReport::from_json` enforces its schema tag, so success here is
    // an unambiguous bundle detection.
    if let Ok(bundle) = churn::ChurnReport::from_json(&text) {
        let idx = epoch.ok_or_else(|| {
            rt(format!(
                "{} is a churn-report bundle; select an epoch with --epoch X[:Y]",
                path.display()
            ))
        })?;
        return bundle
            .epoch(idx)
            .cloned()
            .map_err(|e| rt(format!("{}: {e}", path.display())));
    }
    if epoch.is_some() {
        return Err(rt(format!(
            "--epoch requires a churn-report bundle, but {} is a plain run report",
            path.display()
        )));
    }
    RunReport::from_json(&text).map_err(|e| rt(format!("parsing {}: {e}", path.display())))
}

fn diff_counters(
    out: &mut String,
    title: &str,
    a: &std::collections::BTreeMap<String, u64>,
    b: &std::collections::BTreeMap<String, u64>,
) {
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut unchanged = 0usize;
    let _ = writeln!(out, "{title}:");
    for k in keys {
        let (va, vb) = (
            a.get(k).copied().unwrap_or(0),
            b.get(k).copied().unwrap_or(0),
        );
        if va == vb {
            unchanged += 1;
        } else {
            let delta = vb as i128 - va as i128;
            let _ = writeln!(out, "  {k}: {va} -> {vb} ({delta:+})");
        }
    }
    let _ = writeln!(out, "  ({unchanged} unchanged)");
}

/// Renders the comparison of two run reports; `Err` (with the same text)
/// when their deterministic slices diverge, so scripts can gate on the exit
/// code.
pub fn report_diff(
    a_path: &Path,
    b_path: &Path,
    epoch: Option<(usize, usize)>,
) -> Result<String, CliError> {
    let a = load_selected(a_path, epoch.map(|(x, _)| x))?;
    let b = load_selected(b_path, epoch.map(|(_, y)| y))?;
    let mut out = String::new();
    let _ = match epoch {
        Some((x, y)) => writeln!(
            out,
            "report diff: {} [epoch {x}] vs {} [epoch {y}]",
            a_path.display(),
            b_path.display()
        ),
        None => writeln!(
            out,
            "report diff: {} vs {}",
            a_path.display(),
            b_path.display()
        ),
    };
    diff_counters(&mut out, "deterministic counters", &a.counters, &b.counters);
    diff_counters(&mut out, "exec counters (informational)", &a.exec, &b.exec);

    let hist_keys: BTreeSet<&String> = a.histograms.keys().chain(b.histograms.keys()).collect();
    let changed: Vec<&String> = hist_keys
        .into_iter()
        .filter(|k| a.histograms.get(*k) != b.histograms.get(*k))
        .collect();
    if changed.is_empty() {
        let _ = writeln!(out, "histograms: identical");
    } else {
        let _ = writeln!(out, "histograms changed:");
        for k in &changed {
            let show = |r: &RunReport| {
                r.histograms
                    .get(*k)
                    .map_or("absent".to_string(), |h| format!("{} samples", h.count))
            };
            let _ = writeln!(out, "  {k}: {} -> {}", show(&a), show(&b));
        }
    }

    let phase_keys: BTreeSet<&String> = a.phases.keys().chain(b.phases.keys()).collect();
    let _ = writeln!(out, "phase wall times (informational):");
    for k in phase_keys {
        match (a.phases.get(k), b.phases.get(k)) {
            (Some(pa), Some(pb)) if pa.wall_ms > 0.0 => {
                let _ = writeln!(
                    out,
                    "  {k}: {:.3} ms -> {:.3} ms (x{:.2})",
                    pa.wall_ms,
                    pb.wall_ms,
                    pb.wall_ms / pa.wall_ms
                );
            }
            (pa, pb) => {
                let ms = |p: Option<&obs::PhaseStats>| {
                    p.map_or("absent".to_string(), |p| format!("{:.3} ms", p.wall_ms))
                };
                let _ = writeln!(out, "  {k}: {} -> {}", ms(pa), ms(pb));
            }
        }
    }

    if a.deterministic_view() != b.deterministic_view() {
        let _ = writeln!(
            out,
            "DIVERGENCE: deterministic counters/histograms differ between the two runs"
        );
        return Err(CliError::Runtime(out));
    }
    let _ = writeln!(out, "deterministic metrics agree");
    Ok(out)
}

/// Schema tag for the JSON document `snapshot diff` prints.
pub const SNAPSHOT_DIFF_SCHEMA: &str = "bdrmapit.snapshot-diff/v1";

/// The structural comparison `snapshot diff` prints (and exits on).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct SnapshotDiffDoc {
    /// Always [`SNAPSHOT_DIFF_SCHEMA`].
    pub schema: String,
    /// Baseline path, as given.
    pub a: String,
    /// Candidate path, as given.
    pub b: String,
    /// Whether the two snapshots are byte-equivalent record for record.
    pub identical: bool,
    /// Routers present in B but not A (keyed by interface-address set).
    pub routers_added: usize,
    /// Routers present in A but not B.
    pub routers_removed: usize,
    /// Routers present in both whose inferred operator changed.
    pub asn_reassigned: usize,
    /// Annotated addresses only A has.
    pub addrs_only_a: usize,
    /// Annotated addresses only B has.
    pub addrs_only_b: usize,
    /// Fraction of common addresses whose operator annotation agrees
    /// (1.0 when there are no common addresses).
    pub agreement: f64,
    /// Interdomain link records only B has.
    pub links_added: usize,
    /// Interdomain link records only A has.
    pub links_removed: usize,
    /// Prefix→origin rows present on exactly one side.
    pub prefixes_changed: usize,
}

/// Structurally compares two snapshots. Identical snapshots return `Ok`
/// (exit 0); differing snapshots return the same JSON document as
/// `Err(Runtime)` so the process exits 1, grep-style. Unreadable or
/// corrupt inputs are runtime errors too; usage errors exit 2 upstream.
pub fn snapshot_diff(a_path: &Path, b_path: &Path) -> Result<String, CliError> {
    let load = |p: &Path| -> Result<snapshot::SnapshotData, CliError> {
        let bytes = std::fs::read(p)
            .map_err(|e| CliError::Runtime(format!("reading {}: {e}", p.display())))?;
        snapshot::from_bytes(&bytes)
            .map_err(|e| CliError::Runtime(format!("parsing {}: {e}", p.display())))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;

    // Router identity is the set of interface addresses the router carries:
    // IR indices are assignment order, which churn legitimately shifts, but
    // a router keeps its addresses across epochs.
    let by_ifaces = |d: &snapshot::SnapshotData| -> BTreeMap<Vec<u32>, Asn> {
        d.routers
            .iter()
            .map(|r| {
                let mut key = r.ifaces.clone();
                key.sort_unstable();
                (key, r.asn)
            })
            .collect()
    };
    let (ra, rb) = (by_ifaces(&a), by_ifaces(&b));
    let routers_added = rb.keys().filter(|k| !ra.contains_key(*k)).count();
    let routers_removed = ra.keys().filter(|k| !rb.contains_key(*k)).count();
    let asn_reassigned = ra
        .iter()
        .filter(|(k, asn)| rb.get(*k).is_some_and(|other| other != *asn))
        .count();

    let annotations = |d: &snapshot::SnapshotData| -> BTreeMap<u32, Asn> {
        d.annotations.iter().map(|r| (r.addr, r.asn)).collect()
    };
    let (aa, ab) = (annotations(&a), annotations(&b));
    let common: Vec<bool> = aa
        .iter()
        .filter_map(|(addr, asn)| ab.get(addr).map(|other| other == asn))
        .collect();
    let agreement = if common.is_empty() {
        1.0
    } else {
        let agreeing = common.iter().filter(|same| **same).count();
        #[allow(clippy::cast_precision_loss)]
        let frac = agreeing as f64 / common.len() as f64;
        frac
    };

    let links = |d: &snapshot::SnapshotData| -> BTreeSet<snapshot::LinkRecord> {
        d.links.iter().copied().collect()
    };
    let (la, lb) = (links(&a), links(&b));
    let pa: BTreeSet<_> = a.prefixes.iter().copied().collect();
    let pb: BTreeSet<_> = b.prefixes.iter().copied().collect();

    let doc = SnapshotDiffDoc {
        schema: SNAPSHOT_DIFF_SCHEMA.to_string(),
        a: a_path.display().to_string(),
        b: b_path.display().to_string(),
        identical: a == b,
        routers_added,
        routers_removed,
        asn_reassigned,
        addrs_only_a: aa.len() - common.len(),
        addrs_only_b: ab.len() - common.len(),
        agreement,
        links_added: lb.difference(&la).count(),
        links_removed: la.difference(&lb).count(),
        prefixes_changed: pa.symmetric_difference(&pb).count(),
    };
    let mut json = serde_json::to_string_pretty(&doc)
        .map_err(|e| CliError::Runtime(format!("serializing diff: {e}")))?;
    json.push('\n');
    if doc.identical {
        Ok(json)
    } else {
        Err(CliError::Runtime(json))
    }
}

/// Validates a `--trace-out` artifact and summarizes its shape.
pub fn trace_check(path: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("reading {}: {e}", path.display())))?;
    let check = obs::trace::validate_chrome_json(&text)
        .map_err(|e| CliError::Runtime(format!("{}: invalid trace: {e}", path.display())))?;
    Ok(format!(
        "{}: valid {} — {} events on {} tracks, {} dropped\n",
        path.display(),
        obs::trace::TRACE_SCHEMA,
        check.events,
        check.tracks,
        check.dropped
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::names;
    use obs::{MockClock, Recorder};

    fn write_report(rec: &Recorder, tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "bdrmapit-diff-test-{}-{tag}.json",
            std::process::id()
        ));
        std::fs::write(&path, rec.report().to_json()).unwrap();
        path
    }

    fn recorder_with(iterations: u64, cache_hits: u64) -> Recorder {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        {
            let _s = rec.span(names::PHASE_REFINE);
            clock.advance(2_000_000);
        }
        rec.add(names::REFINE_ITERATIONS, iterations);
        rec.add_exec(names::EXEC_CACHE_HITS, cache_hits);
        rec
    }

    #[test]
    fn agreeing_reports_diff_clean() {
        let a = write_report(&recorder_with(3, 10), "clean-a");
        let b = write_report(&recorder_with(3, 99), "clean-b");
        let out = report_diff(&a, &b, None).unwrap();
        assert!(out.contains("deterministic metrics agree"), "{out}");
        // Exec divergence is reported but not fatal.
        assert!(out.contains("asrel.cache_hits: 10 -> 99"), "{out}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn deterministic_divergence_is_an_error_carrying_the_diff() {
        let a = write_report(&recorder_with(3, 10), "div-a");
        let b = write_report(&recorder_with(4, 10), "div-b");
        let err = report_diff(&a, &b, None).unwrap_err();
        let CliError::Runtime(text) = err else {
            panic!("expected runtime error")
        };
        assert!(text.contains("DIVERGENCE"), "{text}");
        assert!(text.contains("refine.iterations: 3 -> 4 (+1)"), "{text}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn missing_and_malformed_inputs_are_runtime_errors() {
        let missing = Path::new("/nonexistent/report.json");
        assert!(matches!(
            report_diff(missing, missing, None),
            Err(CliError::Runtime(_))
        ));
        let bad =
            std::env::temp_dir().join(format!("bdrmapit-diff-bad-{}.json", std::process::id()));
        std::fs::write(&bad, "not json").unwrap();
        assert!(matches!(
            report_diff(&bad, &bad, None),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(trace_check(&bad), Err(CliError::Runtime(_))));
        assert!(matches!(
            snapshot_diff(&bad, &bad),
            Err(CliError::Runtime(_))
        ));
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn epoch_flag_requires_a_churn_bundle_and_vice_versa() {
        let plain = write_report(&recorder_with(3, 10), "epoch-plain");
        // --epoch against a plain run report: refused.
        let err = report_diff(&plain, &plain, Some((0, 0))).unwrap_err();
        assert!(err.to_string().contains("plain run report"), "{err}");
        // A churn bundle without --epoch: refused, with a hint.
        let bundle_path = std::env::temp_dir().join(format!(
            "bdrmapit-diff-test-{}-epoch-bundle.json",
            std::process::id()
        ));
        let bundle = churn::ChurnReport {
            schema: churn::REPORT_SCHEMA.to_string(),
            epochs: vec![recorder_with(3, 10).report(), recorder_with(4, 10).report()],
        };
        std::fs::write(&bundle_path, bundle.to_json()).unwrap();
        let err = report_diff(&bundle_path, &bundle_path, None).unwrap_err();
        assert!(err.to_string().contains("--epoch"), "{err}");
        // Same epoch on both sides agrees; different epochs diverge.
        let out = report_diff(&bundle_path, &bundle_path, Some((1, 1))).unwrap();
        assert!(out.contains("deterministic metrics agree"), "{out}");
        let err = report_diff(&bundle_path, &bundle_path, Some((0, 1))).unwrap_err();
        assert!(err.to_string().contains("DIVERGENCE"), "{err}");
        // Out-of-range epoch: runtime error naming the bound.
        let err = report_diff(&bundle_path, &bundle_path, Some((9, 9))).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "{err}");
        let _ = std::fs::remove_file(&plain);
        let _ = std::fs::remove_file(&bundle_path);
    }

    #[test]
    fn snapshot_diff_distinguishes_identical_from_changed() {
        use snapshot::{AnnRecord, RouterRecord, SnapshotData};
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let base = SnapshotData {
            annotations: vec![
                AnnRecord {
                    addr: 1,
                    ir: 0,
                    asn: Asn(10),
                    origin: Asn(10),
                    conn: Asn(0),
                },
                AnnRecord {
                    addr: 2,
                    ir: 1,
                    asn: Asn(20),
                    origin: Asn(20),
                    conn: Asn(0),
                },
            ],
            links: vec![],
            routers: vec![
                RouterRecord {
                    ir: 0,
                    asn: Asn(10),
                    ifaces: vec![1],
                },
                RouterRecord {
                    ir: 1,
                    asn: Asn(20),
                    ifaces: vec![2],
                },
            ],
            prefixes: vec![],
        };
        let mut changed = base.clone();
        changed.routers[1].asn = Asn(30); // reassignment
        changed.annotations[1].asn = Asn(30); // one of two common addrs flips
        changed.routers.push(RouterRecord {
            ir: 2,
            asn: Asn(40),
            ifaces: vec![9],
        });
        let write = |tag: &str, d: &SnapshotData| {
            let p = dir.join(format!("bdrmapit-snapdiff-{pid}-{tag}.snap"));
            std::fs::write(&p, snapshot::to_bytes(d)).unwrap();
            p
        };
        let pa = write("a", &base);
        let pb = write("b", &changed);
        // Identical: Ok, identical=true.
        let out = snapshot_diff(&pa, &pa).unwrap();
        let doc: SnapshotDiffDoc = serde_json::from_str(&out).unwrap();
        assert!(doc.identical);
        assert_eq!(doc.schema, SNAPSHOT_DIFF_SCHEMA);
        assert_eq!((doc.routers_added, doc.routers_removed), (0, 0));
        // Changed: Err carrying the JSON, exit code 1.
        let err = snapshot_diff(&pa, &pb).unwrap_err();
        assert_eq!(err.exit_code(), crate::EXIT_RUNTIME);
        let CliError::Runtime(text) = err else {
            panic!("expected runtime error")
        };
        let doc: SnapshotDiffDoc = serde_json::from_str(&text).unwrap();
        assert!(!doc.identical);
        assert_eq!(doc.routers_added, 1, "{text}");
        assert_eq!(doc.routers_removed, 0, "{text}");
        assert_eq!(doc.asn_reassigned, 1, "{text}");
        assert!((doc.agreement - 0.5).abs() < 1e-9, "{text}");
        let _ = std::fs::remove_file(&pa);
        let _ = std::fs::remove_file(&pb);
    }

    #[test]
    fn trace_check_accepts_a_real_export() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock_tracing(false, Box::new(clock.clone()), 64);
        {
            let _s = rec.span(names::PHASE_GRAPH);
            clock.advance(1_000_000);
        }
        let path =
            std::env::temp_dir().join(format!("bdrmapit-trace-check-{}.json", std::process::id()));
        std::fs::write(&path, rec.tracer().finish().to_chrome_json()).unwrap();
        let out = trace_check(&path).unwrap();
        assert!(out.contains("valid bdrmapit.trace/v1"), "{out}");
        let _ = std::fs::remove_file(&path);
    }
}
