//! The serving path: `snapshot write`, `snapshot inspect`, `serve`, and
//! `query` — pipeline output frozen into a binary snapshot, served over
//! TCP, and queried point-wise.

use crate::{Cli, CliError};
use eval::Scenario;
use serve::{Client, Request, Server, ServerConfig};
use snapshot::{Snapshot, SnapshotData};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn runtime(context: &str, e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(format!("{context}: {e}"))
}

/// `snapshot write --out FILE`: runs the synthetic pipeline at the
/// configured scale/seed and freezes the result (annotations, links,
/// routers, prefix→origin table) into a `bdrmapit.snapshot/v1` file.
pub fn snapshot_write(cli: &Cli, out: &Path, rec: &obs::Recorder) -> Result<String, CliError> {
    let mut s = Scenario::build_with_obs(cli.scale.config(cli.seed), rec.clone());
    s.threads = cli.threads;
    let bundle = s.campaign(cli.vps, true, cli.seed);
    let cfg = bdrmapit_core::Config {
        threads: cli.threads,
        ..bdrmapit_core::Config::default()
    };
    let result = eval::experiments::run_bdrmapit(&s, &bundle, cfg);
    let data = SnapshotData::from_annotated(&result, &s.rib.origin_table());
    let mut f = std::fs::File::create(out).map_err(|e| runtime("creating snapshot file", e))?;
    snapshot::write_snapshot(&mut f, &data).map_err(|e| runtime("writing snapshot", e))?;
    Ok(format!(
        "wrote {}: {} annotations, {} links, {} routers, {} prefixes\n",
        out.display(),
        data.annotations.len(),
        data.links.len(),
        data.routers.len(),
        data.prefixes.len()
    ))
}

/// `snapshot inspect --file FILE`: header, section table, record counts;
/// fails with the codec's typed errors on any corruption.
pub fn snapshot_inspect(file: &Path) -> Result<String, CliError> {
    let bytes = std::fs::read(file).map_err(|e| runtime("reading snapshot", e))?;
    snapshot::inspect(&bytes).map_err(|e| runtime("invalid snapshot", e))
}

/// `serve --snapshot FILE`: loads the snapshot and serves queries until the
/// process is terminated.
pub fn serve_cmd(
    file: &Path,
    addr: &str,
    workers: usize,
    timeout_secs: u64,
    rec: &obs::Recorder,
) -> Result<String, CliError> {
    let snap = Snapshot::load_path(file).map_err(|e| runtime("loading snapshot", e))?;
    let stats = snap.stats();
    let server = Server::bind(
        addr,
        Arc::new(snap),
        ServerConfig {
            workers,
            read_timeout: Duration::from_secs(timeout_secs.max(1)),
        },
        rec.clone(),
    )
    .map_err(|e| runtime(&format!("binding {addr}"), e))?;
    // Announce readiness on stdout *before* blocking so scripts (and the CI
    // smoke job) can wait for this line instead of sleeping.
    println!(
        "serving {} on {} ({} annotations, {} links, {} routers, {} prefixes; {workers} workers)",
        file.display(),
        server.local_addr(),
        stats.annotations,
        stats.links,
        stats.routers,
        stats.prefixes
    );
    server.run().map_err(|e| runtime("serving", e))?;
    Ok(String::new())
}

/// Builds the protocol request for a `query` verb + optional argument.
/// Argument shape errors are usage errors: the command line itself is wrong.
pub fn build_request(verb: &str, arg: Option<&str>) -> Result<Request, CliError> {
    let need =
        |what: &str| CliError::Usage(crate::ParseError(format!("query {verb} requires {what}")));
    let mut req = Request::verb(verb);
    match verb {
        "lookup_addr" | "lookup_prefix" => {
            let a = arg.ok_or_else(|| need("an IPv4 address"))?;
            if net_types::parse_ipv4(a).is_none() {
                return Err(CliError::Usage(crate::ParseError(format!(
                    "bad IPv4 address {a:?}"
                ))));
            }
            req.addr = Some(a.to_string());
        }
        "router" => {
            let a = arg.ok_or_else(|| need("a router id"))?;
            req.ir =
                Some(a.parse().map_err(|_| {
                    CliError::Usage(crate::ParseError(format!("bad router id {a:?}")))
                })?);
        }
        "links_of_as" => {
            let a = arg.ok_or_else(|| need("an AS number"))?;
            req.asn =
                Some(a.parse().map_err(|_| {
                    CliError::Usage(crate::ParseError(format!("bad AS number {a:?}")))
                })?);
        }
        "stats" => {
            if arg.is_some() {
                return Err(CliError::Usage(crate::ParseError(
                    "query stats takes no argument".into(),
                )));
            }
        }
        other => {
            return Err(CliError::Usage(crate::ParseError(format!(
                "unknown query verb {other:?}"
            ))))
        }
    }
    Ok(req)
}

/// `query VERB [ARG] --server ADDR`: one request, one JSON response on
/// stdout. Exit semantics follow grep: a hit is success, a miss or any
/// transport failure is a runtime error.
pub fn query_cmd(server: &str, verb: &str, arg: Option<&str>) -> Result<String, CliError> {
    let req = build_request(verb, arg)?;
    let mut client =
        Client::connect(server).map_err(|e| runtime(&format!("connecting to {server}"), e))?;
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| runtime("configuring connection", e))?;
    let resp = client
        .call(&req)
        .map_err(|e| runtime(&format!("querying {server}"), e))?;
    if !resp.ok {
        return Err(CliError::Runtime(format!(
            "server rejected the request: {}",
            resp.error.as_deref().unwrap_or("unknown error")
        )));
    }
    let text = serde_json::to_string_pretty(&resp).map_err(|e| runtime("rendering response", e))?;
    if resp.found == Some(false) {
        return Err(CliError::Runtime(format!("no result for {verb}:\n{text}")));
    }
    Ok(text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EXIT_RUNTIME, EXIT_USAGE};
    use net_types::Asn;
    use snapshot::AnnRecord;

    fn running_server() -> serve::RunningServer {
        let data = SnapshotData {
            annotations: vec![AnnRecord {
                addr: net_types::parse_ipv4("10.0.0.1").unwrap(),
                ir: 0,
                asn: Asn(100),
                origin: Asn(100),
                conn: Asn(0),
            }],
            prefixes: vec![("10.0.0.0/24".parse().unwrap(), Asn(100))],
            ..SnapshotData::default()
        };
        Server::bind(
            "127.0.0.1:0",
            Arc::new(Snapshot::from_data(data)),
            ServerConfig::default(),
            obs::Recorder::disabled(),
        )
        .unwrap()
        .spawn_background()
    }

    #[test]
    fn query_hit_exits_zero() {
        let running = running_server();
        let server = running.addr().to_string();
        let out = query_cmd(&server, "lookup_addr", Some("10.0.0.1")).unwrap();
        assert!(out.contains("\"asn\": 100"), "{out}");
        let out = query_cmd(&server, "lookup_prefix", Some("10.0.0.200")).unwrap();
        assert!(out.contains("10.0.0.0/24"), "{out}");
        let out = query_cmd(&server, "stats", None).unwrap();
        assert!(out.contains("\"annotations\": 1"), "{out}");
        running.shutdown();
    }

    #[test]
    fn query_miss_is_a_runtime_error() {
        let running = running_server();
        let server = running.addr().to_string();
        let err = query_cmd(&server, "lookup_addr", Some("9.9.9.9")).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);
        assert!(err.to_string().contains("no result"), "{err}");
        running.shutdown();
    }

    #[test]
    fn query_connection_refused_is_a_runtime_error() {
        // A bound-then-dropped listener yields a port nothing listens on.
        let addr = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .to_string();
        let err = query_cmd(&addr, "stats", None).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);
        assert!(err.to_string().contains("connecting"), "{err}");
    }

    #[test]
    fn query_argument_shape_errors_are_usage_errors() {
        for (verb, arg) in [
            ("lookup_addr", None),
            ("lookup_addr", Some("not-an-ip")),
            ("lookup_prefix", Some("300.0.0.1")),
            ("router", Some("xyz")),
            ("router", None),
            ("links_of_as", Some("-3")),
            ("stats", Some("extra")),
            ("subspace_scan", Some("10.0.0.1")),
        ] {
            // Shape is checked before any connection: no server required.
            let err = build_request(verb, arg).unwrap_err();
            assert_eq!(err.exit_code(), EXIT_USAGE, "{verb} {arg:?}");
        }
    }

    #[test]
    fn snapshot_inspect_missing_and_corrupt_files_are_runtime_errors() {
        let err = snapshot_inspect(Path::new("/nonexistent/f.snap")).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);

        let path =
            std::env::temp_dir().join(format!("bdrmapit-test-badsnap-{}.snap", std::process::id()));
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let err = snapshot_inspect(&path).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);
        assert!(err.to_string().contains("invalid snapshot"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_write_then_inspect_then_serve_then_query() {
        let path =
            std::env::temp_dir().join(format!("bdrmapit-test-snap-{}.snap", std::process::id()));
        let cli = crate::parse(&[
            "snapshot".to_string(),
            "write".to_string(),
            "--out".to_string(),
            path.to_str().unwrap().to_string(),
            "--scale".to_string(),
            "tiny".to_string(),
            "--vps".to_string(),
            "4".to_string(),
        ])
        .unwrap();
        let out = crate::run(&cli).unwrap();
        assert!(out.contains("wrote"), "{out}");

        let text = snapshot_inspect(&path).unwrap();
        assert!(text.contains("bdrmapit.snapshot/v1"), "{text}");

        let snap = Snapshot::load_path(&path).unwrap();
        let first = snap.data().annotations[0];
        let running = Server::bind(
            "127.0.0.1:0",
            Arc::new(snap),
            ServerConfig::default(),
            obs::Recorder::disabled(),
        )
        .unwrap()
        .spawn_background();
        let server = running.addr().to_string();
        let out = query_cmd(
            &server,
            "lookup_addr",
            Some(&net_types::format_ipv4(first.addr)),
        )
        .unwrap();
        assert!(out.contains(&format!("\"asn\": {}", first.asn.0)), "{out}");
        running.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}
