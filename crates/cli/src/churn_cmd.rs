//! The `pipeline --churn` front end: runs the churn loop, writes one
//! snapshot per epoch plus the per-epoch report bundle and (optionally) the
//! `bdrmapit.bench-churn/v1` cost artifact, and renders a per-epoch summary.

use crate::{Cli, CliError};
use churn::{BenchChurn, ChurnOptions, ChurnReport};
use std::fmt::Write as _;
use std::path::Path;

/// Runs `pipeline --churn`. Snapshots land in `dir` as `epoch-NNN.snap`
/// alongside `churn-report.json`; `bench_out` additionally receives the cost
/// benchmark. With `gate`, the run fails unless every rib-stable churn epoch
/// is strictly cheaper incrementally than its full recompute.
pub fn churn_pipeline(
    cli: &Cli,
    epochs: usize,
    dir: &Path,
    bench_out: Option<&Path>,
    gate: bool,
    rec: &obs::Recorder,
) -> Result<String, CliError> {
    let rt = CliError::Runtime;
    std::fs::create_dir_all(dir).map_err(|e| rt(format!("creating {}: {e}", dir.display())))?;
    // Per-epoch reports come from recorder snapshot deltas, so churn needs a
    // live recorder even when the session-level one is disabled.
    let rec = if rec.is_enabled() {
        rec.clone()
    } else {
        obs::Recorder::new(false)
    };
    let opts = ChurnOptions::new(epochs, cli.vps, cli.threads, cli.seed);
    let run = churn::run_churn(cli.scale.config(cli.seed), &opts, &rec).map_err(rt)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "churn: {} epochs ({} events scheduled), scale {}, seed {}",
        epochs,
        run.schedule.event_count(),
        cli.scale.name(),
        cli.seed
    );
    for e in &run.epochs {
        let snap_path = dir.join(format!("epoch-{:03}.snap", e.epoch));
        std::fs::write(&snap_path, &e.snapshot)
            .map_err(|err| rt(format!("writing {}: {err}", snap_path.display())))?;
        if e.epoch == 0 {
            let _ = writeln!(
                out,
                "  epoch 0 (baseline): {} pairs probed, {} shards converged, work {}",
                e.total_pairs, e.total_shards, e.incremental.work
            );
        } else {
            let _ = writeln!(
                out,
                "  epoch {}: {} events ({} applied{}), pairs {}/{}, shards {}/{}, \
                 work {} vs full {}, identical",
                e.epoch,
                e.events.len(),
                e.applied,
                if e.rib_changed { ", rib rebuilt" } else { "" },
                e.dirty_pairs,
                e.total_pairs,
                e.dirty_shards,
                e.total_shards,
                e.incremental.work,
                e.full.work
            );
        }
    }

    let report_path = dir.join("churn-report.json");
    std::fs::write(&report_path, ChurnReport::from_run(&run).to_json())
        .map_err(|e| rt(format!("writing {}: {e}", report_path.display())))?;
    let _ = writeln!(
        out,
        "wrote {} snapshots + {}",
        run.epochs.len(),
        report_path.display()
    );

    let bench = BenchChurn::from_run(&run, cli.scale.name(), cli.seed, cli.threads);
    if let Some(path) = bench_out {
        std::fs::write(path, bench.to_json())
            .map_err(|e| rt(format!("writing {}: {e}", path.display())))?;
        let _ = writeln!(out, "wrote {}", path.display());
    }
    let _ = writeln!(
        out,
        "total work: incremental {} vs full {}",
        bench.incremental_work_total, bench.full_work_total
    );
    if gate {
        bench.gate().map_err(rt)?;
        let _ = writeln!(out, "churn gate: passed");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, run, Command, EXIT_RUNTIME};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn churn_pipeline_writes_snapshots_report_and_bench() {
        let dir = std::env::temp_dir().join(format!("bdrmapit-churn-cmd-{}", std::process::id()));
        let bench_path = dir.join("bench.json");
        let cli = parse(&args(&[
            "pipeline",
            "--churn",
            "--epochs",
            "2",
            "--scale",
            "tiny",
            "--vps",
            "4",
            "--seed",
            "42",
            "--churn-dir",
            dir.to_str().unwrap(),
            "--bench-out",
            bench_path.to_str().unwrap(),
            "--churn-gate",
        ]))
        .unwrap();
        assert!(matches!(cli.command, Command::Churn { .. }));
        let out = run(&cli).unwrap();
        assert!(out.contains("epoch 0 (baseline)"), "{out}");
        assert!(out.contains("churn gate: passed"), "{out}");

        // The three snapshots exist and epoch 0 differs from nothing —
        // `snapshot diff` sees a file as identical to itself...
        for epoch in 0..=2 {
            assert!(dir.join(format!("epoch-{epoch:03}.snap")).exists());
        }
        let snap0 = dir.join("epoch-000.snap");
        let diff_cli = parse(&args(&[
            "snapshot",
            "diff",
            snap0.to_str().unwrap(),
            snap0.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&diff_cli).unwrap();
        assert!(out.contains("\"identical\": true"), "{out}");

        // ...and the bench artifact validates and passes its own gate.
        let bench = BenchChurn::from_json(&std::fs::read_to_string(&bench_path).unwrap()).unwrap();
        assert_eq!(bench.schema, churn::BENCH_SCHEMA);
        assert_eq!(bench.epochs.len(), 3);
        assert!(bench.gate().is_ok());

        // The report bundle diffs epoch-to-epoch through the CLI: the same
        // epoch agrees with itself.
        let report_path = dir.join("churn-report.json");
        let diff_cli = parse(&args(&[
            "report",
            "diff",
            report_path.to_str().unwrap(),
            report_path.to_str().unwrap(),
            "--epoch",
            "1",
        ]))
        .unwrap();
        let out = run(&diff_cli).unwrap();
        assert!(out.contains("deterministic metrics agree"), "{out}");
        // Without --epoch the bundle is refused at runtime (not usage).
        let diff_cli = parse(&args(&[
            "report",
            "diff",
            report_path.to_str().unwrap(),
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&diff_cli).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn differing_epoch_snapshots_exit_one_with_structural_json() {
        let dir =
            std::env::temp_dir().join(format!("bdrmapit-churn-snapdiff-{}", std::process::id()));
        let cli = parse(&args(&[
            "pipeline",
            "--churn",
            "--epochs",
            "3",
            "--scale",
            "tiny",
            "--vps",
            "4",
            "--seed",
            "42",
            "--churn-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cli).unwrap();
        // Some epoch differs structurally from the baseline (the schedule
        // always applies at least one link event per epoch when it can).
        let snap0 = dir.join("epoch-000.snap");
        let mut saw_difference = false;
        for epoch in 1..=3 {
            let snap = dir.join(format!("epoch-{epoch:03}.snap"));
            let diff_cli = parse(&args(&[
                "snapshot",
                "diff",
                snap0.to_str().unwrap(),
                snap.to_str().unwrap(),
            ]))
            .unwrap();
            match run(&diff_cli) {
                Ok(_) => {}
                Err(err) => {
                    assert_eq!(err.exit_code(), EXIT_RUNTIME);
                    let text = err.to_string();
                    assert!(text.contains("bdrmapit.snapshot-diff/v1"), "{text}");
                    assert!(text.contains("\"identical\": false"), "{text}");
                    saw_difference = true;
                }
            }
        }
        assert!(saw_difference, "no epoch diverged from the baseline");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
