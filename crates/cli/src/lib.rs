//! Command-line plumbing for the `bdrmapit` binary.
//!
//! The library half exists so argument parsing and command dispatch are unit
//! testable; `main.rs` is a thin shell around [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn_cmd;
pub mod dataset;
pub mod diff;
pub mod service;

use eval::experiments::{aliases, heuristics, snapshots, stats, vps};
use eval::Scenario;
use std::fmt::Write as _;
use std::path::PathBuf;
use topo_gen::GeneratorConfig;

/// Which synthetic Internet scale to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// `GeneratorConfig::tiny` — seconds, for smoke runs.
    Tiny,
    /// `GeneratorConfig::small` — the thread-sweep benchmark scale.
    Small,
    /// `GeneratorConfig::default` — the standard experiment scale.
    Default,
    /// `GeneratorConfig::itdk_scale` — the ITDK-shaped experiment scale.
    Itdk,
    /// `GeneratorConfig::large` — ~1e5 routers; the pool speedup-contract
    /// scale (release mode only).
    Large,
}

impl Scale {
    /// The scale's CLI label (what `--scale` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Itdk => "itdk",
            Scale::Large => "large",
        }
    }

    fn config(self, seed: u64) -> GeneratorConfig {
        match self {
            Scale::Tiny => GeneratorConfig::tiny(seed),
            Scale::Small => GeneratorConfig::small(seed),
            Scale::Default => GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            Scale::Itdk => GeneratorConfig::itdk_scale(seed),
            Scale::Large => GeneratorConfig::large(seed),
        }
    }
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// The experiment or action to run.
    pub command: Command,
    /// Topology seed.
    pub seed: u64,
    /// Scale selection.
    pub scale: Scale,
    /// Number of VPs for Internet-wide experiments.
    pub vps: usize,
    /// Worker threads for the probe campaign, phase-1 graph build, and
    /// refinement (0 = all available parallelism). Output is bit-identical
    /// for every value.
    pub threads: usize,
    /// Write the JSON [`obs::RunReport`] here after the run.
    pub report: Option<PathBuf>,
    /// Print live phase enter/exit lines on stderr.
    pub trace: bool,
    /// Write the Chrome trace-event document (`bdrmapit.trace/v1`, loadable
    /// in Perfetto) here after the run.
    pub trace_out: Option<PathBuf>,
}

/// Supported subcommands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Print the generated Internet's summary.
    Generate,
    /// Run a campaign and print corpus statistics (Table 3 / §5).
    Stats,
    /// Fig. 15.
    Fig15,
    /// Figs. 16 & 17.
    Fig16,
    /// Figs. 18 & 19.
    Fig18,
    /// Fig. 20 + §7.4.
    Fig20,
    /// Heuristic ablations.
    Ablation,
    /// Everything, in figure order.
    All,
    /// Write a dataset bundle to disk.
    Probe {
        /// Output directory.
        out: PathBuf,
    },
    /// Run bdrmapIT from a dataset bundle on disk.
    Infer {
        /// Input directory.
        input: PathBuf,
    },
    /// Run the full synthetic pipeline end to end (all five phases).
    Pipeline,
    /// Step a churn schedule epoch by epoch (`pipeline --churn`): one
    /// snapshot per epoch, incremental-vs-full cost accounting, per-epoch
    /// reports.
    Churn {
        /// Churn epochs after the baseline.
        epochs: usize,
        /// Output directory for `epoch-NNN.snap` files and
        /// `churn-report.json`.
        dir: PathBuf,
        /// Also write the `bdrmapit.bench-churn/v1` artifact here.
        bench_out: Option<PathBuf>,
        /// Enforce the incremental-cheaper-than-full cost gate.
        gate: bool,
    },
    /// Run the pipeline and freeze the result into a binary snapshot.
    SnapshotWrite {
        /// Output snapshot file.
        out: PathBuf,
    },
    /// Print a snapshot's header, section table, and record counts.
    SnapshotInspect {
        /// Snapshot file to inspect.
        file: PathBuf,
    },
    /// Structurally compare two snapshots; exits nonzero when they differ.
    SnapshotDiff {
        /// Baseline snapshot.
        a: PathBuf,
        /// Candidate snapshot.
        b: PathBuf,
    },
    /// Serve a snapshot over TCP until terminated.
    Serve {
        /// Snapshot file to load.
        snapshot: PathBuf,
        /// Listen address (`host:port`; port 0 = OS-assigned).
        addr: String,
        /// Worker threads.
        workers: usize,
        /// Per-connection read timeout in seconds.
        timeout_secs: u64,
    },
    /// Send one query to a running server.
    Query {
        /// Server address (`host:port`).
        server: String,
        /// Protocol verb.
        verb: String,
        /// The verb's argument (address, router id, or AS number).
        arg: Option<String>,
    },
    /// Compare two run reports; exits nonzero when the deterministic
    /// metrics diverge.
    ReportDiff {
        /// Baseline report.
        a: PathBuf,
        /// Candidate report.
        b: PathBuf,
        /// For churn-report bundles: the epoch pair to compare
        /// (`--epoch X` compares epoch X of both, `--epoch X:Y` compares
        /// A's epoch X against B's epoch Y).
        epoch: Option<(usize, usize)>,
    },
    /// Validate a `--trace-out` artifact and print its shape.
    TraceCheck {
        /// Trace file to validate.
        file: PathBuf,
    },
    /// Usage text.
    Help,
}

/// Parse errors carry the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Exit code for a successful run.
pub const EXIT_SUCCESS: u8 = 0;
/// Exit code for a runtime failure (I/O, invalid bundle, failed report
/// validation) — the arguments were fine, the run was not.
pub const EXIT_RUNTIME: u8 = 1;
/// Exit code for a usage error (bad arguments); the conventional `EX_USAGE`
/// family distinguishes "you called it wrong" from "it failed".
pub const EXIT_USAGE: u8 = 2;

/// Everything that can go wrong after `main` takes over: bad arguments or a
/// failed run. Each variant maps to a distinct process exit code so scripts
/// and CI can tell the two apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// The command line did not parse ([`EXIT_USAGE`]).
    Usage(ParseError),
    /// The run itself failed ([`EXIT_RUNTIME`]).
    Runtime(String),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Runtime(_) => EXIT_RUNTIME,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Runtime(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ParseError> for CliError {
    fn from(e: ParseError) -> CliError {
        CliError::Usage(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
bdrmapit — reproduce 'Pushing the Boundaries with bdrmapIT' (IMC 2018)

USAGE:
    bdrmapit <COMMAND> [--seed N] [--scale tiny|small|default|itdk|large] [--vps N] [--threads N]
                       [--report FILE] [--trace]

COMMANDS:
    probe --out DIR    write a synthetic dataset bundle (traces.jsonl, nodes.txt,
                       as-rel.txt, prefix2as.txt, delegated-extended.txt, ixps.json,
                       truth.json) to DIR
    infer --in DIR     run bdrmapIT from a bundle; writes annotations.csv/links.csv
    pipeline    run the full synthetic pipeline end to end: generate the
                topology, probe, resolve aliases, build the IR graph, refine
    pipeline --churn --churn-dir DIR [--epochs N] [--bench-out FILE] [--churn-gate]
                step a seed-derived churn schedule epoch by epoch: re-probe
                only dirtied (vp,dst) pairs, re-converge only dirtied shards,
                prove each epoch byte-identical to a full recompute; writes
                epoch-NNN.snap + churn-report.json to DIR and (with
                --bench-out) a bdrmapit.bench-churn/v1 cost artifact.
                --churn-gate fails the run unless incremental work stays
                below full-recompute work              [default epochs: 5]
    snapshot write --out FILE
                run the pipeline and freeze the result into a binary
                bdrmapit.snapshot/v1 file (annotations, links, routers,
                prefix->origin table; checksummed sections)
    snapshot inspect --file FILE
                print a snapshot's header, section table, and record counts
                (doubles as an integrity check)
    snapshot diff A.snap B.snap
                structurally compare two snapshots: routers added/removed,
                ASN reassignments, annotation agreement; prints JSON and,
                like grep, exits 0 when identical, 1 when they differ,
                2 on usage errors
    serve --snapshot FILE [--addr HOST:PORT] [--workers N] [--timeout SECS]
                serve the snapshot over TCP (newline-delimited JSON protocol)
                until terminated                 [default addr: 127.0.0.1:8642]
    query VERB [ARG] [--server HOST:PORT]
                query a running server; verbs: lookup_addr IP, lookup_prefix IP,
                router ID, links_of_as ASN, stats. A miss exits 1 (like grep)
    report diff A.json B.json [--epoch X[:Y]]
                compare two --report artifacts: counter deltas and phase
                wall-time ratios; exits 1 when deterministic metrics diverge.
                --epoch selects epochs from churn-report bundles: X compares
                epoch X of both, X:Y compares A's epoch X to B's epoch Y
    trace check FILE
                validate a --trace-out artifact (schema, timestamp order,
                span pairing) and print its shape
    generate    print a summary of the generated synthetic Internet
    stats       campaign statistics (Table 3 link labels, §5 coverage)
    fig15       single in-network VP: bdrmapIT vs bdrmap
    fig16       Internet-wide, no in-network VPs: bdrmapIT vs MAP-IT (+ Fig. 17)
    fig18       varying the number of VPs (+ Fig. 19)
    fig20       alias resolution impact (midar vs kapar, §7.4 no-alias)
    ablation    each bdrmapIT heuristic disabled in turn
    all         every experiment, in order
    help        this text

OPTIONS:
    --seed N     topology seed                    [default: 2018]
    --scale S    tiny | small | default | itdk | large   [default: default]
                 (large is the ~1e5-router speedup-contract scale; use a
                 release build)
    --vps N      vantage points                   [default: scale-dependent]
    --threads N  worker threads for the probe campaign, the phase-1 graph
                 build, and refinement; 0 = all cores, 1 = serial.
                 Results are identical for every value.   [default: 0]
    --report F   write the JSON run report (phase wall times, counters,
                 histograms; schema bdrmapit.run-report/v1) to F
    --trace      print live phase enter/exit lines on stderr
    --trace-out F
                 record per-worker trace events during the run and write a
                 Chrome trace-event document (schema bdrmapit.trace/v1,
                 loadable in Perfetto / chrome://tracing) to F

EXIT CODES:
    0  success        1  runtime failure        2  usage error
";

/// The default `host:port` for `serve` and `query`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8642";

/// Parses a command line (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut command = None;
    let mut seed = 2018u64;
    let mut scale = Scale::Default;
    let mut vps: Option<usize> = None;
    let mut threads = 0usize;
    let mut report: Option<PathBuf> = None;
    let mut trace = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut churn = false;
    let mut churn_epochs: Option<usize> = None;
    let mut churn_dir: Option<PathBuf> = None;
    let mut bench_out: Option<PathBuf> = None;
    let mut churn_gate = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "probe" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(Command::Probe {
                    out: PathBuf::new(),
                });
            }
            "infer" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(Command::Infer {
                    input: PathBuf::new(),
                });
            }
            "snapshot" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(match it.next().map(String::as_str) {
                    Some("write") => Command::SnapshotWrite {
                        out: PathBuf::new(),
                    },
                    Some("inspect") => Command::SnapshotInspect {
                        file: PathBuf::new(),
                    },
                    Some("diff") => {
                        let mut file = || {
                            it.next()
                                .filter(|v| !v.starts_with("--"))
                                .map(PathBuf::from)
                                .ok_or_else(|| {
                                    ParseError("snapshot diff requires two snapshot files".into())
                                })
                        };
                        let (a, b) = (file()?, file()?);
                        Command::SnapshotDiff { a, b }
                    }
                    other => {
                        return Err(ParseError(format!(
                            "snapshot requires write|inspect|diff, got {other:?}"
                        )))
                    }
                });
            }
            "serve" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(Command::Serve {
                    snapshot: PathBuf::new(),
                    addr: DEFAULT_SERVE_ADDR.to_string(),
                    workers: 4,
                    timeout_secs: 30,
                });
            }
            "report" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                match it.next().map(String::as_str) {
                    Some("diff") => {
                        let mut file = || {
                            it.next()
                                .filter(|v| !v.starts_with("--"))
                                .map(PathBuf::from)
                                .ok_or_else(|| {
                                    ParseError("report diff requires two report files".into())
                                })
                        };
                        let (a, b) = (file()?, file()?);
                        command = Some(Command::ReportDiff { a, b, epoch: None });
                    }
                    other => {
                        return Err(ParseError(format!("report requires diff, got {other:?}")))
                    }
                }
            }
            "trace" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                match it.next().map(String::as_str) {
                    Some("check") => {
                        let file = it
                            .next()
                            .filter(|v| !v.starts_with("--"))
                            .map(PathBuf::from)
                            .ok_or_else(|| ParseError("trace check requires FILE".into()))?;
                        command = Some(Command::TraceCheck { file });
                    }
                    other => {
                        return Err(ParseError(format!("trace requires check, got {other:?}")))
                    }
                }
            }
            "query" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                let verb = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| ParseError("query requires a verb".into()))?
                    .clone();
                let arg = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if arg.is_some() {
                    it.next();
                }
                command = Some(Command::Query {
                    server: DEFAULT_SERVE_ADDR.to_string(),
                    verb,
                    arg,
                });
            }
            "--out" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--out needs a value".into()))?;
                match &mut command {
                    Some(Command::Probe { out }) => *out = PathBuf::from(v),
                    Some(Command::SnapshotWrite { out }) => *out = PathBuf::from(v),
                    _ => {
                        return Err(ParseError(
                            "--out only applies to probe and snapshot write".into(),
                        ))
                    }
                }
            }
            "--in" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--in needs a value".into()))?;
                match &mut command {
                    Some(Command::Infer { input }) => *input = PathBuf::from(v),
                    _ => return Err(ParseError("--in only applies to infer".into())),
                }
            }
            "--file" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--file needs a value".into()))?;
                match &mut command {
                    Some(Command::SnapshotInspect { file }) => *file = PathBuf::from(v),
                    _ => return Err(ParseError("--file only applies to snapshot inspect".into())),
                }
            }
            "--snapshot" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--snapshot needs a value".into()))?;
                match &mut command {
                    Some(Command::Serve { snapshot, .. }) => *snapshot = PathBuf::from(v),
                    _ => return Err(ParseError("--snapshot only applies to serve".into())),
                }
            }
            "--addr" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--addr needs a value".into()))?;
                match &mut command {
                    Some(Command::Serve { addr, .. }) => *addr = v.clone(),
                    _ => return Err(ParseError("--addr only applies to serve".into())),
                }
            }
            "--server" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--server needs a value".into()))?;
                match &mut command {
                    Some(Command::Query { server, .. }) => *server = v.clone(),
                    _ => return Err(ParseError("--server only applies to query".into())),
                }
            }
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--workers needs a value".into()))?;
                let n = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad worker count {v:?}")))?;
                match &mut command {
                    Some(Command::Serve { workers, .. }) => *workers = n,
                    _ => return Err(ParseError("--workers only applies to serve".into())),
                }
            }
            "--timeout" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--timeout needs a value".into()))?;
                let n = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad timeout {v:?}")))?;
                match &mut command {
                    Some(Command::Serve { timeout_secs, .. }) => *timeout_secs = n,
                    _ => return Err(ParseError("--timeout only applies to serve".into())),
                }
            }
            "generate" | "stats" | "pipeline" | "fig15" | "fig16" | "fig17" | "fig18" | "fig19"
            | "fig20" | "ablation" | "all" | "help" | "--help" | "-h" => {
                let cmd = match arg.as_str() {
                    "generate" => Command::Generate,
                    "stats" => Command::Stats,
                    "pipeline" => Command::Pipeline,
                    "fig15" => Command::Fig15,
                    "fig16" | "fig17" => Command::Fig16,
                    "fig18" | "fig19" => Command::Fig18,
                    "fig20" => Command::Fig20,
                    "ablation" => Command::Ablation,
                    "all" => Command::All,
                    _ => Command::Help,
                };
                if command.is_some() {
                    return Err(ParseError(format!("duplicate command {arg:?}")));
                }
                command = Some(cmd);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--seed needs a value".into()))?;
                seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed {v:?}")))?;
            }
            "--scale" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--scale needs a value".into()))?;
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "default" => Scale::Default,
                    "itdk" => Scale::Itdk,
                    "large" => Scale::Large,
                    other => return Err(ParseError(format!("unknown scale {other:?}"))),
                };
            }
            "--vps" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--vps needs a value".into()))?;
                vps = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad vp count {v:?}")))?,
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--threads needs a value".into()))?;
                threads = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad thread count {v:?}")))?;
            }
            "--report" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--report needs a value".into()))?;
                report = Some(PathBuf::from(v));
            }
            "--trace" => trace = true,
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--trace-out needs a value".into()))?;
                trace_out = Some(PathBuf::from(v));
            }
            "--churn" => churn = true,
            "--epochs" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--epochs needs a value".into()))?;
                churn_epochs = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad epoch count {v:?}")))?,
                );
            }
            "--churn-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--churn-dir needs a value".into()))?;
                churn_dir = Some(PathBuf::from(v));
            }
            "--bench-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--bench-out needs a value".into()))?;
                bench_out = Some(PathBuf::from(v));
            }
            "--churn-gate" => churn_gate = true,
            "--epoch" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--epoch needs a value".into()))?;
                let bad = || ParseError(format!("bad epoch selector {v:?} (want N or X:Y)"));
                let pair = if let Some((x, y)) = v.split_once(':') {
                    (x.parse().map_err(|_| bad())?, y.parse().map_err(|_| bad())?)
                } else {
                    let n: usize = v.parse().map_err(|_| bad())?;
                    (n, n)
                };
                match &mut command {
                    Some(Command::ReportDiff { epoch, .. }) => *epoch = Some(pair),
                    _ => return Err(ParseError("--epoch only applies to report diff".into())),
                }
            }
            other => return Err(ParseError(format!("unknown argument {other:?}"))),
        }
    }
    let command = command.ok_or_else(|| ParseError("no command given".into()))?;
    let command = if churn {
        match command {
            Command::Pipeline => Command::Churn {
                epochs: churn_epochs.unwrap_or(5),
                dir: churn_dir.ok_or_else(|| {
                    ParseError("pipeline --churn requires --churn-dir DIR".into())
                })?,
                bench_out,
                gate: churn_gate,
            },
            _ => return Err(ParseError("--churn only applies to pipeline".into())),
        }
    } else if churn_epochs.is_some() || churn_dir.is_some() || bench_out.is_some() || churn_gate {
        return Err(ParseError(
            "--epochs/--churn-dir/--bench-out/--churn-gate require pipeline --churn".into(),
        ));
    } else {
        command
    };
    match &command {
        Command::Probe { out } if out.as_os_str().is_empty() => {
            return Err(ParseError("probe requires --out DIR".into()))
        }
        Command::Infer { input } if input.as_os_str().is_empty() => {
            return Err(ParseError("infer requires --in DIR".into()))
        }
        Command::SnapshotWrite { out } if out.as_os_str().is_empty() => {
            return Err(ParseError("snapshot write requires --out FILE".into()))
        }
        Command::SnapshotInspect { file } if file.as_os_str().is_empty() => {
            return Err(ParseError("snapshot inspect requires --file FILE".into()))
        }
        Command::Serve { snapshot, .. } if snapshot.as_os_str().is_empty() => {
            return Err(ParseError("serve requires --snapshot FILE".into()))
        }
        _ => {}
    }
    let default_vps = match scale {
        Scale::Tiny => 8,
        Scale::Small => 12,
        Scale::Default => 20,
        Scale::Itdk => 60,
        // Paper-scale vantage-point pool (the IMC'18 dataset has 109 VPs);
        // `large` generates 380 transit/access/R&E ASes to draw them from.
        Scale::Large => 109,
    };
    Ok(Cli {
        command,
        seed,
        scale,
        vps: vps.unwrap_or(default_vps),
        threads,
        report,
        trace,
        trace_out,
    })
}

/// Executes a parsed command line, returning the report text. Runtime
/// failures (I/O, invalid bundles, failed run-report validation) come back
/// as [`CliError::Runtime`]; `main` maps them to [`EXIT_RUNTIME`].
pub fn run(cli: &Cli) -> Result<String, CliError> {
    let rec = if cli.trace_out.is_some() {
        obs::Recorder::with_tracing(cli.trace, obs::trace::DEFAULT_TRACK_CAPACITY)
    } else if cli.trace || cli.report.is_some() {
        obs::Recorder::new(cli.trace)
    } else {
        obs::Recorder::disabled()
    };
    let out = run_with_obs(cli, &rec)?;
    if let Some(path) = &cli.report {
        let report = rec.report();
        if cli.command == Command::Pipeline {
            // Only the pipeline command traverses all five phases; validate
            // so CI can gate on the exit code alone.
            report.validate().map_err(CliError::Runtime)?;
        }
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", path.display())))?;
    }
    if let Some(path) = &cli.trace_out {
        let json = rec.tracer().finish().to_chrome_json();
        // The exporter sanitizes ring-wrap artifacts, so a failure here is
        // a bug, not bad input — surface it rather than writing a file the
        // `trace check` command would then reject.
        obs::trace::validate_chrome_json(&json)
            .map_err(|e| CliError::Runtime(format!("internal: trace export invalid: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", path.display())))?;
    }
    Ok(out)
}

fn run_with_obs(cli: &Cli, rec: &obs::Recorder) -> Result<String, CliError> {
    let runtime = |e: std::io::Error| CliError::Runtime(e.to_string());
    if cli.command == Command::Help {
        return Ok(USAGE.to_string());
    }
    // File-driven commands handle their own I/O and reporting.
    match &cli.command {
        Command::Probe { out } => {
            return dataset::write_bundle(
                out,
                cli.scale.config(cli.seed),
                cli.vps,
                cli.seed,
                cli.threads,
                rec,
            )
            .map_err(runtime);
        }
        Command::Infer { input } => {
            return dataset::infer_from_bundle(input, cli.threads, rec).map_err(runtime);
        }
        Command::SnapshotWrite { out } => return service::snapshot_write(cli, out, rec),
        Command::SnapshotInspect { file } => return service::snapshot_inspect(file),
        Command::Serve {
            snapshot,
            addr,
            workers,
            timeout_secs,
        } => return service::serve_cmd(snapshot, addr, *workers, *timeout_secs, rec),
        Command::Query { server, verb, arg } => {
            return service::query_cmd(server, verb, arg.as_deref());
        }
        Command::ReportDiff { a, b, epoch } => return diff::report_diff(a, b, *epoch),
        Command::SnapshotDiff { a, b } => return diff::snapshot_diff(a, b),
        Command::TraceCheck { file } => return diff::trace_check(file),
        Command::Churn {
            epochs,
            dir,
            bench_out,
            gate,
        } => return churn_cmd::churn_pipeline(cli, *epochs, dir, bench_out.as_deref(), *gate, rec),
        _ => {}
    }
    let mut s = Scenario::build_with_obs(cli.scale.config(cli.seed), rec.clone());
    s.threads = cli.threads;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "synthetic Internet: {} ASes, {} routers, {} interfaces, {} BGP prefixes, seed {}",
        s.net.graph.len(),
        s.net.topology.router_count(),
        s.net.topology.iface_count(),
        s.rib.prefix_count(),
        cli.seed
    );
    let _ = writeln!(
        out,
        "validation networks: Tier 1 = {}, L Access = {}, R&E 1 = {}, R&E 2 = {}\n",
        s.validation.tier1, s.validation.large_access, s.validation.re1, s.validation.re2
    );
    match cli.command {
        Command::Generate => {
            let links = s.net.true_links();
            let _ = writeln!(
                out,
                "ground truth: {} interdomain router-level links, {} AS relationships, {} IXPs",
                links.len(),
                s.net.graph.relationships.len(),
                s.net.graph.ixps.len()
            );
        }
        Command::Stats => {
            let bundle = s.campaign(cli.vps, true, cli.seed);
            let _ = writeln!(out, "{}", stats::corpus_stats(&s, &bundle).render());
        }
        Command::Pipeline => {
            let bundle = s.campaign(cli.vps, true, cli.seed);
            let cfg = bdrmapit_core::Config {
                threads: cli.threads,
                ..bdrmapit_core::Config::default()
            };
            let result = eval::experiments::run_bdrmapit(&s, &bundle, cfg);
            let _ = writeln!(
                out,
                "pipeline: {} traces from {} VPs, {} alias groups, {} IRs, \
                 {} refinement iterations, {} interdomain links",
                bundle.traces.len(),
                bundle.vps.len(),
                bundle.aliases.len(),
                result.graph.irs.len(),
                result.state.iterations,
                result.interdomain_links().len()
            );
        }
        Command::Fig15 => {
            // The paper reports 2016 and 2018 snapshot groups; the current
            // scenario serves as the 2016 snapshot.
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(out, "{}", snapshots::fig15_dual(&snaps, cli.seed).render());
            return Ok(out);
        }
        Command::Fig16 => {
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(
                out,
                "{}",
                snapshots::fig16_dual(&snaps, cli.vps, cli.seed).render()
            );
            return Ok(out);
        }
        Command::Fig18 => {
            let groups = groups_for(cli.vps);
            let _ = writeln!(out, "{}", vps::sweep(&s, &groups, 5, cli.seed).render());
        }
        Command::Fig20 => {
            let _ = writeln!(out, "{}", aliases::fig20(&s, cli.vps, cli.seed).render());
        }
        Command::Ablation => {
            let _ = writeln!(
                out,
                "{}",
                heuristics::ablation(&s, cli.vps, cli.seed).render()
            );
        }
        Command::All => {
            let bundle = s.campaign(cli.vps, true, cli.seed);
            let _ = writeln!(out, "{}", stats::corpus_stats(&s, &bundle).render());
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(out, "{}", snapshots::fig15_dual(&snaps, cli.seed).render());
            let _ = writeln!(
                out,
                "{}",
                snapshots::fig16_dual(&snaps, cli.vps, cli.seed).render()
            );
            let s = snaps.y2016;
            let groups = groups_for(cli.vps);
            let _ = writeln!(out, "{}", vps::sweep(&s, &groups, 5, cli.seed).render());
            let _ = writeln!(out, "{}", aliases::fig20(&s, cli.vps, cli.seed).render());
            let _ = writeln!(
                out,
                "{}",
                heuristics::ablation(&s, cli.vps, cli.seed).render()
            );
        }
        Command::Help
        | Command::Probe { .. }
        | Command::Infer { .. }
        | Command::Churn { .. }
        | Command::SnapshotWrite { .. }
        | Command::SnapshotInspect { .. }
        | Command::SnapshotDiff { .. }
        | Command::Serve { .. }
        | Command::Query { .. }
        | Command::ReportDiff { .. }
        | Command::TraceCheck { .. } => {
            unreachable!("handled above")
        }
    }
    Ok(out)
}

/// The paper sweeps 20/40/60/80 VPs; scale the ladder to the configured VP
/// budget (quarters of the doubled budget).
pub fn groups_for(vps: usize) -> Vec<usize> {
    let max = (vps * 2).max(4);
    (1..=4).map(|i| (max * i / 4).max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let cli = parse(&args(&["fig16"])).unwrap();
        assert_eq!(cli.command, Command::Fig16);
        assert_eq!(cli.seed, 2018);
        assert_eq!(cli.scale, Scale::Default);
        assert_eq!(cli.vps, 20);
        assert_eq!(cli.threads, 0, "--threads defaults to auto");
    }

    #[test]
    fn parse_options() {
        let cli = parse(&args(&[
            "fig18",
            "--seed",
            "7",
            "--scale",
            "tiny",
            "--vps",
            "5",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cli.command, Command::Fig18);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.vps, 5);
        assert_eq!(cli.threads, 4);
    }

    #[test]
    fn parse_aliases_fig17_fig19() {
        assert_eq!(parse(&args(&["fig17"])).unwrap().command, Command::Fig16);
        assert_eq!(parse(&args(&["fig19"])).unwrap().command, Command::Fig18);
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["bogus"])).is_err());
        assert!(parse(&args(&["fig15", "--seed"])).is_err());
        assert!(parse(&args(&["fig15", "--seed", "x"])).is_err());
        assert!(parse(&args(&["fig15", "--scale", "huge"])).is_err());
        assert!(parse(&args(&["fig15", "fig16"])).is_err());
        assert!(parse(&args(&["fig15", "--threads"])).is_err());
        assert!(parse(&args(&["fig15", "--threads", "many"])).is_err());
    }

    #[test]
    fn help_runs_without_building_a_scenario() {
        let cli = parse(&args(&["help"])).unwrap();
        assert_eq!(run(&cli).unwrap(), USAGE);
    }

    #[test]
    fn parse_report_and_trace() {
        let cli = parse(&args(&["pipeline", "--report", "r.json", "--trace"])).unwrap();
        assert_eq!(cli.command, Command::Pipeline);
        assert_eq!(cli.report, Some(PathBuf::from("r.json")));
        assert!(cli.trace);
        let cli = parse(&args(&["stats"])).unwrap();
        assert_eq!(cli.report, None);
        assert!(!cli.trace);
        assert!(parse(&args(&["pipeline", "--report"])).is_err());
    }

    #[test]
    fn exit_codes_distinguish_usage_from_runtime() {
        let usage = CliError::from(ParseError("bad".into()));
        assert_eq!(usage.exit_code(), EXIT_USAGE);
        let runtime = CliError::Runtime("io failed".into());
        assert_eq!(runtime.exit_code(), EXIT_RUNTIME);
        assert_ne!(EXIT_USAGE, EXIT_RUNTIME);
        assert_ne!(EXIT_USAGE, EXIT_SUCCESS);
        assert_ne!(EXIT_RUNTIME, EXIT_SUCCESS);
        // Display carries the message without decorating it; main adds the
        // "error:" prefix and (for usage errors) the usage text.
        assert_eq!(usage.to_string(), "invalid arguments: bad");
        assert_eq!(runtime.to_string(), "io failed");
    }

    #[test]
    fn runtime_failures_are_runtime_errors_not_usage() {
        // A well-formed command line pointing at a bundle that does not
        // exist: parse succeeds, run fails with EXIT_RUNTIME.
        let cli = parse(&args(&["infer", "--in", "/nonexistent/bundle-dir"])).unwrap();
        let err = run(&cli).unwrap_err();
        assert_eq!(err.exit_code(), EXIT_RUNTIME);
    }

    #[test]
    fn pipeline_tiny_writes_validated_report() {
        let path =
            std::env::temp_dir().join(format!("bdrmapit-test-report-{}.json", std::process::id()));
        let cli = parse(&args(&[
            "pipeline",
            "--scale",
            "tiny",
            "--vps",
            "4",
            "--report",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("pipeline:"), "{out}");
        let report = obs::RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.validate(), Ok(()));
        for phase in obs::names::MANDATORY_PHASES {
            assert!(report.phases.contains_key(*phase), "missing {phase}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_snapshot_commands() {
        let cli = parse(&args(&["snapshot", "write", "--out", "x.snap"])).unwrap();
        assert_eq!(
            cli.command,
            Command::SnapshotWrite {
                out: PathBuf::from("x.snap")
            }
        );
        let cli = parse(&args(&["snapshot", "inspect", "--file", "x.snap"])).unwrap();
        assert_eq!(
            cli.command,
            Command::SnapshotInspect {
                file: PathBuf::from("x.snap")
            }
        );
        assert!(parse(&args(&["snapshot"])).is_err());
        assert!(parse(&args(&["snapshot", "rewind"])).is_err());
        assert!(parse(&args(&["snapshot", "write"])).is_err());
        assert!(parse(&args(&["snapshot", "inspect"])).is_err());
        assert!(parse(&args(&["snapshot", "inspect", "--out", "x"])).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        let cli = parse(&args(&["serve", "--snapshot", "x.snap"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                snapshot: PathBuf::from("x.snap"),
                addr: DEFAULT_SERVE_ADDR.to_string(),
                workers: 4,
                timeout_secs: 30,
            }
        );
        let cli = parse(&args(&[
            "serve",
            "--snapshot",
            "x.snap",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--timeout",
            "5",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                snapshot: PathBuf::from("x.snap"),
                addr: "0.0.0.0:9000".to_string(),
                workers: 8,
                timeout_secs: 5,
            }
        );
        assert!(parse(&args(&["serve"])).is_err(), "snapshot is required");
        assert!(parse(&args(&["serve", "--snapshot", "x", "--workers", "lots"])).is_err());
        assert!(parse(&args(&["pipeline", "--addr", "x"])).is_err());
    }

    #[test]
    fn parse_query_verbs_and_args() {
        let cli = parse(&args(&["query", "lookup_addr", "10.0.0.1"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Query {
                server: DEFAULT_SERVE_ADDR.to_string(),
                verb: "lookup_addr".to_string(),
                arg: Some("10.0.0.1".to_string()),
            }
        );
        let cli = parse(&args(&["query", "stats", "--server", "127.0.0.1:9"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Query {
                server: "127.0.0.1:9".to_string(),
                verb: "stats".to_string(),
                arg: None,
            }
        );
        assert!(parse(&args(&["query"])).is_err(), "verb is required");
        assert!(parse(&args(&["query", "--server", "x"])).is_err());
        assert!(parse(&args(&["stats", "--server", "x"])).is_err());
    }

    #[test]
    fn parse_report_diff_and_trace_check() {
        let cli = parse(&args(&["report", "diff", "a.json", "b.json"])).unwrap();
        assert_eq!(
            cli.command,
            Command::ReportDiff {
                a: PathBuf::from("a.json"),
                b: PathBuf::from("b.json"),
                epoch: None,
            }
        );
        let cli = parse(&args(&["trace", "check", "t.json"])).unwrap();
        assert_eq!(
            cli.command,
            Command::TraceCheck {
                file: PathBuf::from("t.json")
            }
        );
        assert!(parse(&args(&["report"])).is_err());
        assert!(parse(&args(&["report", "diff"])).is_err());
        assert!(parse(&args(&["report", "diff", "a.json"])).is_err());
        assert!(parse(&args(&["report", "burn"])).is_err());
        assert!(parse(&args(&["trace"])).is_err());
        assert!(parse(&args(&["trace", "check"])).is_err());
        assert!(parse(&args(&["trace", "erase"])).is_err());
    }

    #[test]
    fn parse_trace_out() {
        let cli = parse(&args(&["pipeline", "--trace-out", "t.json"])).unwrap();
        assert_eq!(cli.trace_out, Some(PathBuf::from("t.json")));
        assert!(!cli.trace, "--trace-out does not imply --trace");
        assert!(parse(&args(&["pipeline", "--trace-out"])).is_err());
    }

    #[test]
    fn pipeline_tiny_writes_valid_trace() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join(format!("bdrmapit-test-trace-{}.json", std::process::id()));
        let cli = parse(&args(&[
            "pipeline",
            "--scale",
            "tiny",
            "--vps",
            "4",
            "--threads",
            "2",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cli).unwrap();
        // The CLI already validated before writing; `trace check` agrees.
        let check_cli = parse(&args(&["trace", "check", trace_path.to_str().unwrap()])).unwrap();
        let out = run(&check_cli).unwrap();
        assert!(out.contains("valid bdrmapit.trace/v1"), "{out}");
        let text = std::fs::read_to_string(&trace_path).unwrap();
        for needle in ["pool.task", "pool.batch", "refine.shard", "phase3.refine"] {
            assert!(text.contains(needle), "trace lacks {needle}");
        }
        let _ = std::fs::remove_file(&trace_path);
    }

    #[test]
    fn report_diff_gates_on_determinism_end_to_end() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let a = dir.join(format!("bdrmapit-test-diff-a-{pid}.json"));
        let b = dir.join(format!("bdrmapit-test-diff-b-{pid}.json"));
        for (path, threads) in [(&a, "1"), (&b, "2")] {
            let cli = parse(&args(&[
                "pipeline",
                "--scale",
                "tiny",
                "--vps",
                "4",
                "--threads",
                threads,
                "--report",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            run(&cli).unwrap();
        }
        // Same corpus at different thread counts: deterministic slices
        // agree, so the diff is clean (exec counters may differ freely).
        let cli = parse(&args(&[
            "report",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("deterministic metrics agree"), "{out}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn parse_churn_pipeline() {
        let cli = parse(&args(&["pipeline", "--churn", "--churn-dir", "out"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Churn {
                epochs: 5,
                dir: PathBuf::from("out"),
                bench_out: None,
                gate: false,
            }
        );
        let cli = parse(&args(&[
            "pipeline",
            "--churn",
            "--epochs",
            "3",
            "--churn-dir",
            "out",
            "--bench-out",
            "bench.json",
            "--churn-gate",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Churn {
                epochs: 3,
                dir: PathBuf::from("out"),
                bench_out: Some(PathBuf::from("bench.json")),
                gate: true,
            }
        );
        // --churn requires pipeline and --churn-dir; churn flags without
        // --churn are rejected.
        assert!(parse(&args(&["pipeline", "--churn"])).is_err());
        assert!(parse(&args(&["generate", "--churn", "--churn-dir", "d"])).is_err());
        assert!(parse(&args(&["pipeline", "--epochs", "3"])).is_err());
        assert!(parse(&args(&["pipeline", "--churn-dir", "d"])).is_err());
        assert!(parse(&args(&["pipeline", "--churn-gate"])).is_err());
        assert!(parse(&args(&[
            "pipeline",
            "--churn",
            "--churn-dir",
            "d",
            "--epochs",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn parse_snapshot_diff() {
        let cli = parse(&args(&["snapshot", "diff", "a.snap", "b.snap"])).unwrap();
        assert_eq!(
            cli.command,
            Command::SnapshotDiff {
                a: PathBuf::from("a.snap"),
                b: PathBuf::from("b.snap"),
            }
        );
        assert!(parse(&args(&["snapshot", "diff"])).is_err());
        assert!(parse(&args(&["snapshot", "diff", "a.snap"])).is_err());
    }

    #[test]
    fn parse_report_diff_epoch() {
        let cli = parse(&args(&[
            "report", "diff", "a.json", "b.json", "--epoch", "2",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::ReportDiff {
                a: PathBuf::from("a.json"),
                b: PathBuf::from("b.json"),
                epoch: Some((2, 2)),
            }
        );
        let cli = parse(&args(&[
            "report", "diff", "a.json", "b.json", "--epoch", "1:4",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::ReportDiff {
                a: PathBuf::from("a.json"),
                b: PathBuf::from("b.json"),
                epoch: Some((1, 4)),
            }
        );
        assert!(parse(&args(&["report", "diff", "a", "b", "--epoch"])).is_err());
        assert!(parse(&args(&["report", "diff", "a", "b", "--epoch", "x"])).is_err());
        assert!(parse(&args(&["report", "diff", "a", "b", "--epoch", "1:z"])).is_err());
        assert!(parse(&args(&["pipeline", "--epoch", "1"])).is_err());
    }

    #[test]
    fn groups_ladder() {
        assert_eq!(groups_for(20), vec![10, 20, 30, 40]);
        assert_eq!(groups_for(1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn generate_tiny_runs() {
        let cli = parse(&args(&["generate", "--scale", "tiny", "--seed", "3"])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("synthetic Internet"));
        assert!(out.contains("ground truth"));
    }

    #[test]
    fn stats_tiny_runs() {
        let cli = parse(&args(&["stats", "--scale", "tiny", "--vps", "4"])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("Table 3"));
    }
}
