//! Command-line plumbing for the `bdrmapit` binary.
//!
//! The library half exists so argument parsing and command dispatch are unit
//! testable; `main.rs` is a thin shell around [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;

use eval::experiments::{aliases, heuristics, snapshots, stats, vps};
use eval::Scenario;
use std::fmt::Write as _;
use std::path::PathBuf;
use topo_gen::GeneratorConfig;

/// Which synthetic Internet scale to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// `GeneratorConfig::tiny` — seconds, for smoke runs.
    Tiny,
    /// `GeneratorConfig::default` — the standard experiment scale.
    Default,
    /// `GeneratorConfig::itdk_scale` — the large configuration.
    Itdk,
}

impl Scale {
    fn config(self, seed: u64) -> GeneratorConfig {
        match self {
            Scale::Tiny => GeneratorConfig::tiny(seed),
            Scale::Default => GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            Scale::Itdk => GeneratorConfig::itdk_scale(seed),
        }
    }
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// The experiment or action to run.
    pub command: Command,
    /// Topology seed.
    pub seed: u64,
    /// Scale selection.
    pub scale: Scale,
    /// Number of VPs for Internet-wide experiments.
    pub vps: usize,
    /// Refinement worker threads (0 = all available parallelism).
    pub threads: usize,
}

/// Supported subcommands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Print the generated Internet's summary.
    Generate,
    /// Run a campaign and print corpus statistics (Table 3 / §5).
    Stats,
    /// Fig. 15.
    Fig15,
    /// Figs. 16 & 17.
    Fig16,
    /// Figs. 18 & 19.
    Fig18,
    /// Fig. 20 + §7.4.
    Fig20,
    /// Heuristic ablations.
    Ablation,
    /// Everything, in figure order.
    All,
    /// Write a dataset bundle to disk.
    Probe {
        /// Output directory.
        out: PathBuf,
    },
    /// Run bdrmapIT from a dataset bundle on disk.
    Infer {
        /// Input directory.
        input: PathBuf,
    },
    /// Usage text.
    Help,
}

/// Parse errors carry the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
bdrmapit — reproduce 'Pushing the Boundaries with bdrmapIT' (IMC 2018)

USAGE:
    bdrmapit <COMMAND> [--seed N] [--scale tiny|default|itdk] [--vps N] [--threads N]

COMMANDS:
    probe --out DIR    write a synthetic dataset bundle (traces.jsonl, nodes.txt,
                       as-rel.txt, prefix2as.txt, delegated-extended.txt, ixps.json,
                       truth.json) to DIR
    infer --in DIR     run bdrmapIT from a bundle; writes annotations.csv/links.csv
    generate    print a summary of the generated synthetic Internet
    stats       campaign statistics (Table 3 link labels, §5 coverage)
    fig15       single in-network VP: bdrmapIT vs bdrmap
    fig16       Internet-wide, no in-network VPs: bdrmapIT vs MAP-IT (+ Fig. 17)
    fig18       varying the number of VPs (+ Fig. 19)
    fig20       alias resolution impact (midar vs kapar, §7.4 no-alias)
    ablation    each bdrmapIT heuristic disabled in turn
    all         every experiment, in order
    help        this text

OPTIONS:
    --seed N     topology seed            [default: 2018]
    --scale S    tiny | default | itdk    [default: default]
    --vps N      vantage points           [default: scale-dependent]
    --threads N  refinement worker threads; 0 = all cores, 1 = serial.
                 Results are identical for every value.   [default: 0]
";

/// Parses a command line (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut command = None;
    let mut seed = 2018u64;
    let mut scale = Scale::Default;
    let mut vps: Option<usize> = None;
    let mut threads = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "probe" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(Command::Probe {
                    out: PathBuf::new(),
                });
            }
            "infer" => {
                if command.is_some() {
                    return Err(ParseError("duplicate command".into()));
                }
                command = Some(Command::Infer {
                    input: PathBuf::new(),
                });
            }
            "--out" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--out needs a value".into()))?;
                match &mut command {
                    Some(Command::Probe { out }) => *out = PathBuf::from(v),
                    _ => return Err(ParseError("--out only applies to probe".into())),
                }
            }
            "--in" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--in needs a value".into()))?;
                match &mut command {
                    Some(Command::Infer { input }) => *input = PathBuf::from(v),
                    _ => return Err(ParseError("--in only applies to infer".into())),
                }
            }
            "generate" | "stats" | "fig15" | "fig16" | "fig17" | "fig18" | "fig19" | "fig20"
            | "ablation" | "all" | "help" | "--help" | "-h" => {
                let cmd = match arg.as_str() {
                    "generate" => Command::Generate,
                    "stats" => Command::Stats,
                    "fig15" => Command::Fig15,
                    "fig16" | "fig17" => Command::Fig16,
                    "fig18" | "fig19" => Command::Fig18,
                    "fig20" => Command::Fig20,
                    "ablation" => Command::Ablation,
                    "all" => Command::All,
                    _ => Command::Help,
                };
                if command.is_some() {
                    return Err(ParseError(format!("duplicate command {arg:?}")));
                }
                command = Some(cmd);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--seed needs a value".into()))?;
                seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed {v:?}")))?;
            }
            "--scale" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--scale needs a value".into()))?;
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "default" => Scale::Default,
                    "itdk" => Scale::Itdk,
                    other => return Err(ParseError(format!("unknown scale {other:?}"))),
                };
            }
            "--vps" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--vps needs a value".into()))?;
                vps = Some(
                    v.parse()
                        .map_err(|_| ParseError(format!("bad vp count {v:?}")))?,
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--threads needs a value".into()))?;
                threads = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad thread count {v:?}")))?;
            }
            other => return Err(ParseError(format!("unknown argument {other:?}"))),
        }
    }
    let command = command.ok_or_else(|| ParseError("no command given".into()))?;
    match &command {
        Command::Probe { out } if out.as_os_str().is_empty() => {
            return Err(ParseError("probe requires --out DIR".into()))
        }
        Command::Infer { input } if input.as_os_str().is_empty() => {
            return Err(ParseError("infer requires --in DIR".into()))
        }
        _ => {}
    }
    let default_vps = match scale {
        Scale::Tiny => 8,
        Scale::Default => 20,
        Scale::Itdk => 60,
    };
    Ok(Cli {
        command,
        seed,
        scale,
        vps: vps.unwrap_or(default_vps),
        threads,
    })
}

/// Executes a parsed command line, returning the report text.
pub fn run(cli: &Cli) -> String {
    if cli.command == Command::Help {
        return USAGE.to_string();
    }
    // File-driven commands handle their own I/O and reporting.
    match &cli.command {
        Command::Probe { out } => {
            return dataset::write_bundle(out, cli.scale.config(cli.seed), cli.vps, cli.seed)
                .unwrap_or_else(|e| format!("error: {e}\n"));
        }
        Command::Infer { input } => {
            return dataset::infer_from_bundle(input, cli.threads)
                .unwrap_or_else(|e| format!("error: {e}\n"));
        }
        _ => {}
    }
    let s = Scenario::build(cli.scale.config(cli.seed));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "synthetic Internet: {} ASes, {} routers, {} interfaces, {} BGP prefixes, seed {}",
        s.net.graph.len(),
        s.net.topology.router_count(),
        s.net.topology.iface_count(),
        s.rib.prefix_count(),
        cli.seed
    );
    let _ = writeln!(
        out,
        "validation networks: Tier 1 = {}, L Access = {}, R&E 1 = {}, R&E 2 = {}\n",
        s.validation.tier1, s.validation.large_access, s.validation.re1, s.validation.re2
    );
    match cli.command {
        Command::Generate => {
            let links = s.net.true_links();
            let _ = writeln!(
                out,
                "ground truth: {} interdomain router-level links, {} AS relationships, {} IXPs",
                links.len(),
                s.net.graph.relationships.len(),
                s.net.graph.ixps.len()
            );
        }
        Command::Stats => {
            let bundle = s.campaign(cli.vps, true, cli.seed);
            let _ = writeln!(out, "{}", stats::corpus_stats(&s, &bundle).render());
        }
        Command::Fig15 => {
            // The paper reports 2016 and 2018 snapshot groups; the current
            // scenario serves as the 2016 snapshot.
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(out, "{}", snapshots::fig15_dual(&snaps, cli.seed).render());
            return out;
        }
        Command::Fig16 => {
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(
                out,
                "{}",
                snapshots::fig16_dual(&snaps, cli.vps, cli.seed).render()
            );
            return out;
        }
        Command::Fig18 => {
            let groups = groups_for(cli.vps);
            let _ = writeln!(out, "{}", vps::sweep(&s, &groups, 5, cli.seed).render());
        }
        Command::Fig20 => {
            let _ = writeln!(out, "{}", aliases::fig20(&s, cli.vps, cli.seed).render());
        }
        Command::Ablation => {
            let _ = writeln!(
                out,
                "{}",
                heuristics::ablation(&s, cli.vps, cli.seed).render()
            );
        }
        Command::All => {
            let bundle = s.campaign(cli.vps, true, cli.seed);
            let _ = writeln!(out, "{}", stats::corpus_stats(&s, &bundle).render());
            let snaps = snapshots::Snapshots {
                y2016: s,
                y2018: Scenario::build(cli.scale.config(cli.seed ^ 0x2018_2018)),
            };
            let _ = writeln!(out, "{}", snapshots::fig15_dual(&snaps, cli.seed).render());
            let _ = writeln!(
                out,
                "{}",
                snapshots::fig16_dual(&snaps, cli.vps, cli.seed).render()
            );
            let s = snaps.y2016;
            let groups = groups_for(cli.vps);
            let _ = writeln!(out, "{}", vps::sweep(&s, &groups, 5, cli.seed).render());
            let _ = writeln!(out, "{}", aliases::fig20(&s, cli.vps, cli.seed).render());
            let _ = writeln!(
                out,
                "{}",
                heuristics::ablation(&s, cli.vps, cli.seed).render()
            );
        }
        Command::Help | Command::Probe { .. } | Command::Infer { .. } => {
            unreachable!("handled above")
        }
    }
    out
}

/// The paper sweeps 20/40/60/80 VPs; scale the ladder to the configured VP
/// budget (quarters of the doubled budget).
pub fn groups_for(vps: usize) -> Vec<usize> {
    let max = (vps * 2).max(4);
    (1..=4).map(|i| (max * i / 4).max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let cli = parse(&args(&["fig16"])).unwrap();
        assert_eq!(cli.command, Command::Fig16);
        assert_eq!(cli.seed, 2018);
        assert_eq!(cli.scale, Scale::Default);
        assert_eq!(cli.vps, 20);
        assert_eq!(cli.threads, 0, "--threads defaults to auto");
    }

    #[test]
    fn parse_options() {
        let cli = parse(&args(&[
            "fig18",
            "--seed",
            "7",
            "--scale",
            "tiny",
            "--vps",
            "5",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cli.command, Command::Fig18);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.vps, 5);
        assert_eq!(cli.threads, 4);
    }

    #[test]
    fn parse_aliases_fig17_fig19() {
        assert_eq!(parse(&args(&["fig17"])).unwrap().command, Command::Fig16);
        assert_eq!(parse(&args(&["fig19"])).unwrap().command, Command::Fig18);
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["bogus"])).is_err());
        assert!(parse(&args(&["fig15", "--seed"])).is_err());
        assert!(parse(&args(&["fig15", "--seed", "x"])).is_err());
        assert!(parse(&args(&["fig15", "--scale", "huge"])).is_err());
        assert!(parse(&args(&["fig15", "fig16"])).is_err());
        assert!(parse(&args(&["fig15", "--threads"])).is_err());
        assert!(parse(&args(&["fig15", "--threads", "many"])).is_err());
    }

    #[test]
    fn help_runs_without_building_a_scenario() {
        let cli = parse(&args(&["help"])).unwrap();
        assert_eq!(run(&cli), USAGE);
    }

    #[test]
    fn groups_ladder() {
        assert_eq!(groups_for(20), vec![10, 20, 30, 40]);
        assert_eq!(groups_for(1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn generate_tiny_runs() {
        let cli = parse(&args(&["generate", "--scale", "tiny", "--seed", "3"])).unwrap();
        let out = run(&cli);
        assert!(out.contains("synthetic Internet"));
        assert!(out.contains("ground truth"));
    }

    #[test]
    fn stats_tiny_runs() {
        let cli = parse(&args(&["stats", "--scale", "tiny", "--vps", "4"])).unwrap();
        let out = run(&cli);
        assert!(out.contains("Table 3"));
    }
}
