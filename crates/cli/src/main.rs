//! The `bdrmapit` binary.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bdrmapit_cli::parse(&args) {
        Ok(cli) => {
            print!("{}", bdrmapit_cli::run(&cli));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", bdrmapit_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
