//! The corrupt-input error taxonomy.
//!
//! Every way a snapshot can fail to load has its own typed variant: loaders
//! must never panic on arbitrary bytes and never return a partially-parsed
//! result. The variants carry enough context (section, record index, stored
//! vs computed checksums) for an operator to locate the corruption.

use std::fmt;

/// The four v1 section identifiers, in their required file order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SectionId {
    /// Per-interface annotation rows (id 1).
    Annotations = 1,
    /// Inferred interdomain links (id 2).
    Links = 2,
    /// Router membership (id 3).
    Routers = 3,
    /// Prefix → origin-AS table (id 4).
    Prefixes = 4,
}

impl SectionId {
    /// All sections in required file order.
    pub const ALL: [SectionId; 4] = [
        SectionId::Annotations,
        SectionId::Links,
        SectionId::Routers,
        SectionId::Prefixes,
    ];

    /// The wire id.
    pub fn id(self) -> u32 {
        self as u32
    }

    /// Human name (used by `snapshot inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Annotations => "annotations",
            SectionId::Links => "links",
            SectionId::Routers => "routers",
            SectionId::Prefixes => "prefixes",
        }
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything that can go wrong reading a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying I/O failure (message of the `io::Error`).
    Io(String),
    /// The first eight bytes are not the v1 magic.
    BadMagic {
        /// The bytes actually found (zero-padded if the file is shorter).
        found: [u8; 8],
    },
    /// The version field names a format this reader does not speak.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// v1 snapshots carry exactly four sections.
    BadSectionCount {
        /// The count actually found.
        found: u32,
    },
    /// The section table names an id out of v1's fixed order (covers
    /// unknown, duplicated, and reordered sections alike).
    UnexpectedSection {
        /// Zero-based position in the section table.
        index: u32,
        /// The id actually found there.
        found: u32,
    },
    /// The file ended before a region could be read in full.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the region required.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The header/table checksum does not match the stored value.
    MetaChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the bytes read.
        computed: u64,
    },
    /// A section payload's checksum does not match its table entry.
    SectionChecksumMismatch {
        /// The damaged section.
        section: SectionId,
        /// Checksum stored in the table.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Bytes remain after the last section payload.
    TrailingBytes {
        /// How many.
        count: u64,
    },
    /// A record inside a section does not decode.
    Malformed {
        /// The section holding the record.
        section: SectionId,
        /// Zero-based record index.
        record: u64,
        /// Why it failed to decode.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a bdrmapit snapshot (magic {found:02x?})")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this reader speaks v1)")
            }
            SnapshotError::BadSectionCount { found } => {
                write!(f, "v1 snapshots carry 4 sections, found {found}")
            }
            SnapshotError::UnexpectedSection { index, found } => {
                write!(f, "section table slot {index} holds id {found}, out of v1 order")
            }
            SnapshotError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, {available} available"
            ),
            SnapshotError::MetaChecksumMismatch { stored, computed } => write!(
                f,
                "header/table checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::SectionChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "{section} section checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after the last section")
            }
            SnapshotError::Malformed {
                section,
                record,
                reason,
            } => write!(f, "{section} record {record} malformed: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e.to_string())
    }
}
