//! The loaded, query-optimized form of a snapshot.
//!
//! [`Snapshot`] owns the decoded [`SnapshotData`] plus three indexes built
//! in one pass at load time:
//!
//! * `addr_index` — hash index from interface address to its annotation row
//!   (interface → router → operator AS in O(1));
//! * `prefix_trie` — a path-compressed binary trie for longest-prefix-match
//!   over the prefix→origin-AS table;
//! * `links_by_as` — adjacency index from an AS (either side) to the
//!   interdomain link records naming it.
//!
//! All query methods take `&self`; a loaded snapshot is immutable and
//! freely shared across server worker threads behind an `Arc`.

use crate::codec;
use crate::error::SnapshotError;
use crate::{AnnRecord, LinkRecord, RouterRecord, SnapshotData};
use net_types::{Asn, Prefix, PrefixTrie};
use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::path::Path;

/// Section record counts, as reported by the `stats` query verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Annotation rows (observed interfaces).
    pub annotations: u64,
    /// Interdomain link records.
    pub links: u64,
    /// Router-membership records.
    pub routers: u64,
    /// Prefix→origin entries.
    pub prefixes: u64,
}

/// A snapshot loaded into its query indexes.
#[derive(Clone, Debug)]
pub struct Snapshot {
    data: SnapshotData,
    // detlint::allow(unordered-collection): point-lookup index queried by
    // key only and never iterated; every enumeration goes through the
    // ordered `data` vectors (same pattern as core's graph addr_index)
    addr_index: HashMap<u32, u32>,
    prefix_trie: PrefixTrie<Asn>,
    links_by_as: BTreeMap<Asn, Vec<u32>>,
    routers_by_ir: BTreeMap<u32, u32>,
}

impl Snapshot {
    /// Indexes already-decoded snapshot content.
    pub fn from_data(data: SnapshotData) -> Snapshot {
        let mut addr_index = HashMap::with_capacity(data.annotations.len());
        for (i, r) in data.annotations.iter().enumerate() {
            addr_index.insert(r.addr, i as u32);
        }
        let prefix_trie: PrefixTrie<Asn> = data.prefixes.iter().copied().collect();
        let mut links_by_as: BTreeMap<Asn, Vec<u32>> = BTreeMap::new();
        for (i, l) in data.links.iter().enumerate() {
            links_by_as.entry(l.ir_as).or_default().push(i as u32);
            if l.conn_as != l.ir_as {
                links_by_as.entry(l.conn_as).or_default().push(i as u32);
            }
        }
        let routers_by_ir = data
            .routers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.ir, i as u32))
            .collect();
        Snapshot {
            data,
            addr_index,
            prefix_trie,
            links_by_as,
            routers_by_ir,
        }
    }

    /// Parses and indexes a snapshot from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        Ok(Snapshot::from_data(codec::from_bytes(bytes)?))
    }

    /// Reads, parses, and indexes a snapshot from any reader.
    pub fn load<R: Read>(mut r: R) -> Result<Snapshot, SnapshotError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Reads, parses, and indexes a snapshot file.
    pub fn load_path(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(&std::fs::read(path)?)
    }

    /// The decoded content behind the indexes.
    pub fn data(&self) -> &SnapshotData {
        &self.data
    }

    /// The annotation row for an interface address, if observed.
    pub fn lookup_addr(&self, addr: u32) -> Option<&AnnRecord> {
        let &i = self.addr_index.get(&addr)?;
        Some(&self.data.annotations[i as usize])
    }

    /// Longest-prefix-match of `addr` against the prefix→origin table.
    pub fn lookup_prefix(&self, addr: u32) -> Option<(Prefix, Asn)> {
        self.prefix_trie.longest_match(addr).map(|(p, &a)| (p, a))
    }

    /// The membership record for an inferred router.
    pub fn router(&self, ir: u32) -> Option<&RouterRecord> {
        let &i = self.routers_by_ir.get(&ir)?;
        Some(&self.data.routers[i as usize])
    }

    /// Every interdomain link record naming `asn` on either side, in file
    /// (deterministic) order.
    pub fn links_of_as(&self, asn: Asn) -> Vec<&LinkRecord> {
        self.links_by_as
            .get(&asn)
            .map(|idxs| idxs.iter().map(|&i| &self.data.links[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Section record counts.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            annotations: self.data.annotations.len() as u64,
            links: self.data.links.len() as u64,
            routers: self.data.routers.len() as u64,
            prefixes: self.data.prefixes.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::parse_ipv4;

    fn snapshot() -> Snapshot {
        let data = SnapshotData {
            annotations: vec![
                AnnRecord {
                    addr: parse_ipv4("10.0.0.1").unwrap(),
                    ir: 0,
                    asn: Asn(100),
                    origin: Asn(100),
                    conn: Asn(200),
                },
                AnnRecord {
                    addr: parse_ipv4("10.0.1.1").unwrap(),
                    ir: 1,
                    asn: Asn(200),
                    origin: Asn(200),
                    conn: Asn(0),
                },
            ],
            links: vec![
                LinkRecord {
                    ir: 0,
                    ir_as: Asn(100),
                    iface_addr: parse_ipv4("10.0.1.1").unwrap(),
                    conn_as: Asn(200),
                    last_hop: false,
                },
                LinkRecord {
                    ir: 1,
                    ir_as: Asn(200),
                    iface_addr: parse_ipv4("10.0.2.1").unwrap(),
                    conn_as: Asn(300),
                    last_hop: true,
                },
            ],
            routers: vec![RouterRecord {
                ir: 0,
                asn: Asn(100),
                ifaces: vec![parse_ipv4("10.0.0.1").unwrap()],
            }],
            prefixes: vec![
                ("10.0.0.0/16".parse().unwrap(), Asn(50)),
                ("10.0.0.0/24".parse().unwrap(), Asn(100)),
            ],
        };
        Snapshot::from_data(data)
    }

    #[test]
    fn addr_lookup_hits_and_misses() {
        let s = snapshot();
        let r = s.lookup_addr(parse_ipv4("10.0.0.1").unwrap()).unwrap();
        assert_eq!(r.asn, Asn(100));
        assert_eq!(r.conn, Asn(200));
        assert!(s.lookup_addr(parse_ipv4("9.9.9.9").unwrap()).is_none());
    }

    #[test]
    fn prefix_lookup_is_longest_match() {
        let s = snapshot();
        let (p, a) = s.lookup_prefix(parse_ipv4("10.0.0.77").unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/24");
        assert_eq!(a, Asn(100));
        let (p, a) = s.lookup_prefix(parse_ipv4("10.0.9.1").unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/16");
        assert_eq!(a, Asn(50));
        assert!(s.lookup_prefix(parse_ipv4("11.0.0.1").unwrap()).is_none());
    }

    #[test]
    fn links_index_covers_both_sides() {
        let s = snapshot();
        assert_eq!(s.links_of_as(Asn(200)).len(), 2);
        assert_eq!(s.links_of_as(Asn(100)).len(), 1);
        assert_eq!(s.links_of_as(Asn(300)).len(), 1);
        assert!(s.links_of_as(Asn(999)).is_empty());
    }

    #[test]
    fn router_and_stats() {
        let s = snapshot();
        assert_eq!(s.router(0).unwrap().asn, Asn(100));
        assert!(s.router(7).is_none());
        let st = s.stats();
        assert_eq!(
            (st.annotations, st.links, st.routers, st.prefixes),
            (2, 2, 1, 2)
        );
    }

    #[test]
    fn bytes_to_indexes_roundtrip() {
        let s = snapshot();
        let bytes = codec::to_bytes(s.data());
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.data(), s.data());
        assert_eq!(
            loaded.lookup_addr(parse_ipv4("10.0.0.1").unwrap()),
            s.lookup_addr(parse_ipv4("10.0.0.1").unwrap())
        );
    }
}
