//! `snapshot inspect`: human-readable rendering of a snapshot's header,
//! section table, and record counts — without building the query indexes.

use crate::codec::{self, PREAMBLE_LEN};
use crate::error::{SectionId, SnapshotError};
use crate::fnv1a64;
use std::fmt::Write as _;

/// Renders the header, section table (with verified checksums), and record
/// counts of a snapshot. Fails with the same typed errors as a full load,
/// so `inspect` doubles as an integrity check.
pub fn inspect(bytes: &[u8]) -> Result<String, SnapshotError> {
    let preamble = codec::parse_preamble(bytes)?;
    let data = codec::from_bytes(bytes)?;
    let counts = [
        data.annotations.len(),
        data.links.len(),
        data.routers.len(),
        data.prefixes.len(),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "bdrmapit.snapshot/v1  ({} bytes)", bytes.len());
    let _ = writeln!(out, "  magic:         {:?}", "bdrsnap1");
    let _ = writeln!(out, "  version:       {}", codec::VERSION);
    let _ = writeln!(out, "  sections:      {}", SectionId::ALL.len());
    let _ = writeln!(
        out,
        "  meta checksum: {:#018x} (verified)",
        fnv1a64(&bytes[..PREAMBLE_LEN - 8])
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<2} {:<12} {:>10} {:>12}  {:<18}",
        "id", "section", "records", "bytes", "checksum"
    );
    for (i, section) in SectionId::ALL.iter().enumerate() {
        let (len, checksum) = preamble.sections[i];
        let _ = writeln!(
            out,
            "  {:<2} {:<12} {:>10} {:>12}  {:#018x}",
            section.id(),
            section.name(),
            counts[i],
            len,
            checksum
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  all section checksums verified; {} records total",
        counts.iter().sum::<usize>()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnnRecord, SnapshotData};
    use net_types::Asn;

    #[test]
    fn inspect_lists_sections_and_counts() {
        let data = SnapshotData {
            annotations: vec![AnnRecord {
                addr: 1,
                ir: 0,
                asn: Asn(5),
                origin: Asn(5),
                conn: Asn(0),
            }],
            ..SnapshotData::default()
        };
        let text = inspect(&codec::to_bytes(&data)).unwrap();
        assert!(text.contains("bdrmapit.snapshot/v1"));
        for name in ["annotations", "links", "routers", "prefixes"] {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("1 records total"), "{text}");
    }

    #[test]
    fn inspect_rejects_corruption() {
        let mut bytes = codec::to_bytes(&SnapshotData::default());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            inspect(&bytes),
            Err(SnapshotError::SectionChecksumMismatch { .. })
        ));
    }
}
