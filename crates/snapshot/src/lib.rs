//! **snapshot**: the `bdrmapit.snapshot/v1` binary annotation format.
//!
//! The pipeline's CSV outputs are good interchange artifacts but poor query
//! artifacts: answering "which AS operates the router behind this
//! interface?" from a TSV means re-reading and re-parsing flat files. This
//! crate freezes a full pipeline result — annotation rows, interdomain
//! links, router membership, and a prefix→origin-AS table — into a single
//! versioned binary file that loads in one pass into query-optimized
//! indexes:
//!
//! * a binary longest-prefix-match trie over `u32` addresses for
//!   prefix→origin-AS ([`net_types::PrefixTrie`]),
//! * a hash index for interface→router→operator-AS lookups,
//! * an adjacency index from AS to its inferred interdomain links.
//!
//! # File layout (`bdrmapit.snapshot/v1`)
//!
//! All integers are little-endian. The file is:
//!
//! ```text
//! header      8 B   magic  = b"bdrsnap1"
//!             4 B   version = 1 (u32)
//!             4 B   section_count = 4 (u32)
//! table       20 B × 4   { id: u32, len: u64, checksum: u64 }
//! meta        8 B   FNV-1a-64 over header + table bytes
//! payloads    section payloads, in table order, each exactly `len` bytes
//! ```
//!
//! Section ids (v1 requires exactly these four, in this order):
//!
//! | id | section     | record layout |
//! |----|-------------|---------------|
//! | 1  | annotations | `addr u32, ir u32, asn u32, origin u32, conn u32` |
//! | 2  | links       | `ir u32, ir_as u32, iface_addr u32, conn_as u32, last_hop u8` |
//! | 3  | routers     | `ir u32, asn u32, n u32, n × iface_addr u32` |
//! | 4  | prefixes    | `addr u32, len u8, asn u32` |
//!
//! Every payload starts with its record count as a `u64`. Each section
//! carries an FNV-1a-64 checksum of its payload, and the header + section
//! table are covered by a trailing meta checksum, so **every single-byte
//! corruption anywhere in the file is rejected with a typed
//! [`SnapshotError`]** — never a panic, never a silently wrong answer (the
//! corruption sweep in `tests/codec.rs` proves this byte by byte).
//!
//! The loader ([`Snapshot::from_bytes`]) deserializes and indexes a
//! CI-scale snapshot in well under 100 ms; see `crates/serve` for the query
//! service built on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod inspect;
pub mod query;

pub use codec::{from_bytes, to_bytes, write_snapshot, MAGIC, VERSION};
pub use error::{SectionId, SnapshotError};
pub use inspect::inspect;
pub use query::{Snapshot, SnapshotStats};

use bdrmapit_core::Annotated;
use net_types::{Asn, Prefix};

/// One per-interface annotation row: the record behind `lookup_addr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnnRecord {
    /// Interface address.
    pub addr: u32,
    /// Inferred router (IR) index.
    pub ir: u32,
    /// Inferred operator of the router carrying the address (0 = none).
    pub asn: Asn,
    /// BGP/RIR origin of the address (0 = unannounced/IXP).
    pub origin: Asn,
    /// Connected-AS interface annotation (0 = none).
    pub conn: Asn,
}

/// One inferred interdomain link: the record behind `links_of_as`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkRecord {
    /// Near-side IR index.
    pub ir: u32,
    /// Inferred operator of the near-side router.
    pub ir_as: Asn,
    /// Address of the far-side interface.
    pub iface_addr: u32,
    /// Inferred operator on the far side.
    pub conn_as: Asn,
    /// Whether the near IR was annotated by the last-hop phase.
    pub last_hop: bool,
}

/// One router-membership record: the record behind `router`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouterRecord {
    /// IR index.
    pub ir: u32,
    /// Inferred operator (0 = unannotated).
    pub asn: Asn,
    /// Addresses of the interfaces on this router.
    pub ifaces: Vec<u32>,
}

/// The deserialized content of a snapshot, section by section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotData {
    /// Per-interface annotation rows.
    pub annotations: Vec<AnnRecord>,
    /// Inferred interdomain links.
    pub links: Vec<LinkRecord>,
    /// Router membership (one record per IR).
    pub routers: Vec<RouterRecord>,
    /// Prefix → origin-AS table (canonical prefixes).
    pub prefixes: Vec<(Prefix, Asn)>,
}

impl SnapshotData {
    /// Builds snapshot content from a pipeline result plus a prefix→origin
    /// table (typically [`bgp::Rib::origin_table`] or parsed prefix2as
    /// entries). Prefixes are canonicalized, sorted, and deduplicated.
    pub fn from_annotated(result: &Annotated, prefixes: &[(Prefix, Asn)]) -> SnapshotData {
        let annotations = result
            .graph
            .iface_addrs
            .iter()
            .enumerate()
            .map(|(idx, &addr)| {
                let ir = result.graph.iface_ir[idx];
                AnnRecord {
                    addr,
                    ir: ir.0,
                    asn: result.state.router[ir.0 as usize],
                    origin: result.graph.iface_origin[idx].asn,
                    conn: result.state.iface[idx],
                }
            })
            .collect();
        let links = result
            .interdomain_links()
            .iter()
            .map(|l| LinkRecord {
                ir: l.ir.0,
                ir_as: l.ir_as,
                iface_addr: l.iface_addr,
                conn_as: l.conn_as,
                last_hop: l.last_hop,
            })
            .collect();
        let routers = result
            .graph
            .irs
            .iter()
            .map(|ir| RouterRecord {
                ir: ir.id.0,
                asn: result.state.router[ir.id.0 as usize],
                ifaces: ir
                    .ifaces
                    .iter()
                    .map(|i| result.graph.iface_addrs[i.0 as usize])
                    .collect(),
            })
            .collect();
        let mut prefixes: Vec<(Prefix, Asn)> = prefixes
            .iter()
            .map(|&(p, a)| (Prefix::new(p.addr(), p.len()), a))
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup_by_key(|&mut (p, _)| p);
        SnapshotData {
            annotations,
            links,
            routers,
            prefixes,
        }
    }
}

/// FNV-1a 64-bit. Multiplication by the odd FNV prime is a bijection mod
/// 2⁶⁴ and the xor step is a bijection per byte, so any single-byte
/// substitution at a fixed position produces a different digest — the
/// property the corruption-rejection guarantee rests on.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_single_byte_substitution_changes_digest() {
        let base = b"the quick brown fox".to_vec();
        let h0 = fnv1a64(&base);
        for pos in 0..base.len() {
            for delta in 1..=255u8 {
                let mut m = base.clone();
                m[pos] ^= delta;
                assert_ne!(fnv1a64(&m), h0, "collision at byte {pos} delta {delta}");
            }
        }
    }
}
