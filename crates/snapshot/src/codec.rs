//! Writing and parsing the `bdrmapit.snapshot/v1` byte format.
//!
//! The writer produces a canonical encoding: same [`SnapshotData`] → same
//! bytes, always (no timestamps, no padding entropy, fixed section order).
//! The parser is total over arbitrary input — every byte is bounds-checked
//! and checksummed before it is believed, and every failure is a typed
//! [`SnapshotError`].

use crate::error::{SectionId, SnapshotError};
use crate::{fnv1a64, AnnRecord, LinkRecord, RouterRecord, SnapshotData};
use net_types::{Asn, Prefix};
use std::io::{self, Write};

/// The eight magic bytes opening every snapshot.
pub const MAGIC: [u8; 8] = *b"bdrsnap1";
/// The format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Bytes in the fixed header (magic + version + section count).
pub(crate) const HEADER_LEN: usize = 16;
/// Bytes per section-table entry (id + len + checksum).
pub(crate) const TABLE_ENTRY_LEN: usize = 20;
/// Bytes in header + table + meta checksum for a v1 (4-section) file.
pub(crate) const PREAMBLE_LEN: usize = HEADER_LEN + 4 * TABLE_ENTRY_LEN + 8;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_annotations(rows: &[AnnRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rows.len() * 20);
    put_u64(&mut out, rows.len() as u64);
    for r in rows {
        put_u32(&mut out, r.addr);
        put_u32(&mut out, r.ir);
        put_u32(&mut out, r.asn.0);
        put_u32(&mut out, r.origin.0);
        put_u32(&mut out, r.conn.0);
    }
    out
}

fn encode_links(rows: &[LinkRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rows.len() * 17);
    put_u64(&mut out, rows.len() as u64);
    for r in rows {
        put_u32(&mut out, r.ir);
        put_u32(&mut out, r.ir_as.0);
        put_u32(&mut out, r.iface_addr);
        put_u32(&mut out, r.conn_as.0);
        out.push(u8::from(r.last_hop));
    }
    out
}

fn encode_routers(rows: &[RouterRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, rows.len() as u64);
    for r in rows {
        put_u32(&mut out, r.ir);
        put_u32(&mut out, r.asn.0);
        put_u32(&mut out, r.ifaces.len() as u32);
        for &a in &r.ifaces {
            put_u32(&mut out, a);
        }
    }
    out
}

fn encode_prefixes(rows: &[(Prefix, Asn)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rows.len() * 9);
    put_u64(&mut out, rows.len() as u64);
    for &(p, a) in rows {
        put_u32(&mut out, p.addr());
        out.push(p.len());
        put_u32(&mut out, a.0);
    }
    out
}

/// Serializes snapshot content to its canonical v1 byte form.
pub fn to_bytes(data: &SnapshotData) -> Vec<u8> {
    let payloads = [
        encode_annotations(&data.annotations),
        encode_links(&data.links),
        encode_routers(&data.routers),
        encode_prefixes(&data.prefixes),
    ];
    let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
    preamble.extend_from_slice(&MAGIC);
    put_u32(&mut preamble, VERSION);
    put_u32(&mut preamble, SectionId::ALL.len() as u32);
    for (section, payload) in SectionId::ALL.iter().zip(&payloads) {
        put_u32(&mut preamble, section.id());
        put_u64(&mut preamble, payload.len() as u64);
        put_u64(&mut preamble, fnv1a64(payload));
    }
    let meta = fnv1a64(&preamble);
    let total = preamble.len() + 8 + payloads.iter().map(Vec::len).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&preamble);
    put_u64(&mut out, meta);
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    out
}

/// Writes a snapshot to any [`Write`] sink.
pub fn write_snapshot<W: Write>(mut w: W, data: &SnapshotData) -> io::Result<()> {
    w.write_all(&to_bytes(data))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor over the input bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n as u64 {
            return Err(SnapshotError::Truncated {
                what,
                needed: n as u64,
                available: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }
}

/// Reads the record count opening a section payload and sanity-checks it
/// against the payload size so a corrupt count cannot drive a huge
/// allocation (`min_record` is the smallest possible record encoding).
fn record_count(
    cur: &mut Cursor<'_>,
    section: SectionId,
    min_record: u64,
) -> Result<u64, SnapshotError> {
    let count = cur.u64("record count")?;
    if count.saturating_mul(min_record) > cur.remaining() {
        return Err(SnapshotError::Malformed {
            section,
            record: 0,
            reason: format!(
                "record count {count} needs at least {} bytes, {} remain in section",
                count.saturating_mul(min_record),
                cur.remaining()
            ),
        });
    }
    Ok(count)
}

fn expect_consumed(cur: &Cursor<'_>, section: SectionId, count: u64) -> Result<(), SnapshotError> {
    if cur.remaining() != 0 {
        return Err(SnapshotError::Malformed {
            section,
            record: count,
            reason: format!(
                "{} byte(s) left over after the last record",
                cur.remaining()
            ),
        });
    }
    Ok(())
}

fn decode_annotations(payload: &[u8]) -> Result<Vec<AnnRecord>, SnapshotError> {
    let section = SectionId::Annotations;
    let mut cur = Cursor::new(payload);
    let count = record_count(&mut cur, section, 20)?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(AnnRecord {
            addr: cur.u32("annotation record")?,
            ir: cur.u32("annotation record")?,
            asn: Asn(cur.u32("annotation record")?),
            origin: Asn(cur.u32("annotation record")?),
            conn: Asn(cur.u32("annotation record")?),
        });
    }
    expect_consumed(&cur, section, count)?;
    Ok(out)
}

fn decode_links(payload: &[u8]) -> Result<Vec<LinkRecord>, SnapshotError> {
    let section = SectionId::Links;
    let mut cur = Cursor::new(payload);
    let count = record_count(&mut cur, section, 17)?;
    let mut out = Vec::with_capacity(count as usize);
    for record in 0..count {
        let ir = cur.u32("link record")?;
        let ir_as = Asn(cur.u32("link record")?);
        let iface_addr = cur.u32("link record")?;
        let conn_as = Asn(cur.u32("link record")?);
        let last_hop = match cur.u8("link record")? {
            0 => false,
            1 => true,
            other => {
                return Err(SnapshotError::Malformed {
                    section,
                    record,
                    reason: format!("last_hop flag must be 0 or 1, found {other}"),
                })
            }
        };
        out.push(LinkRecord {
            ir,
            ir_as,
            iface_addr,
            conn_as,
            last_hop,
        });
    }
    expect_consumed(&cur, section, count)?;
    Ok(out)
}

fn decode_routers(payload: &[u8]) -> Result<Vec<RouterRecord>, SnapshotError> {
    let section = SectionId::Routers;
    let mut cur = Cursor::new(payload);
    let count = record_count(&mut cur, section, 12)?;
    let mut out = Vec::with_capacity(count as usize);
    for record in 0..count {
        let ir = cur.u32("router record")?;
        let asn = Asn(cur.u32("router record")?);
        let n = cur.u32("router record")?;
        if u64::from(n) * 4 > cur.remaining() {
            return Err(SnapshotError::Malformed {
                section,
                record,
                reason: format!(
                    "interface count {n} needs {} bytes, {} remain in section",
                    u64::from(n) * 4,
                    cur.remaining()
                ),
            });
        }
        let mut ifaces = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ifaces.push(cur.u32("router interface list")?);
        }
        out.push(RouterRecord { ir, asn, ifaces });
    }
    expect_consumed(&cur, section, count)?;
    Ok(out)
}

fn decode_prefixes(payload: &[u8]) -> Result<Vec<(Prefix, Asn)>, SnapshotError> {
    let section = SectionId::Prefixes;
    let mut cur = Cursor::new(payload);
    let count = record_count(&mut cur, section, 9)?;
    let mut out = Vec::with_capacity(count as usize);
    for record in 0..count {
        let addr = cur.u32("prefix record")?;
        let len = cur.u8("prefix record")?;
        let asn = Asn(cur.u32("prefix record")?);
        if len > 32 {
            return Err(SnapshotError::Malformed {
                section,
                record,
                reason: format!("prefix length {len} exceeds 32"),
            });
        }
        let p = Prefix::new(addr, len);
        if p.addr() != addr {
            return Err(SnapshotError::Malformed {
                section,
                record,
                reason: format!("prefix address {addr:#010x} has bits set below the /{len} mask"),
            });
        }
        out.push((p, asn));
    }
    expect_consumed(&cur, section, count)?;
    Ok(out)
}

/// The parsed preamble: per-section lengths and checksums, already verified
/// against the meta checksum.
pub(crate) struct Preamble {
    /// `(len, checksum)` for each of the four sections, in file order.
    pub sections: [(u64, u64); 4],
}

/// Parses and verifies the header, section table, and meta checksum.
pub(crate) fn parse_preamble(bytes: &[u8]) -> Result<Preamble, SnapshotError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(8, "magic").map_err(|_| {
        let mut found = [0u8; 8];
        found[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        SnapshotError::BadMagic { found }
    })?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(SnapshotError::BadMagic { found });
    }
    let version = cur.u32("version")?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let section_count = cur.u32("section count")?;
    if section_count != SectionId::ALL.len() as u32 {
        return Err(SnapshotError::BadSectionCount {
            found: section_count,
        });
    }
    let mut sections = [(0u64, 0u64); 4];
    for (index, section) in SectionId::ALL.iter().enumerate() {
        let id = cur.u32("section table")?;
        if id != section.id() {
            return Err(SnapshotError::UnexpectedSection {
                index: index as u32,
                found: id,
            });
        }
        let len = cur.u64("section table")?;
        let checksum = cur.u64("section table")?;
        sections[index] = (len, checksum);
    }
    let covered = cur.pos;
    let stored = cur.u64("meta checksum")?;
    let computed = fnv1a64(&bytes[..covered]);
    if stored != computed {
        return Err(SnapshotError::MetaChecksumMismatch { stored, computed });
    }
    Ok(Preamble { sections })
}

/// Parses a complete snapshot from bytes, verifying every checksum.
pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    let preamble = parse_preamble(bytes)?;
    let mut cur = Cursor::new(bytes);
    cur.pos = PREAMBLE_LEN;
    let mut payloads: [&[u8]; 4] = [&[]; 4];
    for (index, section) in SectionId::ALL.iter().enumerate() {
        let (len, stored) = preamble.sections[index];
        let len_usize = usize::try_from(len).map_err(|_| SnapshotError::Truncated {
            what: "section payload",
            needed: len,
            available: cur.remaining(),
        })?;
        let payload = cur.take(len_usize, "section payload")?;
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(SnapshotError::SectionChecksumMismatch {
                section: *section,
                stored,
                computed,
            });
        }
        payloads[index] = payload;
    }
    if cur.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes {
            count: cur.remaining(),
        });
    }
    Ok(SnapshotData {
        annotations: decode_annotations(payloads[0])?,
        links: decode_links(payloads[1])?,
        routers: decode_routers(payloads[2])?,
        prefixes: decode_prefixes(payloads[3])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        SnapshotData {
            annotations: vec![
                AnnRecord {
                    addr: 0x0a00_0001,
                    ir: 0,
                    asn: Asn(100),
                    origin: Asn(100),
                    conn: Asn(200),
                },
                AnnRecord {
                    addr: 0x0a00_0002,
                    ir: 1,
                    asn: Asn(200),
                    origin: Asn(200),
                    conn: Asn(0),
                },
            ],
            links: vec![LinkRecord {
                ir: 0,
                ir_as: Asn(100),
                iface_addr: 0x0a00_0002,
                conn_as: Asn(200),
                last_hop: false,
            }],
            routers: vec![
                RouterRecord {
                    ir: 0,
                    asn: Asn(100),
                    ifaces: vec![0x0a00_0001],
                },
                RouterRecord {
                    ir: 1,
                    asn: Asn(200),
                    ifaces: vec![0x0a00_0002],
                },
            ],
            prefixes: vec![
                ("10.0.0.0/24".parse().unwrap(), Asn(100)),
                ("10.0.1.0/24".parse().unwrap(), Asn(200)),
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let data = sample();
        let bytes = to_bytes(&data);
        assert_eq!(from_bytes(&bytes).unwrap(), data);
        // Canonical encoding: re-serializing reproduces the bytes.
        assert_eq!(to_bytes(&from_bytes(&bytes).unwrap()), bytes);
    }

    #[test]
    fn empty_roundtrip() {
        let data = SnapshotData::default();
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), PREAMBLE_LEN + 4 * 8);
        assert_eq!(from_bytes(&bytes).unwrap(), data);
    }

    #[test]
    fn bad_magic() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        // Files shorter than the magic are BadMagic too, not Truncated.
        assert!(matches!(
            from_bytes(b"bdr"),
            Err(SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            from_bytes(&[]),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn unsupported_version() {
        let mut bytes = to_bytes(&sample());
        bytes[8] = 9;
        assert_eq!(
            from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 9 })
        );
    }

    #[test]
    fn bad_section_count() {
        let mut bytes = to_bytes(&sample());
        bytes[12] = 5;
        assert_eq!(
            from_bytes(&bytes),
            Err(SnapshotError::BadSectionCount { found: 5 })
        );
    }

    #[test]
    fn truncated_payload() {
        let bytes = to_bytes(&sample());
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            from_bytes(cut),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&sample());
        bytes.push(0);
        assert_eq!(
            from_bytes(&bytes),
            Err(SnapshotError::TrailingBytes { count: 1 })
        );
    }

    #[test]
    fn payload_corruption_is_checksum_mismatch() {
        let mut bytes = to_bytes(&sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::SectionChecksumMismatch { .. })
        ));
    }

    #[test]
    fn table_corruption_is_meta_mismatch() {
        let mut bytes = to_bytes(&sample());
        // Flip a byte inside the first table entry's checksum field.
        bytes[HEADER_LEN + 12] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::MetaChecksumMismatch { .. })
        ));
    }
}
