//! Property tests on the snapshot codec: arbitrary content round-trips
//! bit-exactly, and **every** corruption — any single byte, any truncation,
//! any random input — is rejected with a typed [`SnapshotError`], never a
//! panic or a silently wrong answer.

use net_types::{Asn, Prefix};
use proptest::prelude::*;
use snapshot::{codec, AnnRecord, LinkRecord, RouterRecord, Snapshot, SnapshotData};

fn ann_strategy() -> impl Strategy<Value = AnnRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(addr, ir, asn, origin, conn)| AnnRecord {
            addr,
            ir,
            asn: Asn(asn),
            origin: Asn(origin),
            conn: Asn(conn),
        })
}

fn link_strategy() -> impl Strategy<Value = LinkRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(ir, ir_as, iface_addr, conn_as, last_hop)| LinkRecord {
            ir,
            ir_as: Asn(ir_as),
            iface_addr,
            conn_as: Asn(conn_as),
            last_hop,
        })
}

fn router_strategy() -> impl Strategy<Value = RouterRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(|(ir, asn, ifaces)| RouterRecord {
            ir,
            asn: Asn(asn),
            ifaces,
        })
}

/// Canonical prefixes only: `Prefix::new` masks host bits, matching the
/// invariant the writer relies on and the decoder enforces.
fn prefix_strategy() -> impl Strategy<Value = (Prefix, Asn)> {
    (any::<u32>(), 0u8..=32, any::<u32>())
        .prop_map(|(addr, len, asn)| (Prefix::new(addr, len), Asn(asn)))
}

prop_compose! {
    fn data_strategy()(
        annotations in proptest::collection::vec(ann_strategy(), 0..12),
        links in proptest::collection::vec(link_strategy(), 0..12),
        routers in proptest::collection::vec(router_strategy(), 0..8),
        prefixes in proptest::collection::vec(prefix_strategy(), 0..12),
    ) -> SnapshotData {
        SnapshotData { annotations, links, routers, prefixes }
    }
}

/// A small fixed snapshot for the exhaustive byte-by-byte sweeps.
fn sample() -> SnapshotData {
    SnapshotData {
        annotations: vec![
            AnnRecord {
                addr: 0x0a01_0001,
                ir: 0,
                asn: Asn(100),
                origin: Asn(100),
                conn: Asn(200),
            },
            AnnRecord {
                addr: 0x0a02_0001,
                ir: 1,
                asn: Asn(200),
                origin: Asn(200),
                conn: Asn(0),
            },
        ],
        links: vec![LinkRecord {
            ir: 0,
            ir_as: Asn(100),
            iface_addr: 0x0a02_0001,
            conn_as: Asn(200),
            last_hop: true,
        }],
        routers: vec![RouterRecord {
            ir: 0,
            asn: Asn(100),
            ifaces: vec![0x0a01_0001],
        }],
        prefixes: vec![
            ("10.1.0.0/16".parse().unwrap(), Asn(100)),
            ("10.2.0.0/16".parse().unwrap(), Asn(200)),
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → load reproduces the content exactly, and re-serializing the
    /// loaded content reproduces the bytes exactly (canonical encoding).
    #[test]
    fn roundtrip_is_bit_exact(data in data_strategy()) {
        let bytes = codec::to_bytes(&data);
        let back = codec::from_bytes(&bytes);
        prop_assert_eq!(back.as_ref(), Ok(&data));
        prop_assert_eq!(codec::to_bytes(&back.unwrap()), bytes);
    }

    /// Flipping any single byte anywhere in a snapshot makes the parser
    /// return a typed error. FNV-1a-64 is injective per byte position
    /// (xor-then-multiply by an odd prime), so a one-byte change always
    /// changes the covering digest.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        data in data_strategy(),
        pos in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let mut bytes = codec::to_bytes(&data);
        let pos = pos % bytes.len();
        bytes[pos] ^= delta;
        prop_assert!(
            codec::from_bytes(&bytes).is_err(),
            "flip at byte {} (of {}) was accepted",
            pos,
            bytes.len()
        );
    }

    /// Any strict truncation is rejected — a partial write never loads.
    #[test]
    fn any_truncation_is_rejected(
        data in data_strategy(),
        keep in any::<usize>(),
    ) {
        let bytes = codec::to_bytes(&data);
        let keep = keep % bytes.len();
        prop_assert!(codec::from_bytes(&bytes[..keep]).is_err());
    }

    /// The parser is total over arbitrary bytes: it returns `Result`, it
    /// never panics, and `Snapshot::from_bytes` inherits that totality.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::from_bytes(&bytes);
        let _ = Snapshot::from_bytes(&bytes);
    }

    /// Same, but starting from a valid preamble prefix so fuzzing reaches
    /// the section decoders instead of dying at the magic check.
    #[test]
    fn corrupt_tails_behind_a_real_magic_never_panic(
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = codec::to_bytes(&SnapshotData::default());
        bytes.truncate(16); // keep magic + version + section count
        bytes.extend_from_slice(&tail);
        let _ = codec::from_bytes(&bytes);
    }
}

/// Deterministic exhaustive sweep: *every* byte position of a realistic
/// snapshot, two flip patterns each. This is the byte-by-byte proof the
/// format documentation promises.
#[test]
fn exhaustive_single_byte_sweep_rejects_every_position() {
    let bytes = codec::to_bytes(&sample());
    for pos in 0..bytes.len() {
        for delta in [0x01u8, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= delta;
            let err = codec::from_bytes(&corrupt);
            assert!(
                err.is_err(),
                "corruption at byte {pos}/{} (xor {delta:#04x}) was accepted",
                bytes.len()
            );
        }
    }
}

/// Exhaustive truncation sweep on the same sample.
#[test]
fn exhaustive_truncation_sweep_rejects_every_length() {
    let bytes = codec::to_bytes(&sample());
    for keep in 0..bytes.len() {
        assert!(
            codec::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {keep}/{} bytes was accepted",
            bytes.len()
        );
    }
}
