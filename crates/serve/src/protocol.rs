//! The newline-delimited JSON query protocol.
//!
//! One JSON object per line in each direction, connections persistent. A
//! request is a flat object — `cmd` selects the verb, the remaining fields
//! carry whichever argument the verb needs (the vendored serde subset
//! favors flat structs with `Option` fields over tagged enums):
//!
//! | `cmd`           | argument        | answers |
//! |-----------------|-----------------|---------|
//! | `lookup_addr`   | `addr` (dotted) | annotation row: router, operator, origin, connected AS |
//! | `lookup_prefix` | `addr` (dotted) | longest-prefix-match origin |
//! | `router`        | `ir` (u32)      | router operator + member interfaces |
//! | `links_of_as`   | `asn` (u32)     | interdomain links naming the AS on either side |
//! | `stats`         | —               | section record counts |
//!
//! Responses always carry `ok`. `ok: true, found: false` is a clean miss
//! (unknown address, IR, or AS); `ok: false` carries `error` and means the
//! request itself was malformed. [`dispatch`] is a pure function of
//! `(snapshot, request)` so the protocol is testable without sockets.

use serde::{Deserialize, Serialize};
use snapshot::Snapshot;

use net_types::{format_ipv4, parse_ipv4};

/// A decoded request line. Unknown JSON fields are ignored; missing
/// argument fields surface as verb-specific errors from [`dispatch`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Verb: `lookup_addr` | `lookup_prefix` | `router` | `links_of_as` | `stats`.
    pub cmd: String,
    /// Dotted-quad IPv4 address (for `lookup_addr` / `lookup_prefix`).
    pub addr: Option<String>,
    /// Inferred-router index (for `router`).
    pub ir: Option<u32>,
    /// AS number (for `links_of_as`).
    pub asn: Option<u32>,
}

impl Request {
    /// A request carrying only a verb.
    pub fn verb(cmd: &str) -> Request {
        Request {
            cmd: cmd.to_string(),
            ..Request::default()
        }
    }
}

/// One interdomain link as serialized in a `links_of_as` response.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkJson {
    /// Near-side IR index.
    pub ir: u32,
    /// Operator of the near-side router.
    pub ir_as: u32,
    /// Far-side interface address (dotted quad).
    pub iface_addr: String,
    /// Operator on the far side.
    pub conn_as: u32,
    /// Whether the near IR was annotated by the last-hop phase.
    pub last_hop: bool,
}

/// Section record counts — plus, when answered by a live server, uptime
/// and the per-verb request/latency table — as serialized in a `stats`
/// response. The live fields are `Option` so snapshots of the old shape
/// still deserialize (the vendored serde maps a missing field to `None`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsJson {
    /// Annotation rows.
    pub annotations: u64,
    /// Interdomain link records.
    pub links: u64,
    /// Router-membership records.
    pub routers: u64,
    /// Prefix→origin entries.
    pub prefixes: u64,
    /// Milliseconds the answering server has been up (absent from the pure
    /// [`dispatch`] path, which has no server attached).
    pub uptime_ms: Option<u64>,
    /// Per-verb request counts and latency percentiles (absent from the
    /// pure [`dispatch`] path).
    pub verbs: Option<std::collections::BTreeMap<String, VerbStatsJson>>,
}

/// One verb's row in the `stats` response: how many requests it answered
/// and where the latency distribution sits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerbStatsJson {
    /// Requests dispatched to this verb.
    pub requests: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// A response line: flat, with `ok` always present and the remaining
/// fields populated per verb. `null` fields are simply absent answers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request was well-formed and dispatched.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: Option<String>,
    /// Whether the lookup key existed (point-lookup verbs only).
    pub found: Option<bool>,
    /// Echo of the queried address (dotted quad).
    pub addr: Option<String>,
    /// IR index (lookup_addr / router).
    pub ir: Option<u32>,
    /// Operator AS of the router (lookup_addr / router).
    pub asn: Option<u32>,
    /// BGP origin AS of the address (lookup_addr).
    pub origin: Option<u32>,
    /// Connected-AS annotation of the interface (lookup_addr).
    pub conn: Option<u32>,
    /// Matched prefix in CIDR form (lookup_prefix).
    pub prefix: Option<String>,
    /// Member interface addresses, dotted quads (router).
    pub ifaces: Option<Vec<String>>,
    /// Link records (links_of_as).
    pub links: Option<Vec<LinkJson>>,
    /// Section counts (stats).
    pub stats: Option<StatsJson>,
}

impl Response {
    fn ok() -> Response {
        Response {
            ok: true,
            ..Response::default()
        }
    }

    /// A malformed-request response.
    pub fn error(msg: impl Into<String>) -> Response {
        Response {
            ok: false,
            error: Some(msg.into()),
            ..Response::default()
        }
    }

    fn miss() -> Response {
        Response {
            found: Some(false),
            ..Response::ok()
        }
    }
}

fn require_addr(req: &Request) -> Result<u32, Box<Response>> {
    let text = req.addr.as_deref().ok_or_else(|| {
        Box::new(Response::error(format!(
            "`{}` requires an `addr` field",
            req.cmd
        )))
    })?;
    parse_ipv4(text).ok_or_else(|| Box::new(Response::error(format!("bad IPv4 address: {text:?}"))))
}

/// Answers one request against a loaded snapshot. Pure: no I/O, no state.
pub fn dispatch(snap: &Snapshot, req: &Request) -> Response {
    match req.cmd.as_str() {
        "lookup_addr" => {
            let addr = match require_addr(req) {
                Ok(a) => a,
                Err(e) => return *e,
            };
            match snap.lookup_addr(addr) {
                Some(r) => Response {
                    found: Some(true),
                    addr: Some(format_ipv4(r.addr)),
                    ir: Some(r.ir),
                    asn: Some(r.asn.0),
                    origin: Some(r.origin.0),
                    conn: Some(r.conn.0),
                    ..Response::ok()
                },
                None => Response::miss(),
            }
        }
        "lookup_prefix" => {
            let addr = match require_addr(req) {
                Ok(a) => a,
                Err(e) => return *e,
            };
            match snap.lookup_prefix(addr) {
                Some((prefix, origin)) => Response {
                    found: Some(true),
                    prefix: Some(prefix.to_string()),
                    origin: Some(origin.0),
                    ..Response::ok()
                },
                None => Response::miss(),
            }
        }
        "router" => {
            let Some(ir) = req.ir else {
                return Response::error("`router` requires an `ir` field");
            };
            match snap.router(ir) {
                Some(r) => Response {
                    found: Some(true),
                    ir: Some(r.ir),
                    asn: Some(r.asn.0),
                    ifaces: Some(r.ifaces.iter().map(|&a| format_ipv4(a)).collect()),
                    ..Response::ok()
                },
                None => Response::miss(),
            }
        }
        "links_of_as" => {
            let Some(asn) = req.asn else {
                return Response::error("`links_of_as` requires an `asn` field");
            };
            let links: Vec<LinkJson> = snap
                .links_of_as(net_types::Asn(asn))
                .into_iter()
                .map(|l| LinkJson {
                    ir: l.ir,
                    ir_as: l.ir_as.0,
                    iface_addr: format_ipv4(l.iface_addr),
                    conn_as: l.conn_as.0,
                    last_hop: l.last_hop,
                })
                .collect();
            Response {
                found: Some(!links.is_empty()),
                links: Some(links),
                ..Response::ok()
            }
        }
        "stats" => {
            let s = snap.stats();
            Response {
                stats: Some(StatsJson {
                    annotations: s.annotations,
                    links: s.links,
                    routers: s.routers,
                    prefixes: s.prefixes,
                    ..StatsJson::default()
                }),
                ..Response::ok()
            }
        }
        other => Response::error(format!("unknown cmd: {other:?}")),
    }
}

/// Parses one request line; malformed JSON becomes the `ok: false`
/// response the server answers with instead of dropping the connection.
/// Split from [`handle_line`] so the server can learn the verb (for
/// per-verb metrics) before dispatching.
pub fn parse_line(line: &str) -> Result<Request, Box<Response>> {
    serde_json::from_str::<Request>(line)
        .map_err(|e| Box::new(Response::error(format!("bad request JSON: {e}"))))
}

/// Parses one request line and dispatches it; malformed JSON becomes an
/// `ok: false` response rather than a dropped connection.
pub fn handle_line(snap: &Snapshot, line: &str) -> Response {
    match parse_line(line) {
        Ok(req) => dispatch(snap, &req),
        Err(e) => *e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Asn;
    use snapshot::{AnnRecord, LinkRecord, RouterRecord, SnapshotData};

    fn snap() -> Snapshot {
        Snapshot::from_data(SnapshotData {
            annotations: vec![AnnRecord {
                addr: parse_ipv4("10.0.0.1").unwrap(),
                ir: 3,
                asn: Asn(100),
                origin: Asn(100),
                conn: Asn(200),
            }],
            links: vec![LinkRecord {
                ir: 3,
                ir_as: Asn(100),
                iface_addr: parse_ipv4("10.0.1.1").unwrap(),
                conn_as: Asn(200),
                last_hop: true,
            }],
            routers: vec![RouterRecord {
                ir: 3,
                asn: Asn(100),
                ifaces: vec![parse_ipv4("10.0.0.1").unwrap()],
            }],
            prefixes: vec![("10.0.0.0/24".parse().unwrap(), Asn(100))],
        })
    }

    fn req(json: &str) -> Response {
        handle_line(&snap(), json)
    }

    #[test]
    fn lookup_addr_hit_and_miss() {
        let r = req(r#"{"cmd":"lookup_addr","addr":"10.0.0.1"}"#);
        assert!(r.ok);
        assert_eq!(r.found, Some(true));
        assert_eq!(r.asn, Some(100));
        assert_eq!(r.conn, Some(200));
        assert_eq!(r.ir, Some(3));
        let r = req(r#"{"cmd":"lookup_addr","addr":"9.9.9.9"}"#);
        assert!(r.ok);
        assert_eq!(r.found, Some(false));
        assert_eq!(r.asn, None);
    }

    #[test]
    fn lookup_prefix_matches_longest() {
        let r = req(r#"{"cmd":"lookup_prefix","addr":"10.0.0.200"}"#);
        assert_eq!(r.prefix.as_deref(), Some("10.0.0.0/24"));
        assert_eq!(r.origin, Some(100));
        let r = req(r#"{"cmd":"lookup_prefix","addr":"11.0.0.1"}"#);
        assert_eq!(r.found, Some(false));
    }

    #[test]
    fn router_returns_members() {
        let r = req(r#"{"cmd":"router","ir":3}"#);
        assert_eq!(r.asn, Some(100));
        assert_eq!(r.ifaces, Some(vec!["10.0.0.1".to_string()]));
        let r = req(r#"{"cmd":"router","ir":99}"#);
        assert_eq!(r.found, Some(false));
    }

    #[test]
    fn links_of_as_covers_both_sides() {
        for asn in [100u32, 200] {
            let r = req(&format!(r#"{{"cmd":"links_of_as","asn":{asn}}}"#));
            let links = r.links.unwrap();
            assert_eq!(links.len(), 1, "asn {asn}");
            assert_eq!(links[0].iface_addr, "10.0.1.1");
            assert!(links[0].last_hop);
        }
        let r = req(r#"{"cmd":"links_of_as","asn":999}"#);
        assert_eq!(r.found, Some(false));
        assert_eq!(r.links, Some(vec![]));
    }

    #[test]
    fn stats_counts_sections() {
        let r = req(r#"{"cmd":"stats"}"#);
        let s = r.stats.unwrap();
        assert_eq!(
            (s.annotations, s.links, s.routers, s.prefixes),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn malformed_requests_get_typed_errors_not_disconnects() {
        for bad in [
            "not json at all",
            r#"{"cmd":"lookup_addr"}"#,
            r#"{"cmd":"lookup_addr","addr":"256.1.2.3"}"#,
            r#"{"cmd":"router"}"#,
            r#"{"cmd":"links_of_as"}"#,
            r#"{"cmd":"warp_core_breach"}"#,
        ] {
            let r = req(bad);
            assert!(!r.ok, "{bad}");
            assert!(r.error.is_some(), "{bad}");
        }
    }

    #[test]
    fn response_roundtrips_through_json() {
        let r = req(r#"{"cmd":"lookup_addr","addr":"10.0.0.1"}"#);
        let text = serde_json::to_string(&r).unwrap();
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_request_fields_are_ignored() {
        let r = req(r#"{"cmd":"stats","flux_capacitor":true}"#);
        assert!(r.ok);
        assert!(r.stats.is_some());
    }
}
