//! Live server metrics: uptime and per-verb request counts/latency.
//!
//! A [`ServeMetrics`] is owned by the [`Server`](crate::Server) and filled
//! into `stats` responses, so a running service can be interrogated over
//! its own protocol: `{"cmd":"stats"}` answers with snapshot section counts
//! *plus* `uptime_ms` and a per-verb table of request counts and latency
//! percentiles. Everything here is execution-dependent by construction
//! (traffic-driven), so nothing feeds the deterministic counter class; the
//! wall clock is read only through the [`obs::Clock`] trait, keeping the
//! workspace's single-nondet-source discipline intact.

use crate::protocol::{StatsJson, VerbStatsJson};
use obs::{Clock, Histogram, MonotonicClock};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Per-verb accumulator: request count plus an exact-value latency
/// histogram in microseconds (latencies are small integers at µs
/// resolution, so the exact histogram stays compact).
#[derive(Default)]
struct VerbAgg {
    requests: u64,
    latency_us: Histogram,
}

/// Aggregated live-server metrics, shared across serve workers.
pub struct ServeMetrics {
    clock: Arc<dyn Clock>,
    start_nanos: u64,
    verbs: Mutex<BTreeMap<&'static str, VerbAgg>>,
}

impl ServeMetrics {
    /// Metrics on the real monotonic clock, with uptime starting now.
    pub fn new() -> ServeMetrics {
        ServeMetrics::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Metrics on an explicit clock (tests use [`obs::MockClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> ServeMetrics {
        let start_nanos = clock.now_nanos();
        ServeMetrics {
            clock,
            start_nanos,
            verbs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Timestamps the start of a request; pass the returned value to
    /// [`ServeMetrics::observe`] once the response has been produced.
    pub fn begin(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Records one completed request for `verb` (a canonical name from
    /// [`obs::names::serve_verb`]), started at `start_nanos`.
    pub fn observe(&self, verb: &'static str, start_nanos: u64) {
        let us = self.clock.now_nanos().saturating_sub(start_nanos) / 1_000;
        let mut verbs = self.verbs.lock().expect("serve metrics lock");
        let agg = verbs.entry(verb).or_default();
        agg.requests = agg.requests.saturating_add(1);
        agg.latency_us.record(us);
    }

    /// Milliseconds since the metrics (and, in practice, the server) came
    /// up.
    pub fn uptime_ms(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start_nanos) / 1_000_000
    }

    /// Fills the live sections of a `stats` response: uptime and the
    /// per-verb request/latency table.
    pub fn fill(&self, stats: &mut StatsJson) {
        stats.uptime_ms = Some(self.uptime_ms());
        let verbs = self.verbs.lock().expect("serve metrics lock");
        stats.verbs = Some(
            verbs
                .iter()
                .map(|(&verb, agg)| {
                    (
                        verb.to_string(),
                        VerbStatsJson {
                            requests: agg.requests,
                            p50_us: agg.latency_us.percentile(0.5).unwrap_or(0),
                            p99_us: agg.latency_us.percentile(0.99).unwrap_or(0),
                        },
                    )
                })
                .collect(),
        );
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::MockClock;

    #[test]
    fn uptime_and_latency_come_from_the_clock() {
        let clock = MockClock::new();
        let m = ServeMetrics::with_clock(Arc::new(clock.clone()));
        clock.advance(5_000_000); // 5 ms of idle uptime
        for us in [250u64, 500, 750] {
            let t0 = m.begin();
            clock.advance(us * 1_000);
            m.observe("stats", t0);
        }

        let mut stats = StatsJson::default();
        m.fill(&mut stats);
        assert_eq!(stats.uptime_ms, Some(6));
        let verbs = stats.verbs.unwrap();
        let s = &verbs["stats"];
        assert_eq!(s.requests, 3);
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p99_us, 750);
    }

    #[test]
    fn verbs_absent_until_observed() {
        let m = ServeMetrics::with_clock(Arc::new(MockClock::new()));
        let mut stats = StatsJson::default();
        m.fill(&mut stats);
        assert_eq!(stats.verbs, Some(BTreeMap::new()));
        m.observe("router", m.begin());
        m.fill(&mut stats);
        assert_eq!(stats.verbs.unwrap()["router"].requests, 1);
    }
}
