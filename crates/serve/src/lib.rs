//! **serve**: the router-ownership query service.
//!
//! A dependency-light multithreaded TCP server answering point and bulk
//! queries against a loaded [`snapshot::Snapshot`]: which AS operates the
//! router behind this interface, what does longest-prefix-match say about
//! this address, which interfaces share a router, which interdomain links
//! name this AS. The access pattern mirrors what ITDK consumers and
//! high-rate probers need when correlating live probe data against an
//! ownership map.
//!
//! Design constraints, in order:
//!
//! * **No async runtime.** The workspace vendors its dependency graph and
//!   carries no tokio; the server is a plain [`std::net::TcpListener`] with
//!   a crossbeam scoped worker pool — the same primitive the refinement
//!   engine uses (`core::refine::parallel`), under the same justified
//!   `detlint::allow`.
//! * **Protocol = newline-delimited JSON** ([`protocol`]): one request
//!   object per line, one response object per line, connections are
//!   persistent. Verbs: `lookup_addr`, `lookup_prefix`, `router`,
//!   `links_of_as`, `stats`.
//! * **Telemetry through `obs`** — request/connection/error counters flow
//!   through the existing [`obs::Recorder`] as *execution-dependent*
//!   counters (`add_exec`): they depend on external traffic, so they must
//!   never enter the deterministic counter class the thread-count
//!   determinism suite compares.
//! * **Graceful shutdown** — a [`ShutdownHandle`] flips a flag and nudges
//!   the accept loop; workers drain their in-flight connections and join.
//! * **Per-connection read timeouts** so an idle or stalled client cannot
//!   pin a worker forever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use metrics::ServeMetrics;
pub use protocol::{dispatch, LinkJson, Request, Response, StatsJson, VerbStatsJson};
pub use server::{RunningServer, Server, ServerConfig, ShutdownHandle};
