//! A minimal blocking client for the query protocol, shared by the `query`
//! CLI command, the load generator, and the end-to-end tests.

use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One persistent connection to a query server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::over(stream)
    }

    /// Wraps an already-established stream.
    pub fn over(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true)?; // request/response lines, Nagle poison
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets the response-read timeout.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request and reads its response line.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let mut text = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends one raw request line (not necessarily valid JSON) and reads
    /// the raw response line — the escape hatch for protocol tests and the
    /// CLI's pass-through mode.
    pub fn call_raw(&mut self, line: &str) -> io::Result<String> {
        let mut text = line.to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        let mut out = String::new();
        if self.reader.read_line(&mut out)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(out.trim_end().to_string())
    }
}
