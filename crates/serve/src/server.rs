//! The TCP server: accept loop + crossbeam scoped worker pool.
//!
//! The threading model is the refine engine's, repointed at sockets: a
//! fixed pool of scoped workers ([`crossbeam::thread::scope`], the
//! workspace's one sanctioned parallelism primitive) pulls accepted
//! connections off an in-process queue, and the accept loop runs in the
//! calling thread. [`Server::run`] therefore blocks until a
//! [`ShutdownHandle`] fires; [`Server::spawn_background`] wraps it in a
//! detached thread for tests, the load generator, and anything else that
//! needs a live server without owning a thread of its own.
//!
//! Shutdown is cooperative: the handle flips an [`AtomicBool`] and opens a
//! throwaway connection to the listener, which unblocks `accept` so the
//! loop observes the flag. The run loop then closes every in-flight
//! connection (each worker registers the socket it is serving), the queue's
//! sender side drops, and workers drain and exit — so `run` returns
//! promptly even when clients are idle inside their read timeout.

use crate::metrics::ServeMetrics;
use crate::protocol;
use obs::WorkerTracer;
use snapshot::Snapshot;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// In-flight connections, keyed by an id so a worker can deregister the
/// exact socket it finished with. Closed wholesale at shutdown.
#[derive(Default)]
struct ActiveConns {
    next_id: AtomicU64,
    closing: AtomicBool,
    conns: Mutex<BTreeMap<u64, TcpStream>>,
}

impl ActiveConns {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut conns = self.conns.lock().expect("conn registry lock");
        if self.closing.load(Ordering::SeqCst) {
            // close_all already swept: a connection dequeued during the
            // race would otherwise idle until its read timeout.
            let _ = clone.shutdown(Shutdown::Both);
            return None;
        }
        conns.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns.lock().expect("conn registry lock").remove(&id);
        }
    }

    fn close_all(&self) {
        let conns = self.conns.lock().expect("conn registry lock");
        self.closing.store(true, Ordering::SeqCst);
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Tuning knobs for [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection read timeout; an idle client is disconnected after
    /// this long so it cannot pin a worker.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A remote control for a running server: thread-safe, cheap to clone.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Asks the server to stop accepting and drain. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept loop so it observes the flag; if the
        // listener is already gone the connect just fails, which is fine.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound (but not yet running) query server over a loaded snapshot.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    snapshot: Arc<Snapshot>,
    cfg: ServerConfig,
    rec: obs::Recorder,
    metrics: ServeMetrics,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds a listener. `addr` may be `"127.0.0.1:0"` to let the OS pick a
    /// port — read it back with [`Server::local_addr`].
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        snapshot: Arc<Snapshot>,
        cfg: ServerConfig,
        rec: obs::Recorder,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            snapshot,
            cfg,
            rec,
            metrics: ServeMetrics::new(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can stop this server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr,
        }
    }

    /// Serves until the shutdown handle fires. The accept loop runs in the
    /// calling thread; connections are handled by `cfg.workers` scoped
    /// workers fed through an in-process queue.
    pub fn run(&self) -> io::Result<()> {
        let workers = self.cfg.workers.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        // The vendored crossbeam subset has scoped threads but no channels;
        // a mutex-wrapped std receiver gives the same work-queue shape.
        let rx = Mutex::new(rx);
        let active = ActiveConns::default();
        // detlint::allow(unscoped-thread): request-serving parallelism, not
        // inference; the worker pool only moves bytes between sockets and a
        // read-only snapshot, so scheduling cannot reach any pipeline output
        crossbeam::thread::scope(|s| {
            let (rx, active) = (&rx, &active);
            for w in 0..workers {
                s.spawn(move |_| self.worker_loop(w, rx, active));
            }
            self.accept_loop(&tx);
            drop(tx); // workers drain the queue, then their recv errors out
            active.close_all(); // unblock workers parked in idle reads
        })
        .expect("serve worker panicked");
        Ok(())
    }

    fn accept_loop(&self, tx: &mpsc::Sender<TcpStream>) {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break; // the nudge connection (or any later one) is dropped
            }
            match conn {
                Ok(stream) => {
                    self.rec.add_exec(obs::names::EXEC_SERVE_CONNECTIONS, 1);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1),
            }
        }
    }

    fn worker_loop(&self, w: usize, rx: &Mutex<mpsc::Receiver<TcpStream>>, active: &ActiveConns) {
        let tracer = self.rec.tracer();
        let mut wt = tracer.worker(obs::names::TRACK_SERVE_WORKER, w);
        loop {
            let conn = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break,
            };
            match conn {
                Ok(stream) => {
                    let id = active.register(&stream);
                    self.handle_connection(stream, &mut wt);
                    active.deregister(id);
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(_) => break, // sender dropped: shutdown
            }
        }
        tracer.submit(wt);
    }

    /// Serves one persistent connection: request line in, response line
    /// out, until EOF, a read timeout, or an I/O error.
    fn handle_connection(&self, stream: TcpStream, wt: &mut WorkerTracer) {
        // NODELAY matters: the protocol is small request/response lines, and
        // Nagle + delayed ACK turns each into a ~40 ms round trip.
        let _ = stream.set_nodelay(true);
        if stream
            .set_read_timeout(Some(self.cfg.read_timeout))
            .is_err()
        {
            self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1);
            return;
        }
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => {
                self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1);
                return;
            }
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => {
                    // Timeout or broken pipe: count it and give the worker
                    // back to the pool.
                    self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1);
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            self.rec.add_exec(obs::names::EXEC_SERVE_REQUESTS, 1);
            let t0 = self.metrics.begin();
            wt.begin(obs::names::EV_SERVE_REQUEST, line.len() as u64);
            let (verb, resp) = match protocol::parse_line(&line) {
                Ok(req) => {
                    let verb = obs::names::serve_verb(&req.cmd);
                    let mut resp = protocol::dispatch(&self.snapshot, &req);
                    if let Some(stats) = resp.stats.as_mut() {
                        // Only a live server can answer uptime/latency; the
                        // pure dispatch path leaves these fields absent.
                        self.metrics.fill(stats);
                    }
                    (verb, resp)
                }
                Err(e) => (None, *e),
            };
            wt.end(obs::names::EV_SERVE_REQUEST);
            if let Some(verb) = verb {
                self.metrics.observe(verb, t0);
                if let Some(counter) = obs::names::serve_request_counter(verb) {
                    self.rec.add_exec(counter, 1);
                }
            }
            if !resp.ok {
                self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1);
            }
            let mut text = serde_json::to_string(&resp).expect("response serializes");
            text.push('\n'); // one write → one segment; never split the line
            if writer.write_all(text.as_bytes()).is_err() {
                self.rec.add_exec(obs::names::EXEC_SERVE_ERRORS, 1);
                return;
            }
        }
    }

    /// Runs the server on a detached thread and returns its remote control.
    /// This is the one place the serve stack detaches a thread, so tests
    /// and the load generator can host a live server without carrying
    /// threading allowances of their own.
    pub fn spawn_background(self) -> RunningServer {
        let handle = self.shutdown_handle();
        let addr = self.local_addr;
        // detlint::allow(unscoped-thread): hosts the blocking accept loop
        // behind a joinable handle; serving threads never touch inference
        // state, and RunningServer::shutdown joins before returning
        let join = std::thread::spawn(move || {
            let _ = self.run();
        });
        RunningServer { handle, addr, join }
    }
}

/// A server running on a background thread (see [`Server::spawn_background`]).
#[derive(Debug)]
pub struct RunningServer {
    handle: ShutdownHandle,
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
}

impl RunningServer {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clonable shutdown handle.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(self) {
        self.handle.shutdown();
        let _ = self.join.join();
    }
}
