//! End-to-end: a real server on a loopback socket, concurrent clients,
//! persistent connections, malformed traffic, and graceful shutdown.

use net_types::{parse_ipv4, Asn};
use serve::{Client, Request, Server, ServerConfig};
use snapshot::{AnnRecord, LinkRecord, RouterRecord, Snapshot, SnapshotData};
use std::sync::Arc;
use std::time::Duration;

fn test_snapshot() -> Arc<Snapshot> {
    let annotations: Vec<AnnRecord> = (0u32..64)
        .map(|i| AnnRecord {
            addr: 0x0a00_0000 + i,
            ir: i / 4,
            asn: Asn(100 + i / 4),
            origin: Asn(100 + i / 4),
            conn: Asn(if i % 4 == 0 { 200 } else { 0 }),
        })
        .collect();
    let routers = (0u32..16)
        .map(|ir| RouterRecord {
            ir,
            asn: Asn(100 + ir),
            ifaces: (0..4).map(|k| 0x0a00_0000 + ir * 4 + k).collect(),
        })
        .collect();
    let links = vec![LinkRecord {
        ir: 0,
        ir_as: Asn(100),
        iface_addr: parse_ipv4("10.0.1.1").unwrap(),
        conn_as: Asn(101),
        last_hop: false,
    }];
    let prefixes = vec![
        ("10.0.0.0/8".parse().unwrap(), Asn(10)),
        ("10.0.0.0/26".parse().unwrap(), Asn(100)),
    ];
    Arc::new(Snapshot::from_data(SnapshotData {
        annotations,
        links,
        routers,
        prefixes,
    }))
}

fn start() -> serve::RunningServer {
    let server = Server::bind(
        "127.0.0.1:0",
        test_snapshot(),
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(5),
        },
        obs::Recorder::disabled(),
    )
    .expect("bind loopback");
    server.spawn_background()
}

#[test]
fn every_verb_answers_over_a_persistent_connection() {
    let running = start();
    let mut c = Client::connect(running.addr()).unwrap();

    let r = c
        .call(&Request {
            addr: Some("10.0.0.5".to_string()),
            ..Request::verb("lookup_addr")
        })
        .unwrap();
    assert!(r.ok);
    assert_eq!(r.found, Some(true));
    assert_eq!(r.ir, Some(1));
    assert_eq!(r.asn, Some(101));

    let r = c
        .call(&Request {
            addr: Some("10.200.0.1".to_string()),
            ..Request::verb("lookup_prefix")
        })
        .unwrap();
    assert_eq!(r.prefix.as_deref(), Some("10.0.0.0/8"));
    assert_eq!(r.origin, Some(10));

    let r = c
        .call(&Request {
            ir: Some(3),
            ..Request::verb("router")
        })
        .unwrap();
    assert_eq!(r.asn, Some(103));
    assert_eq!(r.ifaces.as_ref().map(Vec::len), Some(4));

    let r = c
        .call(&Request {
            asn: Some(101),
            ..Request::verb("links_of_as")
        })
        .unwrap();
    assert_eq!(r.links.as_ref().map(Vec::len), Some(1));

    let r = c.call(&Request::verb("stats")).unwrap();
    let s = r.stats.unwrap();
    assert_eq!(
        (s.annotations, s.links, s.routers, s.prefixes),
        (64, 1, 16, 2)
    );
    // A live server reports uptime and per-verb latency; the four verbs
    // exercised above (on this same persistent connection, so strictly
    // before the stats dispatch) each show up with one request.
    assert!(s.uptime_ms.is_some());
    let verbs = s.verbs.expect("live server reports per-verb stats");
    for verb in ["lookup_addr", "lookup_prefix", "router", "links_of_as"] {
        let row = &verbs[verb];
        assert_eq!(row.requests, 1, "{verb}");
        assert!(row.p99_us >= row.p50_us, "{verb}");
    }

    running.shutdown();
}

#[test]
fn malformed_lines_answer_without_dropping_the_connection() {
    let running = start();
    let mut c = Client::connect(running.addr()).unwrap();
    let raw = c.call_raw("this is not json").unwrap();
    assert!(raw.contains("\"ok\":false"), "{raw}");
    // The connection survives; a well-formed request still works.
    let r = c.call(&Request::verb("stats")).unwrap();
    assert!(r.ok);
    running.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let running = start();
    let addr = running.addr();
    // detlint::allow(unscoped-thread): test-only client concurrency against
    // a read-only snapshot; assertions are per-thread and order-free
    crossbeam::thread::scope(|s| {
        for t in 0u32..8 {
            s.spawn(move |_| {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..50 {
                    let idx = (t * 50 + i) % 64;
                    let addr_text = format!("10.0.0.{idx}");
                    let r = c
                        .call(&Request {
                            addr: Some(addr_text),
                            ..Request::verb("lookup_addr")
                        })
                        .unwrap();
                    assert_eq!(r.found, Some(true));
                    assert_eq!(r.asn, Some(100 + idx / 4));
                }
            });
        }
    })
    .unwrap();
    running.shutdown();
}

#[test]
fn shutdown_is_graceful_and_prompt() {
    let running = start();
    let addr = running.addr();
    let mut c = Client::connect(addr).unwrap();
    assert!(c.call(&Request::verb("stats")).unwrap().ok);
    running.shutdown(); // joins the accept loop and workers
                        // New connections are no longer served.
    let mut refused = false;
    for _ in 0..10 {
        match Client::connect(addr) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(mut c2) => {
                if c2.call(&Request::verb("stats")).is_err() {
                    refused = true;
                    break;
                }
            }
        }
    }
    assert!(refused, "server kept answering after shutdown");
}

#[test]
fn counters_flow_through_the_recorder() {
    let rec = obs::Recorder::new(false);
    let server = Server::bind(
        "127.0.0.1:0",
        test_snapshot(),
        ServerConfig::default(),
        rec.clone(),
    )
    .unwrap();
    let running = server.spawn_background();
    let mut c = Client::connect(running.addr()).unwrap();
    for _ in 0..3 {
        assert!(c.call(&Request::verb("stats")).unwrap().ok);
    }
    let _ = c.call_raw("junk").unwrap();
    drop(c);
    running.shutdown();
    let report = rec.report();
    // Exec-class only: traffic must never contaminate deterministic counters.
    assert!(report.counters.is_empty());
    assert!(report.exec["serve.requests"] >= 4);
    assert!(report.exec["serve.connections"] >= 1);
    assert!(report.exec["serve.errors"] >= 1);
}
