//! CAIDA *serial-1* relationship file format.
//!
//! One relationship per line: `<provider>|<customer>|-1` for transit and
//! `<peer>|<peer>|0` for peering. Comment lines start with `#`. This is the
//! format published at <https://publicdata.caida.org/datasets/as-relationships/>
//! and the interchange format between our generator, inference, and the
//! bdrmapIT core.

use crate::{AsRelationships, Relationship};
use net_types::Asn;
use std::fmt;

/// Error from parsing a serial-1 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SerialParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serial-1 parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SerialParseError {}

impl AsRelationships {
    /// Serializes to serial-1 text, canonical pair order, transit edges as
    /// `provider|customer|-1`.
    pub fn to_serial1(&self) -> String {
        let mut out =
            String::from("# AS relationships (serial-1): <provider|customer|-1> <peer|peer|0>\n");
        for (a, b, rel) in self.iter() {
            match rel {
                Relationship::Provider => out.push_str(&format!("{}|{}|-1\n", a.0, b.0)),
                Relationship::Customer => out.push_str(&format!("{}|{}|-1\n", b.0, a.0)),
                Relationship::Peer => out.push_str(&format!("{}|{}|0\n", a.0, b.0)),
            }
        }
        out
    }

    /// Parses serial-1 text.
    pub fn from_serial1(text: &str) -> Result<Self, SerialParseError> {
        let mut rels = AsRelationships::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| SerialParseError {
                line: i + 1,
                message: message.to_string(),
            };
            let mut fields = line.split('|');
            let a: u32 = fields
                .next()
                .ok_or_else(|| err("missing first AS"))?
                .parse()
                .map_err(|_| err("bad first AS"))?;
            let b: u32 = fields
                .next()
                .ok_or_else(|| err("missing second AS"))?
                .parse()
                .map_err(|_| err("bad second AS"))?;
            let rel = fields.next().ok_or_else(|| err("missing relationship"))?;
            match rel {
                "-1" => rels.add_p2c(Asn(a), Asn(b)),
                "0" => rels.add_p2p(Asn(a), Asn(b)),
                other => return Err(err(&format!("unknown relationship code {other:?}"))),
            }
        }
        Ok(rels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(3356), Asn(64500));
        r.add_p2c(Asn(64500), Asn(64501));
        r.add_p2p(Asn(3356), Asn(1299));
        let text = r.to_serial1();
        let back = AsRelationships::from_serial1(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.is_provider(Asn(3356), Asn(64500)));
        assert!(back.is_provider(Asn(64500), Asn(64501)));
        assert!(back.is_peer(Asn(1299), Asn(3356)));
    }

    #[test]
    fn parses_reference_sample() {
        let text = "\
# comment

1|2|-1
2|3|0
";
        let r = AsRelationships::from_serial1(text).unwrap();
        assert!(r.is_provider(Asn(1), Asn(2)));
        assert!(r.is_peer(Asn(2), Asn(3)));
    }

    #[test]
    fn error_reporting() {
        let e = AsRelationships::from_serial1("1|2|9\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown relationship"));
        let e = AsRelationships::from_serial1("x|2|-1\n").unwrap_err();
        assert!(e.message.contains("bad first AS"));
        let e = AsRelationships::from_serial1("1\n").unwrap_err();
        assert!(e.message.contains("missing second AS"));
    }
}
