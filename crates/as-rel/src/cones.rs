//! Customer cones.

use crate::AsRelationships;
use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-AS customer cones: the set of ASes reachable from an AS by following
/// only provider→customer edges, *including the AS itself* (Luckie et al.
/// 2013 convention, which the paper follows — a stub AS has cone size 1).
///
/// bdrmapIT consults cones constantly: "select the AS with the smallest
/// customer cone" (§5.1, §6.1.4), "customer cone of at most five ASes"
/// (§4.4), "the AS in L with the largest customer cone" (§6.1.1), so both
/// the sets and the sizes are precomputed here.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CustomerCones {
    cones: BTreeMap<Asn, BTreeSet<Asn>>,
}

impl CustomerCones {
    /// Computes every cone from a relationship database.
    ///
    /// Provider→customer edges should form a DAG; if inference produced a
    /// cycle, members of the cycle end up in each other's cones, which is
    /// the conservative outcome (cycle handling never loops).
    pub fn compute(rels: &AsRelationships) -> Self {
        let mut cones: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
        // Iterative DFS with an explicit visiting stack per root would be
        // O(V·E) worst case; instead run a fixpoint over reverse topological
        // structure: repeatedly fold customers' cones into providers until
        // stable. Converges in ≤ depth-of-hierarchy passes on a DAG.
        let ases = rels.ases();
        for &asn in &ases {
            cones.insert(asn, BTreeSet::from([asn]));
        }
        loop {
            let mut changed = false;
            for &asn in &ases {
                let mut merged: BTreeSet<Asn> = BTreeSet::new();
                for cust in rels.customers_of(asn) {
                    if let Some(cc) = cones.get(&cust) {
                        merged.extend(cc.iter().copied());
                    }
                }
                let mine = cones.get_mut(&asn).expect("initialized");
                let before = mine.len();
                mine.extend(merged);
                if mine.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        CustomerCones { cones }
    }

    /// The cone of `asn`. Unknown ASes get the singleton `{asn}` semantics
    /// via [`CustomerCones::size`]; this accessor returns `None` for them.
    pub fn cone(&self, asn: Asn) -> Option<&BTreeSet<Asn>> {
        self.cones.get(&asn)
    }

    /// Cone size of `asn`; ASes absent from the relationship graph count as
    /// stubs of size 1.
    pub fn size(&self, asn: Asn) -> usize {
        self.cones.get(&asn).map_or(1, BTreeSet::len)
    }

    /// Is `member` inside the cone of `asn`? (Every AS is in its own cone.)
    pub fn contains(&self, asn: Asn, member: Asn) -> bool {
        if asn == member {
            return true;
        }
        self.cones.get(&asn).is_some_and(|c| c.contains(&member))
    }

    /// `|cone(asn) ∩ others|` — used by Alg. 1 line 6 of the paper.
    pub fn intersection_size(&self, asn: Asn, others: &BTreeSet<Asn>) -> usize {
        match self.cones.get(&asn) {
            Some(c) => c.intersection(others).count(),
            None => usize::from(others.contains(&asn)),
        }
    }

    /// Among `candidates`, the one with the smallest cone, ties to lowest
    /// ASN (the paper's recurring "smallest customer cone" tie-break).
    pub fn smallest_cone<I: IntoIterator<Item = Asn>>(&self, candidates: I) -> Option<Asn> {
        candidates.into_iter().min_by_key(|&a| (self.size(a), a))
    }

    /// Among `candidates`, the one with the largest cone, ties to lowest
    /// ASN (used by the IXP vote heuristic, §6.1.1).
    pub fn largest_cone<I: IntoIterator<Item = Asn>>(&self, candidates: I) -> Option<Asn> {
        candidates
            .into_iter()
            .max_by_key(|&a| (self.size(a), std::cmp::Reverse(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 ── clique peer ── 2
    /// │                   │
    /// 3 (customer of 1)   4 (customer of 2)
    /// │
    /// 5 (customer of 3, also customer of 4)
    fn fixture() -> AsRelationships {
        let mut r = AsRelationships::new();
        r.add_p2p(Asn(1), Asn(2));
        r.add_p2c(Asn(1), Asn(3));
        r.add_p2c(Asn(2), Asn(4));
        r.add_p2c(Asn(3), Asn(5));
        r.add_p2c(Asn(4), Asn(5));
        r
    }

    #[test]
    fn cone_contents() {
        let cones = CustomerCones::compute(&fixture());
        assert_eq!(
            cones.cone(Asn(1)).unwrap(),
            &[Asn(1), Asn(3), Asn(5)]
                .into_iter()
                .collect::<BTreeSet<_>>()
        );
        assert_eq!(cones.size(Asn(1)), 3);
        assert_eq!(cones.size(Asn(2)), 3);
        assert_eq!(cones.size(Asn(3)), 2);
        assert_eq!(cones.size(Asn(5)), 1);
        // Peering does not contribute to cones.
        assert!(!cones.contains(Asn(1), Asn(2)));
        assert!(cones.contains(Asn(1), Asn(5)));
        assert!(cones.contains(Asn(5), Asn(5)));
    }

    #[test]
    fn unknown_as_is_stub() {
        let cones = CustomerCones::compute(&fixture());
        assert_eq!(cones.size(Asn(99)), 1);
        assert!(cones.contains(Asn(99), Asn(99)));
        assert!(!cones.contains(Asn(99), Asn(1)));
    }

    #[test]
    fn tie_breaks() {
        let cones = CustomerCones::compute(&fixture());
        // smallest: 5 (size 1); tie between 3 and 4 (size 2) → lowest ASN.
        assert_eq!(cones.smallest_cone([Asn(3), Asn(4)]), Some(Asn(3)));
        assert_eq!(cones.smallest_cone([Asn(1), Asn(5)]), Some(Asn(5)));
        // largest: tie between 1 and 2 (size 3) → lowest ASN.
        assert_eq!(cones.largest_cone([Asn(1), Asn(2), Asn(3)]), Some(Asn(1)));
        assert_eq!(cones.smallest_cone(std::iter::empty()), None);
    }

    #[test]
    fn intersection() {
        let cones = CustomerCones::compute(&fixture());
        let others: BTreeSet<Asn> = [Asn(3), Asn(4), Asn(5)].into_iter().collect();
        assert_eq!(cones.intersection_size(Asn(1), &others), 2); // 3 and 5
        assert_eq!(cones.intersection_size(Asn(99), &others), 0);
        let with99: BTreeSet<Asn> = [Asn(99)].into_iter().collect();
        assert_eq!(cones.intersection_size(Asn(99), &with99), 1);
    }

    #[test]
    fn cycle_terminates() {
        let mut r = AsRelationships::new();
        // A p2c cycle (bad inference): 1→2→3→1.
        r.add_p2c(Asn(1), Asn(2));
        r.add_p2c(Asn(2), Asn(3));
        r.add_p2c(Asn(3), Asn(1));
        let cones = CustomerCones::compute(&r);
        // Everyone absorbs everyone; computation must terminate.
        assert_eq!(cones.size(Asn(1)), 3);
        assert_eq!(cones.size(Asn(2)), 3);
        assert_eq!(cones.size(Asn(3)), 3);
    }
}
