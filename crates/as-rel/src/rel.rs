//! The relationship database.

use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A relationship viewed *from* one AS toward another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The queried AS is a **provider** of the other (sells it transit).
    Provider,
    /// The queried AS is a **customer** of the other (buys transit).
    Customer,
    /// Settlement-free peering.
    Peer,
}

impl Relationship {
    /// The same edge viewed from the other endpoint.
    pub fn flip(self) -> Relationship {
        match self {
            Relationship::Provider => Relationship::Customer,
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
        }
    }
}

/// Stored relationship for a canonical `(low, high)` AS pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum StoredRel {
    /// The lower-numbered AS is the provider.
    LowProvider,
    /// The higher-numbered AS is the provider.
    HighProvider,
    /// Peering.
    Peer,
}

/// A symmetric database of AS relationships.
///
/// Internally each unordered pair is stored once; all queries are expressed
/// from the perspective of the first argument. The structure also maintains
/// per-AS adjacency sets so `providers_of` / `customers_of` / `peers_of`
/// are O(degree).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AsRelationships {
    pairs: BTreeMap<(Asn, Asn), StoredRel>,
    providers: BTreeMap<Asn, BTreeSet<Asn>>,
    customers: BTreeMap<Asn, BTreeSet<Asn>>,
    peers: BTreeMap<Asn, BTreeSet<Asn>>,
}

fn canon(a: Asn, b: Asn) -> ((Asn, Asn), bool) {
    if a <= b {
        ((a, b), false)
    } else {
        ((b, a), true)
    }
}

impl AsRelationships {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `provider` → `customer` transit. Overwrites any previous
    /// relationship between the pair.
    pub fn add_p2c(&mut self, provider: Asn, customer: Asn) {
        if provider == customer {
            return;
        }
        self.unlink(provider, customer);
        let ((lo, hi), swapped) = canon(provider, customer);
        let stored = if swapped {
            StoredRel::HighProvider
        } else {
            StoredRel::LowProvider
        };
        self.pairs.insert((lo, hi), stored);
        self.customers.entry(provider).or_default().insert(customer);
        self.providers.entry(customer).or_default().insert(provider);
    }

    /// Records a peering between `a` and `b`. Overwrites any previous
    /// relationship between the pair.
    pub fn add_p2p(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        self.unlink(a, b);
        let ((lo, hi), _) = canon(a, b);
        self.pairs.insert((lo, hi), StoredRel::Peer);
        self.peers.entry(a).or_default().insert(b);
        self.peers.entry(b).or_default().insert(a);
    }

    fn unlink(&mut self, a: Asn, b: Asn) {
        let ((lo, hi), _) = canon(a, b);
        if self.pairs.remove(&(lo, hi)).is_some() {
            for (x, y) in [(a, b), (b, a)] {
                if let Some(s) = self.providers.get_mut(&x) {
                    s.remove(&y);
                }
                if let Some(s) = self.customers.get_mut(&x) {
                    s.remove(&y);
                }
                if let Some(s) = self.peers.get_mut(&x) {
                    s.remove(&y);
                }
            }
        }
    }

    /// The relationship of `a` toward `b`, if any is known.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        let ((lo, hi), swapped) = canon(a, b);
        let stored = *self.pairs.get(&(lo, hi))?;
        let rel = match stored {
            StoredRel::Peer => Relationship::Peer,
            StoredRel::LowProvider => Relationship::Provider,
            StoredRel::HighProvider => Relationship::Customer,
        };
        Some(if swapped { rel.flip() } else { rel })
    }

    /// Is there any known relationship between `a` and `b`?
    pub fn has_relationship(&self, a: Asn, b: Asn) -> bool {
        let ((lo, hi), _) = canon(a, b);
        self.pairs.contains_key(&(lo, hi))
    }

    /// Is `a` a provider of `b`?
    pub fn is_provider(&self, a: Asn, b: Asn) -> bool {
        self.relationship(a, b) == Some(Relationship::Provider)
    }

    /// Is `a` a customer of `b`?
    pub fn is_customer(&self, a: Asn, b: Asn) -> bool {
        self.relationship(a, b) == Some(Relationship::Customer)
    }

    /// Are `a` and `b` peers?
    pub fn is_peer(&self, a: Asn, b: Asn) -> bool {
        self.relationship(a, b) == Some(Relationship::Peer)
    }

    /// The providers of `asn`.
    pub fn providers_of(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.providers.get(&asn).into_iter().flatten().copied()
    }

    /// The customers of `asn`.
    pub fn customers_of(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.customers.get(&asn).into_iter().flatten().copied()
    }

    /// The peers of `asn`.
    pub fn peers_of(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.peers.get(&asn).into_iter().flatten().copied()
    }

    /// All neighbors of `asn` regardless of relationship type.
    pub fn neighbors_of(&self, asn: Asn) -> BTreeSet<Asn> {
        self.providers_of(asn)
            .chain(self.customers_of(asn))
            .chain(self.peers_of(asn))
            .collect()
    }

    /// Number of relationship edges.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no relationships are stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Every AS that appears in at least one relationship.
    pub fn ases(&self) -> BTreeSet<Asn> {
        self.pairs.keys().flat_map(|&(a, b)| [a, b]).collect()
    }

    /// Iterates over `(a, b, relationship-of-a-toward-b)` with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.pairs.iter().map(|(&(lo, hi), &stored)| {
            let rel = match stored {
                StoredRel::Peer => Relationship::Peer,
                StoredRel::LowProvider => Relationship::Provider,
                StoredRel::HighProvider => Relationship::Customer,
            };
            (lo, hi, rel)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_views() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(10), Asn(20));
        assert_eq!(
            r.relationship(Asn(10), Asn(20)),
            Some(Relationship::Provider)
        );
        assert_eq!(
            r.relationship(Asn(20), Asn(10)),
            Some(Relationship::Customer)
        );
        assert!(r.is_provider(Asn(10), Asn(20)));
        assert!(r.is_customer(Asn(20), Asn(10)));
        assert!(!r.is_peer(Asn(10), Asn(20)));
        assert!(r.has_relationship(Asn(20), Asn(10)));
        assert!(!r.has_relationship(Asn(10), Asn(30)));
    }

    #[test]
    fn swapped_order_provider() {
        let mut r = AsRelationships::new();
        // Higher ASN is the provider — exercises StoredRel::HighProvider.
        r.add_p2c(Asn(20), Asn(10));
        assert!(r.is_provider(Asn(20), Asn(10)));
        assert!(r.is_customer(Asn(10), Asn(20)));
    }

    #[test]
    fn peering() {
        let mut r = AsRelationships::new();
        r.add_p2p(Asn(1), Asn(2));
        assert!(r.is_peer(Asn(1), Asn(2)));
        assert!(r.is_peer(Asn(2), Asn(1)));
        assert_eq!(r.peers_of(Asn(1)).collect::<Vec<_>>(), vec![Asn(2)]);
    }

    #[test]
    fn overwrite_relationship() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(1), Asn(2));
        r.add_p2p(Asn(1), Asn(2));
        assert!(r.is_peer(Asn(1), Asn(2)));
        assert_eq!(r.customers_of(Asn(1)).count(), 0);
        assert_eq!(r.providers_of(Asn(2)).count(), 0);
        assert_eq!(r.len(), 1);
        // And back again, flipping direction.
        r.add_p2c(Asn(2), Asn(1));
        assert!(r.is_customer(Asn(1), Asn(2)));
        assert_eq!(r.peers_of(Asn(1)).count(), 0);
    }

    #[test]
    fn self_loops_ignored() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(1), Asn(1));
        r.add_p2p(Asn(2), Asn(2));
        assert!(r.is_empty());
    }

    #[test]
    fn adjacency_queries() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(1), Asn(10));
        r.add_p2c(Asn(1), Asn(11));
        r.add_p2c(Asn(2), Asn(1));
        r.add_p2p(Asn(1), Asn(3));
        let customers: Vec<Asn> = r.customers_of(Asn(1)).collect();
        assert_eq!(customers, vec![Asn(10), Asn(11)]);
        assert_eq!(r.providers_of(Asn(1)).collect::<Vec<_>>(), vec![Asn(2)]);
        assert_eq!(
            r.neighbors_of(Asn(1)),
            [Asn(2), Asn(3), Asn(10), Asn(11)].into_iter().collect()
        );
        assert_eq!(r.ases().len(), 5);
    }

    #[test]
    fn iter_yields_canonical_edges() {
        let mut r = AsRelationships::new();
        r.add_p2c(Asn(5), Asn(3));
        let edges: Vec<_> = r.iter().collect();
        assert_eq!(edges, vec![(Asn(3), Asn(5), Relationship::Customer)]);
    }
}
