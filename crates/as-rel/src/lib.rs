//! AS business relationships: storage, inference, and customer cones.
//!
//! bdrmapIT (paper §4.1) "rel\[ies\] on Luckie et al.'s technique to determine
//! whether two adjacent ASes in BGP paths are in a transit relationship.
//! This technique also infers the customer cone for an AS." This crate
//! provides:
//!
//! * [`AsRelationships`] — the relationship database: provider/customer/peer
//!   edges with symmetric lookup, neighbor queries, and the CAIDA *serial-1*
//!   interchange format (`provider|customer|-1`, `peer|peer|0`).
//! * [`CustomerCones`] — per-AS customer cones (the set of ASes reachable by
//!   following only provider→customer edges) and cone sizes, which the
//!   bdrmapIT tie-breaks consult constantly.
//! * [`RelQueryCache`] — a worker-local memo table over the two structures
//!   above for the refinement engine's hot election loops.
//! * [`infer`] — relationship *inference* from collapsed BGP AS paths, a
//!   Gao-style vote algorithm extended with clique detection and transit
//!   degrees in the spirit of Luckie et al. 2013, so the pipeline can run
//!   end-to-end without a relationship oracle.
//! * [`valley_free`] — a path checker used by tests and by the routing
//!   simulator's invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cones;
pub mod infer;
mod rel;
mod serial;

pub use cache::{CacheStats, RelQueryCache};
pub use cones::CustomerCones;
pub use rel::{AsRelationships, Relationship};
pub use serial::SerialParseError;

use net_types::Asn;

/// Checks the valley-free property of an AS path under a relationship
/// database: a path must consist of zero or more customer→provider hops,
/// then at most one peer–peer hop, then zero or more provider→customer
/// hops. Hops with no known relationship fail the check.
pub fn valley_free(rels: &AsRelationships, path: &[Asn]) -> bool {
    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    enum Stage {
        Up,
        Peered,
        Down,
    }
    let mut stage = Stage::Up;
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        match rels.relationship(a, b) {
            // a is a customer of b: climbing up. Only legal before the peak.
            Some(Relationship::Customer) => {
                if stage != Stage::Up {
                    return false;
                }
            }
            Some(Relationship::Peer) => {
                if stage != Stage::Up {
                    return false;
                }
                stage = Stage::Peered;
            }
            // a is a provider of b: descending.
            Some(Relationship::Provider) => {
                stage = Stage::Down;
            }
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rels() -> AsRelationships {
        let mut r = AsRelationships::new();
        // 1 and 2 are tier-1 peers; 3 is customer of 1; 4 customer of 2;
        // 5 customer of 3.
        r.add_p2c(Asn(1), Asn(3));
        r.add_p2c(Asn(2), Asn(4));
        r.add_p2c(Asn(3), Asn(5));
        r.add_p2p(Asn(1), Asn(2));
        r
    }

    fn path(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn classic_valley_free_paths() {
        let r = rels();
        // up, peer, down
        assert!(valley_free(&r, &path(&[5, 3, 1, 2, 4])));
        // pure up
        assert!(valley_free(&r, &path(&[5, 3, 1])));
        // pure down
        assert!(valley_free(&r, &path(&[1, 3, 5])));
        // single AS
        assert!(valley_free(&r, &path(&[5])));
    }

    #[test]
    fn valleys_rejected() {
        let r = rels();
        // Descend then climb again: 1→3 (down) then 3→1 (up).
        assert!(!valley_free(&r, &path(&[1, 3, 1])));
        // Peer hop after the peak: up to 1, peer to 2, then peer back.
        assert!(!valley_free(&r, &path(&[3, 1, 2, 1])));
        // Unknown relationship fails closed.
        assert!(!valley_free(&r, &path(&[5, 4])));
    }

    #[test]
    fn peer_after_descent_rejected() {
        let mut r = rels();
        r.add_p2p(Asn(3), Asn(4));
        // 1→3 is provider→customer (descending); a peer hop after it is a valley.
        assert!(!valley_free(&r, &path(&[1, 3, 4])));
        // 5→3 ascends, 3–4 peers, legal.
        assert!(valley_free(&r, &path(&[5, 3, 4])));
    }
}
