//! AS relationship inference from BGP paths.
//!
//! The paper consumes relationships inferred by Luckie et al. 2013 (the
//! CAIDA "AS Rank" algorithm). We implement the same family of technique:
//! a Gao-style vote over path peaks, anchored by a transit-degree-derived
//! clique of tier-1 networks — enough to run the whole pipeline without a
//! relationship oracle, and to measure how inference error propagates into
//! bdrmapIT (the generator can supply ground-truth relationships for
//! comparison).
//!
//! Algorithm outline:
//!
//! 1. Sanitize paths: collapse prepending, drop paths with loops or AS0.
//! 2. Compute **transit degree** for every AS: the number of distinct
//!    neighbors it appears adjacent to while in the *interior* of a path
//!    (Luckie et al. §5.1).
//! 3. Seed a **clique**: greedily grow from the highest-transit-degree AS,
//!    adding candidates (in transit-degree order) adjacent to every member.
//! 4. **Vote**: in each path the peak is the AS with the highest transit
//!    degree; edges before the peak vote "right side is the provider",
//!    edges after vote "left side is the provider".
//! 5. **Classify**: clique–clique edges peer; one-sided votes become p2c;
//!    balanced two-sided votes between comparable-degree ASes peer;
//!    otherwise the majority direction wins.

use crate::AsRelationships;
use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tunables for [`infer_relationships`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// How many top-transit-degree ASes to consider as clique candidates.
    pub clique_candidates: usize,
    /// Two-sided vote ratio (minority/majority) above which an edge between
    /// comparable-degree ASes is classified as peering instead of transit.
    pub sibling_ratio: f64,
    /// Transit-degree ratio (smaller/larger) above which two ASes count as
    /// "comparable degree" for the peering rule.
    pub peer_degree_ratio: f64,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            clique_candidates: 12,
            sibling_ratio: 0.5,
            peer_degree_ratio: 0.25,
        }
    }
}

/// Computes transit degrees: for each AS, the number of distinct neighbors
/// it is adjacent to in the interior of at least one path.
pub fn transit_degrees(paths: &[Vec<Asn>]) -> BTreeMap<Asn, usize> {
    let mut neighbors: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    for path in paths {
        let path = sanitize(path);
        let Some(path) = path else { continue };
        for i in 1..path.len().saturating_sub(1) {
            let mid = path[i];
            neighbors.entry(mid).or_default().insert(path[i - 1]);
            neighbors.entry(mid).or_default().insert(path[i + 1]);
        }
    }
    neighbors.into_iter().map(|(a, n)| (a, n.len())).collect()
}

/// Collapses prepending and rejects loops/AS0; returns `None` for unusable
/// paths.
fn sanitize(path: &[Asn]) -> Option<Vec<Asn>> {
    let mut out: Vec<Asn> = Vec::with_capacity(path.len());
    for &a in path {
        if a.is_none() {
            return None;
        }
        if out.last() == Some(&a) {
            continue;
        }
        if out.contains(&a) {
            return None; // loop
        }
        out.push(a);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Greedy clique construction over path adjacency.
///
/// Every AS among the top `candidates` by transit degree seeds a greedy
/// clique (candidates joining in degree order when adjacent to all current
/// members); the clique with the largest total transit degree wins. Seeding
/// from every candidate matters: a regional transit can out-rank a true
/// tier-1 in a small corpus, and a single greedy pass seeded there would
/// exclude the real clique.
pub fn infer_clique(
    paths: &[Vec<Asn>],
    degrees: &BTreeMap<Asn, usize>,
    candidates: usize,
) -> BTreeSet<Asn> {
    // Path adjacency: which AS pairs ever appear adjacent.
    let mut adjacent: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    for path in paths {
        let Some(path) = sanitize(path) else { continue };
        for w in path.windows(2) {
            let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
            adjacent.insert((a, b));
        }
    }
    let mut ranked: Vec<(Asn, usize)> = degrees.iter().map(|(&a, &d)| (a, d)).collect();
    // Highest degree first; ties toward lower ASN for determinism.
    ranked.sort_by_key(|&(a, d)| (std::cmp::Reverse(d), a));
    ranked.truncate(candidates);
    ranked.retain(|&(_, d)| d > 0);

    let is_adjacent = |a: Asn, b: Asn| adjacent.contains(&(a.min(b), a.max(b)));
    let mut best: BTreeSet<Asn> = BTreeSet::new();
    let mut best_weight: usize = 0;
    for &(seed, _) in &ranked {
        let mut clique: BTreeSet<Asn> = BTreeSet::from([seed]);
        for &(asn, _) in &ranked {
            if asn != seed && clique.iter().all(|&m| is_adjacent(asn, m)) {
                clique.insert(asn);
            }
        }
        // A clique needs mutual peering evidence; singletons are not one.
        if clique.len() < 2 {
            continue;
        }
        let weight: usize = clique
            .iter()
            .map(|a| degrees.get(a).copied().unwrap_or(0))
            .sum();
        if weight > best_weight {
            best_weight = weight;
            best = clique;
        }
    }
    best
}

/// Infers relationships from collapsed BGP AS paths.
pub fn infer_relationships(paths: &[Vec<Asn>], cfg: &InferenceConfig) -> AsRelationships {
    let degrees = transit_degrees(paths);
    let clique = infer_clique(paths, &degrees, cfg.clique_candidates);
    let degree = |a: Asn| degrees.get(&a).copied().unwrap_or(0);

    // Vote per canonical edge: (votes "low is provider", votes "high is
    // provider"), plus top-edge statistics — how often the edge is incident
    // to the path's peak versus how often it appears at all. An edge that
    // only ever appears at the top of paths between comparable-degree ASes
    // is a lateral peering, not transit (Luckie et al.'s peering position).
    let mut votes: BTreeMap<(Asn, Asn), (u64, u64)> = BTreeMap::new();
    let mut at_top: BTreeMap<(Asn, Asn), (u64, u64)> = BTreeMap::new();
    let canon = |a: Asn, b: Asn| (a.min(b), a.max(b));

    for path in paths {
        let Some(path) = sanitize(path) else { continue };
        if path.len() < 2 {
            continue;
        }
        // Peak: the first clique member when one is present (routes cross
        // the clique at their top), otherwise the first index with maximal
        // transit degree.
        let peak = path
            .iter()
            .position(|a| clique.contains(a))
            .unwrap_or_else(|| {
                (0..path.len())
                    .max_by_key(|&i| (degree(path[i]), std::cmp::Reverse(i)))
                    .expect("non-empty")
            });
        for i in 0..path.len() - 1 {
            let (a, b) = (path[i], path[i + 1]);
            let key = canon(a, b);
            let entry = votes.entry(key).or_insert((0, 0));
            let provider = if i < peak { b } else { a };
            if provider == key.0 {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
            let top = at_top.entry(key).or_insert((0, 0));
            top.1 += 1;
            if i + 1 == peak || i == peak {
                top.0 += 1;
            }
        }
    }

    let mut rels = AsRelationships::new();
    for (&(lo, hi), &(lo_provider, hi_provider)) in &votes {
        // Clique members peer with each other; an edge with exactly one
        // clique endpoint is transit from the clique member (the clique has
        // no providers by construction).
        let (lo_cl, hi_cl) = (clique.contains(&lo), clique.contains(&hi));
        if lo_cl && hi_cl {
            rels.add_p2p(lo, hi);
            continue;
        }
        if lo_cl != hi_cl {
            let (provider, customer) = if lo_cl { (lo, hi) } else { (hi, lo) };
            rels.add_p2c(provider, customer);
            continue;
        }
        let (maj, min_votes, provider, customer) = if lo_provider >= hi_provider {
            (lo_provider, hi_provider, lo, hi)
        } else {
            (hi_provider, lo_provider, hi, lo)
        };
        debug_assert!(maj > 0);
        let ratio = min_votes as f64 / maj as f64;
        let (dl, dh) = (degree(lo) as f64, degree(hi) as f64);
        let comparable = dl.min(dh) > 0.0 && dl.min(dh) / dl.max(dh) >= cfg.peer_degree_ratio;
        let _ = &at_top; // position statistics retained for diagnostics
        if comparable && min_votes > 0 && ratio >= cfg.sibling_ratio {
            rels.add_p2p(lo, hi);
        } else {
            rels.add_p2c(provider, customer);
        }
    }

    // ---- refinement pass: peering recovery via export policy ----
    // A provider exports its customer's routes to *everyone*, so paths
    // descend into the pair from the provider's own providers and peers:
    // some path contains (x, u, v) with x above u. A peer exports the other
    // peer's routes only to customers, so every observed predecessor of a
    // (u, v) peering crossing is a customer of u (or the path starts at u).
    // Inferred p2c edges that are never entered from above, between
    // comparable-degree non-clique ASes, are reclassified as peering.
    let mut entered_from_above: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    for path in paths {
        let Some(path) = sanitize(path) else { continue };
        for w in path.windows(3) {
            let (x, u, v) = (w[0], w[1], w[2]);
            use crate::Relationship;
            if matches!(
                rels.relationship(x, u),
                Some(Relationship::Provider) | Some(Relationship::Peer)
            ) {
                entered_from_above.insert((u.min(v), u.max(v)));
            }
        }
    }
    let transit_edges: Vec<(Asn, Asn)> = rels
        .iter()
        .filter(|&(_, _, rel)| rel != crate::Relationship::Peer)
        .map(|(a, b, _)| (a, b))
        .collect();
    for (lo, hi) in transit_edges {
        if clique.contains(&lo) || clique.contains(&hi) {
            continue;
        }
        if entered_from_above.contains(&(lo, hi)) {
            continue;
        }
        let (dl, dh) = (degree(lo) as f64, degree(hi) as f64);
        let comparable = dl.min(dh) > 0.0 && dl.min(dh) / dl.max(dh) >= cfg.peer_degree_ratio;
        if comparable {
            rels.add_p2p(lo, hi);
        }
    }
    rels
}

/// Compares inferred relationships against ground truth, returning
/// `(agreeing edges, edges present in both)` — the standard PPV measure used
/// when validating relationship inference.
pub fn agreement(inferred: &AsRelationships, truth: &AsRelationships) -> (usize, usize) {
    let mut common = 0;
    let mut agree = 0;
    for (a, b, rel) in inferred.iter() {
        if let Some(true_rel) = truth.relationship(a, b) {
            common += 1;
            if true_rel == rel {
                agree += 1;
            }
        }
    }
    (agree, common)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relationship;

    fn path(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    /// Hierarchy: 1,2 tier-1 peers; 3 customer of 1; 4 customer of 2;
    /// 5 customer of 3; 6 customer of 4. Paths are the valley-free routes
    /// collectors at 5's and 6's providers would see.
    fn corpus() -> Vec<Vec<Asn>> {
        vec![
            // Routes to 5 (origin last).
            path(&[6, 4, 2, 1, 3, 5]),
            path(&[4, 2, 1, 3, 5]),
            path(&[2, 1, 3, 5]),
            path(&[1, 3, 5]),
            path(&[3, 5]),
            // Routes to 6.
            path(&[5, 3, 1, 2, 4, 6]),
            path(&[3, 1, 2, 4, 6]),
            path(&[1, 2, 4, 6]),
            path(&[2, 4, 6]),
            path(&[4, 6]),
            // Routes to 3 and 4 themselves.
            path(&[2, 1, 3]),
            path(&[1, 3]),
            path(&[1, 2, 4]),
            path(&[2, 4]),
            // Extra stubs 7,8 (customers of 1) and 9,10 (customers of 2),
            // giving the tier-1s visibly higher transit degrees.
            path(&[3, 1, 7]),
            path(&[2, 1, 7]),
            path(&[1, 7]),
            path(&[3, 1, 8]),
            path(&[2, 1, 8]),
            path(&[1, 8]),
            path(&[4, 2, 9]),
            path(&[1, 2, 9]),
            path(&[2, 9]),
            path(&[1, 2, 10]),
            path(&[2, 10]),
        ]
    }

    #[test]
    fn transit_degree_ranks_tier1_highest() {
        let d = transit_degrees(&corpus());
        assert!(d[&Asn(1)] >= 3);
        assert!(d[&Asn(2)] >= 3);
        assert!(d[&Asn(1)] > d[&Asn(3)]);
        // Stubs never transit.
        assert!(!d.contains_key(&Asn(5)) || d[&Asn(5)] == 0);
    }

    #[test]
    fn clique_is_the_tier1s() {
        let d = transit_degrees(&corpus());
        let clique = infer_clique(&corpus(), &d, 12);
        assert!(clique.contains(&Asn(1)));
        assert!(clique.contains(&Asn(2)));
        assert!(!clique.contains(&Asn(5)));
    }

    #[test]
    fn recovers_hierarchy() {
        let rels = infer_relationships(&corpus(), &InferenceConfig::default());
        assert_eq!(rels.relationship(Asn(1), Asn(2)), Some(Relationship::Peer));
        assert!(rels.is_provider(Asn(1), Asn(3)));
        assert!(rels.is_provider(Asn(2), Asn(4)));
        assert!(rels.is_provider(Asn(3), Asn(5)));
        assert!(rels.is_provider(Asn(4), Asn(6)));
    }

    #[test]
    fn sanitize_drops_loops_and_prepending() {
        assert_eq!(sanitize(&path(&[1, 2, 2, 3])), Some(path(&[1, 2, 3])));
        assert_eq!(sanitize(&path(&[1, 2, 1])), None);
        assert_eq!(sanitize(&path(&[1, 0, 2])), None);
        assert_eq!(sanitize(&path(&[])), None);
    }

    #[test]
    fn agreement_measure() {
        let truth_rels = {
            let mut r = AsRelationships::new();
            r.add_p2c(Asn(1), Asn(3));
            r.add_p2p(Asn(1), Asn(2));
            r
        };
        let mut inferred = AsRelationships::new();
        inferred.add_p2c(Asn(1), Asn(3)); // agrees
        inferred.add_p2c(Asn(1), Asn(2)); // disagrees (truth: peer)
        inferred.add_p2c(Asn(7), Asn(8)); // not in truth
        assert_eq!(agreement(&inferred, &truth_rels), (1, 2));
    }

    #[test]
    fn empty_corpus() {
        let rels = infer_relationships(&[], &InferenceConfig::default());
        assert!(rels.is_empty());
        assert!(transit_degrees(&[]).is_empty());
    }
}
