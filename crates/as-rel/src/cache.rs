//! Memoized relationship/cone queries for hot election loops.
//!
//! The refinement engine consults [`CustomerCones::size`] and
//! [`AsRelationships::has_relationship`] for every candidate of every
//! election, every iteration. Both are `BTreeMap` lookups; inside one sweep
//! the same handful of ASes is queried thousands of times, so a worker-local
//! memo table turns the tree walks into hash probes. The cache borrows the
//! underlying read-only databases and is cheap to construct, so each
//! refinement worker owns one.

use crate::{AsRelationships, CustomerCones};
use net_types::Asn;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a for the memo keys (4–8 byte AS numbers): a couple of multiplies
/// beats SipHash by an order of magnitude at these key sizes, and the memo
/// tables are private, so HashDoS resistance buys nothing here.
#[derive(Default)]
pub(crate) struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Hit/miss tallies for one cache. Purely observational: the refinement
/// engine reports them as execution-dependent telemetry (each worker owns a
/// cache, so the split varies with the thread count), and nothing in the
/// inference path ever reads them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo tables.
    pub hits: u64,
    /// Queries that fell through to the underlying databases.
    pub misses: u64,
}

/// A memoizing view over an [`AsRelationships`] + [`CustomerCones`] pair.
///
/// All answers are identical to the uncached queries — the cache is purely
/// an access-path optimization and never changes results.
#[derive(Debug)]
pub struct RelQueryCache<'a> {
    rels: &'a AsRelationships,
    cones: &'a CustomerCones,
    // detlint::allow(unordered-collection): memo table probed by key only;
    // nothing ever iterates it, so storage order cannot reach any output
    sizes: FnvMap<Asn, usize>,
    // detlint::allow(unordered-collection): memo table probed by key only;
    // nothing ever iterates it, so storage order cannot reach any output
    related: FnvMap<(Asn, Asn), bool>,
    stats: CacheStats,
}

impl<'a> RelQueryCache<'a> {
    /// Creates an empty cache over the given databases.
    pub fn new(rels: &'a AsRelationships, cones: &'a CustomerCones) -> Self {
        RelQueryCache {
            rels,
            cones,
            sizes: FnvMap::default(),
            related: FnvMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// The hit/miss tallies accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The underlying relationship database.
    pub fn rels(&self) -> &'a AsRelationships {
        self.rels
    }

    /// The underlying cones.
    pub fn cones(&self) -> &'a CustomerCones {
        self.cones
    }

    /// Memoized [`CustomerCones::size`].
    pub fn cone_size(&mut self, asn: Asn) -> usize {
        if let Some(&size) = self.sizes.get(&asn) {
            self.stats.hits += 1;
            return size;
        }
        self.stats.misses += 1;
        let size = self.cones.size(asn);
        self.sizes.insert(asn, size);
        size
    }

    /// Memoized [`AsRelationships::has_relationship`] (symmetric, so the
    /// pair is cached in canonical order).
    pub fn has_relationship(&mut self, a: Asn, b: Asn) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&related) = self.related.get(&key) {
            self.stats.hits += 1;
            return related;
        }
        self.stats.misses += 1;
        let related = self.rels.has_relationship(a, b);
        self.related.insert(key, related);
        related
    }

    /// Memoized [`CustomerCones::largest_cone`]: among `candidates`, the one
    /// with the largest cone, ties to the lowest ASN.
    pub fn largest_cone<I: IntoIterator<Item = Asn>>(&mut self, candidates: I) -> Option<Asn> {
        candidates
            .into_iter()
            .max_by_key(|&a| (self.cone_size(a), std::cmp::Reverse(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbs() -> (AsRelationships, CustomerCones) {
        let mut r = AsRelationships::new();
        r.add_p2p(Asn(1), Asn(2));
        r.add_p2c(Asn(1), Asn(3));
        r.add_p2c(Asn(3), Asn(5));
        let cones = CustomerCones::compute(&r);
        (r, cones)
    }

    #[test]
    fn cache_matches_uncached() {
        let (rels, cones) = dbs();
        let mut cache = RelQueryCache::new(&rels, &cones);
        for a in 1..=6u32 {
            // Query twice: once filling, once hitting the memo.
            for _ in 0..2 {
                assert_eq!(cache.cone_size(Asn(a)), cones.size(Asn(a)));
                for b in 1..=6u32 {
                    assert_eq!(
                        cache.has_relationship(Asn(a), Asn(b)),
                        rels.has_relationship(Asn(a), Asn(b)),
                        "pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let (rels, cones) = dbs();
        let mut cache = RelQueryCache::new(&rels, &cones);
        assert_eq!(cache.stats(), CacheStats::default());
        cache.cone_size(Asn(1)); // miss
        cache.cone_size(Asn(1)); // hit
        cache.has_relationship(Asn(1), Asn(2)); // miss
        cache.has_relationship(Asn(2), Asn(1)); // hit (canonical key)
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn largest_cone_matches_uncached() {
        let (rels, cones) = dbs();
        let mut cache = RelQueryCache::new(&rels, &cones);
        let sets: [&[u32]; 4] = [&[1, 2, 3], &[2, 3], &[5], &[]];
        for set in sets {
            let cands: Vec<Asn> = set.iter().copied().map(Asn).collect();
            assert_eq!(
                cache.largest_cone(cands.iter().copied()),
                cones.largest_cone(cands.iter().copied())
            );
        }
    }
}
