fn demo() {
    // detlint::allow(unordered-iter)
    let x = 1;
    // detlint::allow(no-such-rule): the rule name is wrong
    let y = 2;
    let _ = x + y;
}
