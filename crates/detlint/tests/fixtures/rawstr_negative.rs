//! Negative fixture: nondet-source names inside byte/C/raw string literals
//! are string *content*, not identifiers, and must never fire a rule.

fn f() -> u8 {
    let a = br#"thread_rng SystemTime::now() rand::random()"#;
    let b = cr#"DefaultHasher thread::spawn rayon"#;
    let c = r#"RandomState Instant::now() crossbeam"#;
    let d = b"thread_rng";
    a[0] + d[0]
}
