//! A crate root with the attribute.

#![forbid(unsafe_code)]

fn main() {}
