struct Tally {
    weight: f64,
}

fn demo(rows: &[f64]) -> f64 {
    let mut acc = 0.0;
    for r in rows {
        acc += r;
    }
    let mut t = Tally { weight: 0.0 };
    t.weight += 1.5;
    acc + t.weight
}
