use std::collections::BTreeMap;

fn demo() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let _vals: Vec<u32> = m.values().copied().collect();
}
