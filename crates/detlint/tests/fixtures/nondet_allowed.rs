fn demo() -> u128 {
    // detlint::allow(nondet-source): fixture — wall-clock for a log line only
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
