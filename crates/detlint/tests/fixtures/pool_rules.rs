//! Positive fixture: the pool-concurrency rules.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn scan(wp: &Pool) -> usize {
    let mut total = 0;
    let cache = Mutex::new(Vec::new());
    let out = wp.run("detlint.busy", 8, |i| {
        total += i;
        cache.lock().unwrap().push(i);
        i * 2
    });
    total = out.len();
    total
}

fn counter_value(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn stats_view(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn bump(c: &AtomicU64) {
    let _ = c.load(Ordering::Relaxed);
}
