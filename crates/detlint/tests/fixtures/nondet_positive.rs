use std::collections::hash_map::{DefaultHasher, RandomState};
use std::time::{Instant, SystemTime};

fn demo() {
    let _h = DefaultHasher::new();
    let _s = RandomState::new();
    let _t0 = Instant::now();
    let _wall = SystemTime::now();
}
