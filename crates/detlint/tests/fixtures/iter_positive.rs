use std::collections::{HashMap, HashSet};

type Memo = HashMap<u32, u32>;

fn demo() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let _total: u32 = m.values().sum();
    let memo: Memo = Memo::new();
    let _ = memo.get(&1);
    let mut s = HashSet::new();
    s.insert(3u32);
    for x in s.drain() {
        let _ = x;
    }
}
