#![forbid(unsafe_code)]
//! Negative fixture: exempt shapes for the pool-concurrency rules.

fn stats(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn account(c: &AtomicU64) {
    c.load(Ordering::Relaxed);
}

fn tally(wp: &Pool) -> usize {
    let total = 0;
    let out = wp.run("t", 4, |i| {
        let local = total + i;
        local
    });
    out.len()
}
