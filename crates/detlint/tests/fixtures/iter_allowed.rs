use std::collections::HashMap;

fn demo() {
    // detlint::allow(unordered-collection): fixture — order never escapes
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    // detlint::allow(unordered-iter): fixture — result is re-sorted below
    let mut vals: Vec<u32> = m.values().copied().collect();
    vals.sort_unstable();
    for v in m.values() {} // detlint::allow(unordered-iter): fixture trailing allow
}
