fn demo() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
    rayon::join(|| 1, || 2);
    crossbeam::scope(|_| {}).unwrap();
}
