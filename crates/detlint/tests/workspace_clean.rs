//! The acceptance gate as a test: the real workspace must scan clean.
//!
//! CI runs `cargo run -p detlint` as its own job, but keeping the same
//! check inside `cargo test` means a plain test run catches a determinism
//! hazard (or a stale allow annotation) without any extra tooling.

use std::path::Path;

#[test]
fn workspace_has_no_unannotated_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "expected workspace root at {}",
        root.display()
    );
    let report = detlint::analyze_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {report:?}"
    );
    assert!(
        report.is_clean(),
        "unannotated determinism findings:\n{}",
        report.to_table()
    );
    // Every allow annotation in the workspace carries its reason through.
    assert!(report
        .allowed
        .iter()
        .all(|f| f.allowed.as_deref().is_some_and(|r| !r.is_empty())));
}
