//! The acceptance gate as a test: the real workspace must scan clean.
//!
//! CI runs `cargo run -p detlint` as its own job, but keeping the same
//! check inside `cargo test` means a plain test run catches a determinism
//! hazard (or a stale allow annotation) without any extra tooling.

use std::path::Path;

#[test]
fn workspace_has_no_unannotated_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "expected workspace root at {}",
        root.display()
    );
    let report = detlint::analyze_workspace(&root);
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {report:?}"
    );
    assert!(
        report.is_clean(),
        "unannotated determinism findings:\n{}",
        report.to_table()
    );
    // Every allow annotation in the workspace carries its reason through.
    assert!(report
        .allowed
        .iter()
        .all(|f| f.allowed.as_deref().is_some_and(|r| !r.is_empty())));
}

/// The allow inventory is a budget, not a convention: this test pins the
/// exact per-rule allowance so a new `detlint::allow` anywhere in the
/// workspace fails CI until the count here is consciously raised in the
/// same change (and the reviewer sees both).
#[test]
fn allow_inventory_does_not_silently_grow() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf();
    let report = detlint::analyze_workspace(&root);

    let mut by_rule: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in &report.allowed {
        *by_rule.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let expected: std::collections::BTreeMap<&str, usize> = [
        // as-rel memo tables (2), refine duplicate filter, snapshot
        // interface→router hash index (read-only after construction; query
        // answers never iterate it). The graph build's former per-hop
        // HashMap is gone: interned ids made it a sorted-vec binary search.
        ("unordered-collection", 4),
        // eval metric folds in tests.
        ("float-accum", 4),
        // serve's request-serving worker pool + background accept-loop
        // host, serve's concurrent-clients e2e test, bench-serve load
        // clients, and the loom model test's spawn_worker helper (loom
        // threads are the model checker's scheduler puppets). The campaign
        // and graph-build allowances are retired: both phases now dispatch
        // on the shared pool crate, the single thread-exempt file.
        ("unscoped-thread", 5),
        // obs::MonotonicClock — the workspace's only sanctioned wall-clock
        // read (see the sole-clock assertion below).
        ("nondet-source", 1),
        // Pool accounting in run/broadcast (counters feed the exec-only
        // metrics surface) and the refinement engine's barrier-disciplined
        // annotation cells (RouterView reads, snapshot copy, convergence
        // hash) — each justified at the site; the determinism suite pins
        // the resulting traces.
        ("relaxed-atomic-output", 6),
        // The refinement worker's slot-per-shard trace mailbox (single
        // designated writer per slot).
        ("interior-mut-in-worker", 1),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        by_rule, expected,
        "the detlint allow inventory changed; update this budget deliberately"
    );

    // The single nondet-source allowance is obs's Clock: every other crate
    // must get wall time through that abstraction, never read it directly.
    let clock_allows: Vec<&str> = report
        .allowed
        .iter()
        .filter(|f| f.rule == "nondet-source")
        .map(|f| f.file.as_str())
        .collect();
    assert_eq!(
        clock_allows,
        vec!["crates/obs/src/clock.rs"],
        "Instant::now is only permitted inside obs::MonotonicClock"
    );
}
