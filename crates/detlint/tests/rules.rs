//! Fixture tests: every rule firing (positive), staying quiet (negative),
//! and being silenced by an allow annotation — with exact diagnostic spans.
//!
//! Fixtures live under `tests/fixtures/` (excluded from workspace scans);
//! each is analyzed under a *logical* path so the path-scoped rules
//! (float-accum, unscoped-thread exemption, crate-root detection) can be
//! exercised independently of where the fixture sits on disk.

use detlint::analyze_source;
use std::fs;
use std::path::Path;

/// Loads a fixture by file name.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// `(rule, line, col, allowed)` for every finding, in report order.
fn spans(logical_path: &str, name: &str) -> Vec<(String, u32, u32, bool)> {
    analyze_source(logical_path, &fixture(name))
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line, f.col, f.allowed.is_some()))
        .collect()
}

fn s(rule: &str, line: u32, col: u32, allowed: bool) -> (String, u32, u32, bool) {
    (rule.to_string(), line, col, allowed)
}

#[test]
fn unordered_iter_positive_spans() {
    assert_eq!(
        spans("crates/demo/src/iter_positive.rs", "iter_positive.rs"),
        vec![
            s("unordered-collection", 6, 16, false), // let mut m: HashMap
            s("unordered-iter", 8, 20, false),       // for (k, v) in &m
            s("unordered-iter", 11, 25, false),      // m.values()
            s("unordered-collection", 12, 15, false), // let memo: Memo (alias)
            s("unordered-collection", 14, 17, false), // let mut s = HashSet::new()
            s("unordered-iter", 16, 16, false),      // s.drain()
        ]
    );
}

#[test]
fn unordered_iter_allowed_is_silenced() {
    let found = spans("crates/demo/src/iter_allowed.rs", "iter_allowed.rs");
    assert_eq!(
        found,
        vec![
            s("unordered-collection", 5, 16, true), // annotated above
            s("unordered-iter", 8, 32, true),       // annotated above
            s("unordered-iter", 10, 16, true),      // trailing annotation
        ]
    );
}

#[test]
fn btreemap_iteration_is_clean() {
    assert_eq!(
        spans("crates/demo/src/iter_negative.rs", "iter_negative.rs"),
        vec![]
    );
}

#[test]
fn nondet_sources_fire_with_spans() {
    assert_eq!(
        spans("crates/demo/src/nondet_positive.rs", "nondet_positive.rs"),
        vec![
            s("nondet-source", 1, 34, false), // use ... DefaultHasher
            s("nondet-source", 1, 49, false), // use ... RandomState
            s("nondet-source", 5, 14, false), // DefaultHasher::new()
            s("nondet-source", 6, 14, false), // RandomState::new()
            s("nondet-source", 7, 15, false), // Instant::now()
            s("nondet-source", 8, 17, false), // SystemTime::now()
        ]
    );
}

#[test]
fn nondet_allowed_is_silenced() {
    assert_eq!(
        spans("crates/demo/src/nondet_allowed.rs", "nondet_allowed.rs"),
        vec![s("nondet-source", 3, 26, true)]
    );
}

#[test]
fn thread_use_outside_parallel_fires() {
    assert_eq!(
        spans("crates/demo/src/thread_positive.rs", "thread_positive.rs"),
        vec![
            s("unscoped-thread", 2, 18, false), // std::thread::spawn
            s("unscoped-thread", 4, 5, false),  // rayon::join
            s("unscoped-thread", 5, 5, false),  // crossbeam::scope
        ]
    );
}

#[test]
fn thread_use_inside_pool_is_exempt() {
    // The pool crate root is the one thread-exempt file: none of the
    // unscoped-thread findings fire. (The fixture is a crate root without
    // `#![forbid(unsafe_code)]`, so that unrelated rule still does.)
    assert_eq!(
        spans("crates/pool/src/lib.rs", "thread_positive.rs"),
        vec![s("missing-forbid-unsafe", 1, 1, false)]
    );
}

#[test]
fn float_accumulation_fires_in_eval_paths() {
    assert_eq!(
        spans("crates/eval/src/float_positive.rs", "float_positive.rs"),
        vec![
            s("float-accum", 8, 13, false),  // acc += r
            s("float-accum", 11, 14, false), // t.weight += 1.5
        ]
    );
}

#[test]
fn float_accumulation_is_scoped_to_refine_and_eval() {
    assert_eq!(
        spans("crates/bgp/src/float_positive.rs", "float_positive.rs"),
        vec![]
    );
}

#[test]
fn crate_root_missing_forbid_fires() {
    assert_eq!(
        spans("crates/demo/src/lib.rs", "forbid_missing.rs"),
        vec![s("missing-forbid-unsafe", 1, 1, false)]
    );
    // The same file is fine when it is not a crate root.
    assert_eq!(
        spans("crates/demo/src/helper.rs", "forbid_missing.rs"),
        vec![]
    );
}

#[test]
fn crate_root_with_forbid_is_clean() {
    assert_eq!(
        spans("crates/demo/src/main.rs", "forbid_present.rs"),
        vec![]
    );
}

#[test]
fn malformed_allows_are_findings() {
    assert_eq!(
        spans("crates/demo/src/invalid_allow.rs", "invalid_allow.rs"),
        vec![
            s("invalid-allow", 2, 1, false), // missing `: reason`
            s("invalid-allow", 4, 1, false), // unknown rule name
        ]
    );
}

#[test]
fn pool_rules_positive_spans() {
    assert_eq!(
        spans("crates/demo/src/pool_rules.rs", "pool_rules.rs"),
        vec![
            s("pool-shared-capture", 10, 9, false), // total += i inside worker
            s("interior-mut-in-worker", 11, 15, false), // cache.lock()
            s("relaxed-atomic-output", 19, 7, false), // counter_value's load
        ]
    );
}

#[test]
fn pool_rules_negative_shapes_are_clean() {
    // stats/account-named reporters, a no-return fn, a never-mutated
    // capture, and a closure-local let: none fire.
    assert_eq!(
        spans("crates/demo/src/lib.rs", "pool_rules_negative.rs"),
        vec![]
    );
}

#[test]
fn pool_crate_is_exempt_from_interior_mut_only() {
    // Under the pool's own path the interior-mutability rule stands down
    // (the pool IS the synchronization layer), but shared captures and
    // relaxed loads in returning fns are still hazards there.
    assert_eq!(
        spans("crates/pool/src/lib.rs", "pool_rules.rs"),
        vec![
            s("missing-forbid-unsafe", 1, 1, false), // fixture has no header
            s("pool-shared-capture", 10, 9, false),
            s("relaxed-atomic-output", 19, 7, false),
        ]
    );
}

#[test]
fn raw_byte_and_c_strings_never_leak_identifier_tokens() {
    // br#"…"#/cr#"…"# contents are literal text: no nondet-source or
    // unscoped-thread findings, and no identifier token at all.
    assert_eq!(
        spans("crates/demo/src/rawstr.rs", "rawstr_negative.rs"),
        vec![]
    );
    let (toks, _) = detlint::lexer::lex(&fixture("rawstr_negative.rs"));
    for banned in [
        "thread_rng",
        "DefaultHasher",
        "RandomState",
        "rayon",
        "crossbeam",
    ] {
        assert!(
            !toks
                .iter()
                .any(|t| t.kind == detlint::lexer::TokKind::Ident && t.text == banned),
            "`{banned}` leaked out of a raw string as an identifier token"
        );
    }
}
