//! The two-phase workspace analysis: cross-file order-taint propagation
//! (phase B) on a purpose-built fixture workspace, the `--baseline`
//! suppression path, and the pooled-scan determinism contract.

use detlint::{analyze_sources, Report};
use obs::Recorder;
use pool::WorkerPool;
use std::path::{Path, PathBuf};

/// A three-file fixture workspace: `gather` returns `HashMap::keys()`
/// order (the seed, with both in-file hazards justified by allows),
/// `relay` launders it through a second crate, `emit` consumes it.
fn fixture_workspace() -> Vec<(String, String)> {
    let collect = "\
use std::collections::HashMap;

// detlint::allow(unordered-collection): order policed by the order-taint-flow rule
pub fn gather(m: &HashMap<u32, u32>) -> Vec<u32> {
    // detlint::allow(unordered-iter): order escapes by design; the taint flow rule reports every caller
    m.keys().copied().collect()
}
";
    let mid = "\
pub fn relay(m: &Map) -> Vec<u32> {
    gather(m)
}
";
    let top = "\
pub fn emit(m: &Map) {
    // detlint::allow(order-taint-flow): output sorted before rendering
    let v = relay(m);
    render(v);
}
";
    vec![
        (
            "crates/demo-a/src/collect.rs".to_string(),
            collect.to_string(),
        ),
        ("crates/demo-b/src/mid.rs".to_string(), mid.to_string()),
        ("crates/demo-c/src/top.rs".to_string(), top.to_string()),
    ]
}

#[test]
fn order_taint_propagates_across_files_with_full_chain() {
    let report = analyze_sources(&fixture_workspace());

    assert_eq!(report.index.fns, 3);
    assert_eq!(report.index.taint_sources, 1, "gather seeds the taint");
    assert_eq!(
        report.index.tainted_fns, 2,
        "relay (returning caller) inherits; emit (no return) does not"
    );

    // Unallowed: the gather call inside relay. Its chain walks seed -> site.
    assert_eq!(report.findings.len(), 1, "{}", report.to_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, "order-taint-flow");
    assert_eq!((f.file.as_str(), f.line), ("crates/demo-b/src/mid.rs", 2));
    let chain = f
        .chain
        .as_ref()
        .expect("cross-file finding carries a chain");
    let hops: Vec<(&str, &str)> = chain
        .iter()
        .map(|c| (c.fn_name.as_str(), c.file.as_str()))
        .collect();
    assert_eq!(
        hops,
        vec![
            ("gather", "crates/demo-a/src/collect.rs"),
            ("relay", "crates/demo-b/src/mid.rs"),
        ]
    );
    assert!(
        f.message.contains("chain: gather -> relay"),
        "{}",
        f.message
    );

    // Allowed: emit's relay call (annotated) plus collect.rs's two
    // justified in-file hazards.
    let allowed_rules: Vec<&str> = report.allowed.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(
        allowed_rules,
        vec!["unordered-collection", "unordered-iter", "order-taint-flow"]
    );
    let emit_call = &report.allowed[2];
    assert_eq!(emit_call.file, "crates/demo-c/src/top.rs");
    let chain = emit_call.chain.as_ref().expect("chain on allowed finding");
    assert_eq!(chain.len(), 3, "gather -> relay -> emit call site");
    assert_eq!(chain[2].fn_name, "emit");

    // v2 schema markers survive serialization.
    let json = report.to_json();
    assert!(json.contains("bdrmapit.detlint-report/v2"), "{json}");
    assert!(json.contains("\"chain\""), "{json}");
    assert!(json.contains("\"taint_sources\": 1"), "{json}");
}

#[test]
fn baseline_suppresses_known_findings_only() {
    let files = fixture_workspace();
    let mut first = analyze_sources(&files);
    assert_eq!(first.findings.len(), 1);
    let baseline_json = first.to_json();

    // Same scan against its own baseline: nothing new, the known finding
    // moves to the baselined bucket, and the run is clean.
    let mut rescanned = analyze_sources(&files);
    let suppressed = rescanned
        .apply_baseline(&baseline_json)
        .expect("valid baseline");
    assert_eq!(suppressed, 1);
    assert!(rescanned.is_clean());
    assert_eq!(rescanned.baselined.len(), 1);
    assert!(rescanned.to_json().contains("\"baselined\""));

    // A new hazard not in the baseline still fails.
    let mut files2 = files.clone();
    files2.push((
        "crates/demo-d/src/extra.rs".to_string(),
        "pub fn reemit(m: &Map) -> Vec<u32> { relay(m) }\n".to_string(),
    ));
    let mut second = analyze_sources(&files2);
    second
        .apply_baseline(&baseline_json)
        .expect("valid baseline");
    assert!(!second.is_clean(), "new finding must survive the baseline");
    assert!(second
        .findings
        .iter()
        .all(|f| f.file == "crates/demo-d/src/extra.rs"));

    // Garbage baselines are a hard error, not silent acceptance.
    assert!(first.apply_baseline("not json").is_err());
    assert!(first.apply_baseline("[1, 2]").is_err());
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/detlint")
        .to_path_buf()
}

/// detlint dogfoods the WorkerPool for phase A; the report must be
/// byte-identical at every pool width (the same contract the pool gives
/// the pipeline phases it hosts).
#[test]
fn pooled_scan_is_thread_count_invariant() {
    let root = workspace_root();
    let render = |r: &Report| r.to_json();
    let serial = detlint::analyze_workspace_with(&root, &WorkerPool::new(1), &Recorder::disabled());
    let pooled = detlint::analyze_workspace_with(&root, &WorkerPool::new(4), &Recorder::disabled());
    assert!(serial.files_scanned > 50);
    assert_eq!(render(&serial), render(&pooled));
}
