//! Phase A of the workspace analysis: the per-file symbol index.
//!
//! From one file's token stream the indexer extracts function definitions
//! (with body extents and return-type presence), call sites (attributed to
//! their innermost enclosing function), worker closures (closures passed to
//! `WorkerPool::run`/`broadcast`), and per-function *taint facts* — whether
//! a function binds a hash collection, iterates one, reads the clock, or
//! reads a `Relaxed` atomic. Phase B ([`crate::dataflow`]) joins the
//! per-file indexes into a workspace call graph and propagates order taint
//! across it.
//!
//! Like the rules, the index is a token heuristic without type information:
//! call edges are matched by bare function *name* (the last path segment),
//! which over-approximates — two unrelated `fn parse` definitions share
//! their callers. That is the right direction for a gate: taint can only be
//! over-propagated, never silently dropped, and the allow annotation
//! carries the justification where the over-approximation bites.

use crate::lexer::{Tok, TokKind};
use crate::rules::{Finding, RULE_UNORDERED_COLLECTION, RULE_UNORDERED_ITER};

/// Keywords never treated as function names or capture candidates.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while",
];

/// `Type::now()` clock reads counted as the `reads_clock` taint fact. Kept
/// in sync with the `nondet-source` rule's clock list.
const CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];

/// One function definition with body extent and taint facts.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Whether the signature declares a return type (`->` at paren depth 0).
    pub has_return: bool,
    /// Inclusive token-index extent of the body `{ .. }`.
    pub body: (usize, usize),
    /// Taint fact: binds a `HashMap`/`HashSet` (or alias) in the body.
    pub binds_hash: bool,
    /// Taint fact: iterates a hash collection in the body (allowed or not —
    /// an allow justifies the *site*; whether order escapes is what the
    /// dataflow pass machine-checks).
    pub iterates_hash: bool,
    /// Taint fact: reads `SystemTime::now()` / `Instant::now()`.
    pub reads_clock: bool,
    /// Taint fact: performs an `Ordering::Relaxed` atomic load.
    pub reads_relaxed: bool,
}

/// One call site, attributed to its innermost enclosing function.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Enclosing function name (`None` at item scope, e.g. const exprs).
    pub caller: Option<String>,
    /// Called bare name (last path segment or method name).
    pub callee: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
    /// Trimmed source line, for report snippets.
    pub snippet: String,
}

/// Everything phase B needs from one file.
#[derive(Clone, Debug, Default)]
pub struct FileIndex {
    /// Workspace-relative file.
    pub file: String,
    /// Function definitions, in source order.
    pub fns: Vec<FnInfo>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
}

/// A function's signature + body extent, before taint facts are attached.
/// Also used directly by the file-local pool rules in [`crate::rules`].
#[derive(Clone, Debug)]
pub(crate) struct FnSpan {
    pub name: String,
    pub line: u32,
    pub col: u32,
    pub has_return: bool,
    /// Inclusive token-index extent of the `{ .. }` body.
    pub body: (usize, usize),
}

/// Scans the token stream for `fn name … { … }` definitions. Trait method
/// declarations without bodies are skipped. Nested functions appear as
/// their own spans.
pub(crate) fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Signature: scan to the body `{` at paren depth 0; `->` at depth 0
        // marks a declared return type. (`Fn() -> T` bounds in where-clauses
        // can sit at depth 0 too — over-approximating `has_return` only
        // widens taint propagation, never narrows it.)
        let mut depth: i32 = 0;
        let mut has_return = false;
        let mut j = i + 2;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "->" if depth == 0 => has_return = true,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break, // bodyless declaration
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        out.push(FnSpan {
            name: name_tok.text.clone(),
            line: name_tok.line,
            col: name_tok.col,
            has_return,
            body: (open, close),
        });
        // Continue *inside* the body so nested fns are indexed too.
        i = open + 1;
    }
    out
}

/// Index of the matching `}` for the `{` at `open` (or the last token).
pub(crate) fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// A closure handed to `WorkerPool::run`/`broadcast` — the code whose
/// captures and interior mutability the pool-concurrency rules police.
#[derive(Clone, Debug)]
pub(crate) struct WorkerClosure {
    /// `run` or `broadcast`.
    pub method: String,
    /// Identifiers appearing in the parameter list (`|w: usize|` → both
    /// `w` and `usize`; over-inclusive, used only to exclude candidates).
    pub params: Vec<String>,
    /// Inclusive token-index extent of the closure body.
    pub body: (usize, usize),
}

/// Finds worker closures: `.run(…)`/`.broadcast(…)` method calls whose
/// arguments contain an inline closure, or whose final argument is a bare
/// identifier bound earlier in the file by `let name = |…|` (the
/// `let worker = |w| …; wp.broadcast(.., worker)` shape).
pub(crate) fn worker_closures(toks: &[Tok]) -> Vec<WorkerClosure> {
    let mut out = Vec::new();
    for i in 1..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("run") || t.is_ident("broadcast")) {
            continue;
        }
        if !toks[i - 1].is_punct(".") || !toks.get(i + 1).is_some_and(|p| p.is_punct("(")) {
            continue;
        }
        let open = i + 1;
        let close = match_paren(toks, open);
        if let Some(c) = inline_closure(toks, open + 1, close, &t.text) {
            out.push(c);
            continue;
        }
        // Trailing bare-identifier argument: exactly one token between the
        // last `,` (or the opening paren) and the closing paren.
        if close >= 2 && toks[close - 1].kind == TokKind::Ident {
            let before = &toks[close - 2];
            if before.is_punct(",") || close - 2 == open {
                let name = &toks[close - 1].text;
                if let Some(c) = let_closure(toks, name, &t.text) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Index of the matching `)` for the `(` at `open` (or the last token).
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses an inline `|params| body` closure between `from..to` (exclusive),
/// at the call's top argument level.
fn inline_closure(toks: &[Tok], from: usize, to: usize, method: &str) -> Option<WorkerClosure> {
    let mut depth = 0i32;
    let mut k = from;
    while k < to {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "||" if depth == 0 => return Some(closure_at(toks, k, k, method)),
                "|" if depth == 0 => {
                    // Scan the parameter list to the closing `|`.
                    let mut p = k + 1;
                    while p < to && !toks[p].is_punct("|") {
                        p += 1;
                    }
                    return Some(closure_at(toks, k, p, method));
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Builds a [`WorkerClosure`] whose parameter list spans `params_open ..=
/// params_close` (equal for `||`) and whose body starts right after.
fn closure_at(
    toks: &[Tok],
    params_open: usize,
    params_close: usize,
    method: &str,
) -> WorkerClosure {
    let params: Vec<String> = toks[params_open..=params_close]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    let body_start = params_close + 1;
    let body_end = if toks.get(body_start).is_some_and(|t| t.is_punct("{")) {
        match_brace(toks, body_start)
    } else {
        // Expression body: scan to `,` / `)` / `;` at depth 0.
        let mut depth = 0i32;
        let mut k = body_start;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    ")" | ";" if depth == 0 => break,
                    "," if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        k.saturating_sub(1)
    };
    WorkerClosure {
        method: method.to_string(),
        params,
        body: (body_start, body_end),
    }
}

/// Resolves a bare-identifier argument to a file-local `let name = |…|`
/// closure definition.
fn let_closure(toks: &[Tok], name: &str, method: &str) -> Option<WorkerClosure> {
    for k in 0..toks.len() {
        if !toks[k].is_ident("let") {
            continue;
        }
        let mut n = k + 1;
        if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        if !toks.get(n).is_some_and(|t| t.is_ident(name)) {
            continue;
        }
        if !toks.get(n + 1).is_some_and(|t| t.is_punct("=")) {
            continue;
        }
        let bar = n + 2;
        if toks.get(bar).is_some_and(|t| t.is_punct("||")) {
            return Some(closure_at(toks, bar, bar, method));
        }
        if toks.get(bar).is_some_and(|t| t.is_punct("|")) {
            let mut p = bar + 1;
            while p < toks.len() && !toks[p].is_punct("|") {
                p += 1;
            }
            return Some(closure_at(toks, bar, p, method));
        }
    }
    None
}

/// Indexes one file: fn definitions with taint facts, plus call sites.
/// `findings` is the file's rule output (allowed findings included), which
/// supplies the hash-collection facts so the indexer shares the rules'
/// battle-tested detection instead of duplicating it.
pub fn index_file(rel_path: &str, source: &str, toks: &[Tok], findings: &[Finding]) -> FileIndex {
    let spans = fn_spans(toks);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let line_extent =
        |body: (usize, usize)| -> (u32, u32) { (toks[body.0].line, toks[body.1].line) };

    let fns: Vec<FnInfo> = spans
        .iter()
        .map(|s| {
            let (lo, hi) = line_extent(s.body);
            let in_body = |line: u32| line >= lo && line <= hi;
            let binds_hash = findings
                .iter()
                .any(|f| f.rule == RULE_UNORDERED_COLLECTION && in_body(f.line));
            let iterates_hash = findings
                .iter()
                .any(|f| f.rule == RULE_UNORDERED_ITER && in_body(f.line));
            let mut reads_clock = false;
            let mut reads_relaxed = false;
            for k in s.body.0..=s.body.1.min(toks.len() - 1) {
                let t = &toks[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                if CLOCK_TYPES.contains(&t.text.as_str())
                    && toks.get(k + 1).is_some_and(|p| p.is_punct("::"))
                    && toks.get(k + 2).is_some_and(|m| m.is_ident("now"))
                {
                    reads_clock = true;
                }
                if t.is_ident("Relaxed")
                    && k >= 2
                    && toks[k - 1].is_punct("::")
                    && toks[k - 2].is_ident("Ordering")
                {
                    reads_relaxed = true;
                }
            }
            FnInfo {
                name: s.name.clone(),
                file: rel_path.to_string(),
                line: s.line,
                col: s.col,
                has_return: s.has_return,
                body: s.body,
                binds_hash,
                iterates_hash,
                reads_clock,
                reads_relaxed,
            }
        })
        .collect();

    // Call sites: `name(` that is not a definition, keyword, or type-cased
    // constructor, attributed to the innermost enclosing fn body.
    let mut calls = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|p| p.is_punct("(")) {
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue; // definition, not a call
        }
        if t.text.chars().next().is_some_and(char::is_uppercase) {
            continue; // tuple-struct / enum-variant constructor
        }
        let caller = spans
            .iter()
            .filter(|s| s.body.0 < i && i < s.body.1)
            .min_by_key(|s| s.body.1 - s.body.0)
            .map(|s| s.name.clone());
        calls.push(CallSite {
            caller,
            callee: t.text.clone(),
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            snippet: snippet(t.line),
        });
    }

    FileIndex {
        file: rel_path.to_string(),
        fns,
        calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_find_names_and_return_types() {
        let src = "fn a() { b(); }\nfn b() -> u32 { 7 }\nimpl X { fn c(&self) -> bool { true } }";
        let (toks, _) = lex(src);
        let spans = fn_spans(&toks);
        let names: Vec<(&str, bool)> = spans
            .iter()
            .map(|s| (s.name.as_str(), s.has_return))
            .collect();
        assert_eq!(names, vec![("a", false), ("b", true), ("c", true)]);
    }

    #[test]
    fn nested_fns_and_call_attribution() {
        let src = "fn outer() -> u32 {\n    fn inner() -> u32 { leaf() }\n    inner()\n}";
        let (toks, _) = lex(src);
        let idx = index_file("crates/demo/src/x.rs", src, &toks, &[]);
        assert_eq!(idx.fns.len(), 2);
        let by_callee: Vec<(&str, Option<&str>)> = idx
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.caller.as_deref()))
            .collect();
        assert_eq!(
            by_callee,
            vec![("leaf", Some("inner")), ("inner", Some("outer"))]
        );
    }

    #[test]
    fn worker_closures_inline_and_let_bound() {
        let src = "fn f(wp: &P) {\n\
                   let worker = |w: usize| { w + 1 };\n\
                   wp.broadcast(\"x\", 4, worker);\n\
                   wp.run(\"y\", 8, |i| i * 2);\n\
                   }";
        let (toks, _) = lex(src);
        let ws = worker_closures(&toks);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].method, "broadcast");
        assert!(ws[0].params.contains(&"w".to_string()));
        assert_eq!(ws[1].method, "run");
        assert!(ws[1].params.contains(&"i".to_string()));
    }

    #[test]
    fn non_closure_run_calls_are_not_worker_closures() {
        let src = "fn f(m: &M) { m.run(&Config::default()); server.run(); }";
        let (toks, _) = lex(src);
        assert!(worker_closures(&toks).is_empty());
    }
}
