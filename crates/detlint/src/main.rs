//! The `detlint` binary: scan the workspace, print a report, exit nonzero
//! on any unannotated determinism hazard.
//!
//! ```text
//! cargo run -p detlint                       # human table, current workspace
//! cargo run -p detlint -- --format json      # machine-readable report
//! cargo run -p detlint -- --out report.json  # also write JSON to a file
//! cargo run -p detlint -- --root ../other    # scan a different tree
//! cargo run -p detlint -- --baseline base.json  # only fail on NEW findings
//! ```
//!
//! `--out` and `--format` are independent: the JSON report is written to
//! the file while the chosen format goes to stdout, so CI can upload the
//! machine-readable artifact and still print the human table in the log.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: detlint [--format human|json] [--root DIR] [--out FILE] [--baseline FILE]";

struct Args {
    format: String,
    root: Option<PathBuf>,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        format: "human".to_string(),
        root: None,
        out: None,
        baseline: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if v != "human" && v != "json" {
                    return Err(format!("unknown format `{v}` (human|json)"));
                }
                args.format = v.clone();
            }
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            if e.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match detlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut report = detlint::analyze_workspace(&root);

    if let Some(baseline) = &args.baseline {
        let text = match std::fs::read_to_string(baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {}: {e}", baseline.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = report.apply_baseline(&text) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("error: writing {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }
    match args.format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.to_table()),
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
