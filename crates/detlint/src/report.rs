//! Workspace walking and report rendering (human table + JSON).

use crate::rules::{analyze_source, Finding};
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, vendored deps, VCS metadata).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Paths containing this segment hold intentional rule violations for the
/// detlint fixture tests and are excluded from workspace scans.
const FIXTURE_SEGMENT: &str = "detlint/tests/fixtures";

/// The whole-workspace analysis result.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Report schema version.
    pub version: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by an allow annotation (CI fails on any).
    pub findings: Vec<Finding>,
    /// Findings silenced by `detlint::allow` annotations.
    pub allowed: Vec<Finding>,
}

impl Report {
    /// True when the workspace is clean (no unannotated findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The human-readable table form.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            out.push_str("determinism hazards (unannotated):\n");
            render_rows(&mut out, &self.findings);
            out.push('\n');
        }
        if !self.allowed.is_empty() {
            out.push_str("allowed (annotated) findings:\n");
            for f in &self.allowed {
                out.push_str(&format!(
                    "  {}:{}:{}  {}  [{}]\n",
                    f.file,
                    f.line,
                    f.col,
                    f.rule,
                    f.allowed.as_deref().unwrap_or("")
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{} files scanned, {} finding(s), {} allowed\n",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len()
        ));
        if self.is_clean() {
            out.push_str("workspace is determinism-clean\n");
        }
        out
    }
}

fn render_rows(out: &mut String, findings: &[Finding]) {
    let loc_w = findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.col).len())
        .max()
        .unwrap_or(0);
    let rule_w = findings.iter().map(|f| f.rule.len()).max().unwrap_or(0);
    for f in findings {
        let loc = format!("{}:{}:{}", f.file, f.line, f.col);
        out.push_str(&format!(
            "  {loc:<loc_w$}  {rule:<rule_w$}  {msg}\n      | {snippet}\n",
            rule = f.rule,
            msg = f.message,
            snippet = f.snippet,
        ));
    }
}

/// Recursively collects `.rs` files under `root` in sorted (deterministic)
/// order, skipping build output, vendored code, and the fixture corpus.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if rel.contains(FIXTURE_SEGMENT) {
                    continue;
                }
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Analyzes every `.rs` file under `root`.
pub fn analyze_workspace(root: &Path) -> Report {
    let files = collect_rs_files(root);
    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let rel = rel_path(root, path);
        for f in analyze_source(&rel, &source).findings {
            if f.allowed.is_some() {
                allowed.push(f);
            } else {
                findings.push(f);
            }
        }
    }
    Report {
        version: 1,
        files_scanned: files.len(),
        findings,
        allowed,
    }
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
