//! Workspace walking, the two-phase analysis driver, and report rendering.
//!
//! Phase A lexes and analyzes every file independently — rules plus the
//! symbol index — and is embarrassingly parallel, so the workspace driver
//! dispatches it on the shared [`pool::WorkerPool`] (detlint dogfoods the
//! concurrency substrate it polices; results are reassembled in file-index
//! order, so the report is byte-identical at every thread count). Phase B
//! ([`crate::dataflow`]) is a serial fixpoint over the joined indexes.
//!
//! The JSON report follows schema [`SCHEMA`] (`bdrmapit.detlint-report/v2`):
//! v1's `{version, files_scanned, findings, allowed}` plus the `schema`
//! discriminator, the `index` taint summary, per-finding `chain` arrays on
//! cross-file findings, and a `baselined` bucket populated when the caller
//! supplies `--baseline` (known findings are suppressed; only new ones
//! fail the run).

use crate::dataflow::{self, TaintSummary};
use crate::index::FileIndex;
use crate::rules::{AllowCover, FileAnalysis, Finding};
use obs::Recorder;
use pool::WorkerPool;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// The report schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "bdrmapit.detlint-report/v2";

/// Directories never scanned (build output, vendored deps, VCS metadata).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Paths containing this segment hold intentional rule violations for the
/// detlint fixture tests and are excluded from workspace scans.
const FIXTURE_SEGMENT: &str = "detlint/tests/fixtures";

/// The whole-workspace analysis result.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Report schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Report schema version.
    pub version: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Workspace symbol-index / taint-propagation statistics (phase B).
    pub index: TaintSummary,
    /// Findings not covered by an allow annotation (CI fails on any).
    pub findings: Vec<Finding>,
    /// Findings silenced by `detlint::allow` annotations.
    pub allowed: Vec<Finding>,
    /// Findings suppressed by a `--baseline` file (present in the committed
    /// baseline; not failures, but still reported).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub baselined: Vec<Finding>,
}

impl Report {
    /// True when the workspace is clean (no unannotated, non-baselined
    /// findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The human-readable table form.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            out.push_str("determinism hazards (unannotated):\n");
            render_rows(&mut out, &self.findings);
            out.push('\n');
        }
        if !self.baselined.is_empty() {
            out.push_str("baselined findings (suppressed by --baseline):\n");
            for f in &self.baselined {
                out.push_str(&format!("  {}:{}:{}  {}\n", f.file, f.line, f.col, f.rule));
            }
            out.push('\n');
        }
        if !self.allowed.is_empty() {
            out.push_str("allowed (annotated) findings:\n");
            for f in &self.allowed {
                out.push_str(&format!(
                    "  {}:{}:{}  {}  [{}]\n",
                    f.file,
                    f.line,
                    f.col,
                    f.rule,
                    f.allowed.as_deref().unwrap_or("")
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{} files scanned; index: {} fns, {} call edges, {} taint sources, \
             {} tainted fns\n",
            self.files_scanned,
            self.index.fns,
            self.index.call_edges,
            self.index.taint_sources,
            self.index.tainted_fns,
        ));
        out.push_str(&format!(
            "{} finding(s), {} allowed, {} baselined\n",
            self.findings.len(),
            self.allowed.len(),
            self.baselined.len()
        ));
        if self.is_clean() {
            out.push_str("workspace is determinism-clean\n");
        }
        out
    }

    /// Applies a committed baseline (a previous JSON report): findings also
    /// present in the baseline move to [`Report::baselined`], so only *new*
    /// findings fail the run. Matching is on `(rule, file, snippet)` — not
    /// line numbers — so unrelated edits above a known finding don't
    /// invalidate the baseline. Returns the number suppressed.
    pub fn apply_baseline(&mut self, baseline_json: &str) -> Result<usize, String> {
        use serde::json::Value;
        let v = serde::json::parse(baseline_json).map_err(|e| format!("invalid baseline: {e}"))?;
        let Value::Object(top) = v else {
            return Err("invalid baseline: not a JSON object".to_string());
        };
        let mut known: Vec<(String, String, String)> = Vec::new();
        for (key, val) in &top {
            if key != "findings" && key != "baselined" {
                continue;
            }
            let Value::Array(items) = val else { continue };
            for item in items {
                let Value::Object(fields) = item else {
                    continue;
                };
                let s = |k: &str| {
                    fields
                        .iter()
                        .find(|(name, _)| name == k)
                        .and_then(|(_, v)| match v {
                            Value::String(s) => Some(s.clone()),
                            _ => None,
                        })
                        .unwrap_or_default()
                };
                known.push((s("rule"), s("file"), s("snippet")));
            }
        }
        let before = self.findings.len();
        let (suppressed, kept): (Vec<Finding>, Vec<Finding>) = std::mem::take(&mut self.findings)
            .into_iter()
            .partition(|f| {
                known
                    .iter()
                    .any(|(r, p, s)| *r == f.rule && *p == f.file && *s == f.snippet)
            });
        self.findings = kept;
        self.baselined.extend(suppressed);
        Ok(before - self.findings.len())
    }
}

fn render_rows(out: &mut String, findings: &[Finding]) {
    let loc_w = findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.col).len())
        .max()
        .unwrap_or(0);
    let rule_w = findings.iter().map(|f| f.rule.len()).max().unwrap_or(0);
    for f in findings {
        let loc = format!("{}:{}:{}", f.file, f.line, f.col);
        out.push_str(&format!(
            "  {loc:<loc_w$}  {rule:<rule_w$}  {msg}\n      | {snippet}\n",
            rule = f.rule,
            msg = f.message,
            snippet = f.snippet,
        ));
    }
}

/// Recursively collects `.rs` files under `root` in sorted (deterministic)
/// order, skipping build output, vendored code, and the fixture corpus.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if rel.contains(FIXTURE_SEGMENT) {
                    continue;
                }
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Phase A for one file: lex once, run the per-file rules, build the
/// symbol index over the same token stream.
fn analyze_file(rel_path: &str, source: &str) -> (FileAnalysis, FileIndex) {
    let (toks, allow_sites) = crate::lexer::lex(source);
    let analysis = crate::rules::analyze_lexed(rel_path, source, &toks, &allow_sites);
    let index = crate::index::index_file(rel_path, source, &toks, &analysis.findings);
    (analysis, index)
}

/// Joins per-file phase-A results, runs the phase-B taint fixpoint, and
/// assembles the report. `per_file` must be in sorted-path order.
fn assemble(files_scanned: usize, per_file: Vec<(FileAnalysis, FileIndex)>) -> Report {
    let indexes: Vec<(FileIndex, Vec<AllowCover>)> = per_file
        .iter()
        .map(|(fa, idx)| (idx.clone(), fa.allows.clone()))
        .collect();
    let (flow_findings, summary) = dataflow::propagate(&indexes);

    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for f in per_file
        .into_iter()
        .flat_map(|(fa, _)| fa.findings)
        .chain(flow_findings)
    {
        if f.allowed.is_some() {
            allowed.push(f);
        } else {
            findings.push(f);
        }
    }
    let key = |f: &Finding| (f.file.clone(), f.line, f.col, f.rule.clone());
    findings.sort_by_key(key);
    allowed.sort_by_key(key);

    Report {
        schema: SCHEMA.to_string(),
        version: 2,
        files_scanned,
        index: summary,
        findings,
        allowed,
        baselined: Vec::new(),
    }
}

/// Analyzes an in-memory set of `(workspace-relative path, source)` files —
/// the entry point the fixture tests use to exercise cross-file
/// propagation without touching the filesystem. Files are sorted by path
/// first, matching the workspace walk.
pub fn analyze_sources(files: &[(String, String)]) -> Report {
    let mut sorted: Vec<&(String, String)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let per_file = sorted
        .iter()
        .map(|(rel, src)| analyze_file(rel, src))
        .collect();
    assemble(sorted.len(), per_file)
}

/// Analyzes every `.rs` file under `root`, dispatching phase A on `wp` and
/// reporting `detlint.*` index statistics (plus pool busy time) into `rec`.
/// Output is independent of the pool's thread count: per-file results come
/// back in file-index order and phase B is serial.
pub fn analyze_workspace_with(root: &Path, wp: &WorkerPool, rec: &Recorder) -> Report {
    let files = collect_rs_files(root);
    let sources: Vec<(String, String)> = files
        .iter()
        .filter_map(|path| {
            fs::read_to_string(path)
                .ok()
                .map(|src| (rel_path(root, path), src))
        })
        .collect();
    let per_file = wp.run(obs::names::EXEC_POOL_BUSY_DETLINT, sources.len(), |i| {
        let (rel, src) = &sources[i];
        analyze_file(rel, src)
    });
    let report = assemble(sources.len(), per_file);
    rec.add(obs::names::DETLINT_FILES, report.files_scanned as u64);
    rec.add(obs::names::DETLINT_FNS, report.index.fns as u64);
    rec.add(
        obs::names::DETLINT_CALL_EDGES,
        report.index.call_edges as u64,
    );
    rec.add(
        obs::names::DETLINT_TAINT_SOURCES,
        report.index.taint_sources as u64,
    );
    rec.add(
        obs::names::DETLINT_TAINTED_FNS,
        report.index.tainted_fns as u64,
    );
    report
}

/// Analyzes every `.rs` file under `root` with a default pool (one worker
/// per available core) and no metrics sink.
pub fn analyze_workspace(root: &Path) -> Report {
    analyze_workspace_with(root, &WorkerPool::new(0), &Recorder::disabled())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
