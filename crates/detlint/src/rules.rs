//! The determinism rules and the per-file analysis driver.
//!
//! Every rule is a token-stream heuristic, deliberately file-local: detlint
//! has no type information, so it tracks names bound to hash-ordered
//! collections (including in-file `type` aliases of them) and names bound to
//! floats, then pattern-matches the operations the determinism contract
//! cares about. The heuristics over-approximate — that is the point of a
//! gate — and every benign site is silenced with an explicit
//! `detlint::allow` annotation (rule list, then `: reason`) on or above the
//! offending line, so the justification lives next to the code it excuses.

use crate::lexer::{lex, AllowSite, TokKind};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Rule identifiers. Keep in sync with [`KNOWN_RULES`] and DESIGN.md §9.
pub const RULE_UNORDERED_ITER: &str = "unordered-iter";
/// Declaration/binding of an unordered hash collection.
pub const RULE_UNORDERED_COLLECTION: &str = "unordered-collection";
/// Use of a nondeterministic value source.
pub const RULE_NONDET_SOURCE: &str = "nondet-source";
/// Thread creation outside the refinement engine's scoped pool.
pub const RULE_UNSCOPED_THREAD: &str = "unscoped-thread";
/// Float accumulation in vote-tally / metric paths.
pub const RULE_FLOAT_ACCUM: &str = "float-accum";
/// Crate root missing `#![forbid(unsafe_code)]`.
pub const RULE_MISSING_FORBID_UNSAFE: &str = "missing-forbid-unsafe";
/// Malformed or unknown `detlint::allow` annotation.
pub const RULE_INVALID_ALLOW: &str = "invalid-allow";
/// Closure passed to `WorkerPool::run`/`broadcast` captures an identifier
/// also mutated outside the closure in the same file.
pub const RULE_POOL_SHARED_CAPTURE: &str = "pool-shared-capture";
/// A function with a return type performs an `Ordering::Relaxed` atomic
/// load — an execution-dependent value positioned to flow into output.
pub const RULE_RELAXED_ATOMIC_OUTPUT: &str = "relaxed-atomic-output";
/// `Mutex`/`RefCell`/`Cell` use inside a worker closure outside the pool
/// crate (lock/borrow order is scheduling-dependent).
pub const RULE_INTERIOR_MUT_IN_WORKER: &str = "interior-mut-in-worker";
/// Cross-file rule (phase B, [`crate::dataflow`]): a call site receives
/// hash-collection iteration order through the call graph.
pub const RULE_ORDER_TAINT_FLOW: &str = "order-taint-flow";

/// All valid rule names (what `detlint::allow` may reference).
pub const KNOWN_RULES: &[&str] = &[
    RULE_UNORDERED_ITER,
    RULE_UNORDERED_COLLECTION,
    RULE_NONDET_SOURCE,
    RULE_UNSCOPED_THREAD,
    RULE_FLOAT_ACCUM,
    RULE_MISSING_FORBID_UNSAFE,
    RULE_INVALID_ALLOW,
    RULE_POOL_SHARED_CAPTURE,
    RULE_RELAXED_ATOMIC_OUTPUT,
    RULE_INTERIOR_MUT_IN_WORKER,
    RULE_ORDER_TAINT_FLOW,
];

/// Hash-ordered collection type names (iteration order is unspecified).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that iterate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that are nondeterministic value sources wherever they appear.
const NONDET_IDENTS: &[&str] = &["DefaultHasher", "RandomState", "thread_rng"];

/// `Type::now()` clock reads flagged as nondeterministic sources.
const CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];

/// The only file allowed to create threads (the shared work-stealing pool
/// every pipeline phase dispatches on). Also exempt from the
/// worker-closure interior-mutability rule: the pool *is* the
/// synchronization layer.
const THREAD_EXEMPT_SUFFIX: &str = "pool/src/lib.rs";

/// Interior-mutability type names flagged inside worker closures.
const INTERIOR_MUT_TYPES: &[&str] = &["Mutex", "RefCell", "Cell"];

/// Interior-mutability access methods flagged inside worker closures.
const INTERIOR_MUT_METHODS: &[&str] = &["lock", "borrow", "borrow_mut"];

/// Compound/simple assignment operators (mutation sites for the
/// shared-capture rule). `==`, `=>`, `<=`, `>=` lex as distinct tokens.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=",
];

/// One frame of an order-taint propagation chain: seed definition, then
/// each function the taint traversed, ending at the reported call site.
#[derive(Clone, Debug, Serialize)]
pub struct ChainStep {
    /// Function name (`<item scope>` for calls outside any fn).
    #[serde(rename = "fn")]
    pub fn_name: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the definition (or call site, for the final step).
    pub line: u32,
}

/// One diagnostic.
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the hazard.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// Justification from a matching `detlint::allow`, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub allowed: Option<String>,
    /// Cross-file propagation chain (`order-taint-flow` findings only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub chain: Option<Vec<ChainStep>>,
}

/// A well-formed allow annotation with the source lines it covers —
/// retained on [`FileAnalysis`] so the cross-file phase-B rules, which run
/// after the per-file pass, can be silenced at their call sites too.
#[derive(Clone, Debug)]
pub struct AllowCover {
    /// Lines the annotation silences (its own plus the next token's).
    pub lines: BTreeSet<u32>,
    /// Rule names the annotation lists.
    pub rules: Vec<String>,
    /// The justification text.
    pub reason: String,
}

/// Analysis result for one file.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Every finding, including allowed ones.
    pub findings: Vec<Finding>,
    /// Well-formed allow annotations (for phase-B allow application).
    pub allows: Vec<AllowCover>,
}

impl FileAnalysis {
    /// Findings not silenced by an allow annotation.
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }
}

/// True for files that are crate roots (where `#![forbid(unsafe_code)]`
/// must appear).
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs")
}

/// True for paths the float-accumulation rule covers: refinement vote
/// tallies and evaluation metrics.
fn float_rule_applies(rel_path: &str) -> bool {
    rel_path.contains("/refine/") || rel_path.contains("crates/eval/")
}

/// Analyzes one file. `rel_path` is the workspace-relative path (forward
/// slashes); it scopes the path-dependent rules, so fixture tests can pass
/// a logical path independent of where the fixture lives on disk.
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let (toks, allows) = lex(source);
    analyze_lexed(rel_path, source, &toks, &allows)
}

/// The per-file analysis over an already-lexed token stream — the shape the
/// two-phase workspace driver uses so each file is lexed exactly once for
/// both the rules and the symbol index.
pub(crate) fn analyze_lexed(
    rel_path: &str,
    source: &str,
    toks: &[crate::lexer::Tok],
    allows: &[AllowSite],
) -> FileAnalysis {
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // Map each allow annotation to the lines it covers: its own line (for a
    // trailing comment) plus the line of the first token after it (for a
    // comment-above annotation).
    let mut allow_cover: Vec<(BTreeSet<u32>, &AllowSite)> = Vec::new();
    for a in allows {
        let mut covered = BTreeSet::new();
        covered.insert(a.line);
        if let Some(t) = toks.iter().find(|t| t.line > a.line) {
            covered.insert(t.line);
        }
        allow_cover.push((covered, a));
    }

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &str, tok_line: u32, tok_col: u32, message: String| {
        raw.push(Finding {
            rule: rule.to_string(),
            file: rel_path.to_string(),
            line: tok_line,
            col: tok_col,
            message,
            snippet: snippet(tok_line),
            allowed: None,
            chain: None,
        });
    };

    // ---- pass 1: in-file aliases of hash types --------------------------
    let mut hash_names: BTreeSet<String> = HASH_TYPES.iter().map(|s| (*s).to_string()).collect();
    loop {
        let before = hash_names.len();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("type")
                && matches!(toks.get(i + 1), Some(t) if t.kind == TokKind::Ident)
            {
                let name = toks[i + 1].text.clone();
                let mut j = i + 2;
                let mut refers = false;
                while j < toks.len() && !toks[j].is_punct(";") {
                    if toks[j].kind == TokKind::Ident && hash_names.contains(&toks[j].text) {
                        refers = true;
                    }
                    j += 1;
                }
                if refers {
                    hash_names.insert(name);
                }
                i = j;
            }
            i += 1;
        }
        if hash_names.len() == before {
            break;
        }
    }

    // ---- pass 2: names bound to hash collections / floats ---------------
    // decl site: var name -> (line, col, type name) of the first hash-type
    // token that bound it (deduplicated per name: a struct field and its
    // literal initialization are one variable).
    let mut hash_vars: BTreeMap<String, (u32, u32, String)> = BTreeMap::new();
    let mut float_vars: BTreeSet<String> = BTreeSet::new();

    // (a) `name: Type` ascriptions (fields, params, lets, statics).
    for i in 1..toks.len() {
        if !toks[i].is_punct(":") {
            continue;
        }
        let name_tok = &toks[i - 1];
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let mut depth: i32 = 0;
        let mut j = i + 1;
        while j < toks.len() && j - i < 64 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    ";" | "=" | "{" => break,
                    "," | ")" | "|" if depth <= 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident {
                if hash_names.contains(&t.text) {
                    hash_vars.entry(name_tok.text.clone()).or_insert((
                        t.line,
                        t.col,
                        t.text.clone(),
                    ));
                    break;
                }
                if t.text == "f32" || t.text == "f64" {
                    float_vars.insert(name_tok.text.clone());
                    break;
                }
            }
            j += 1;
        }
    }

    // (b) `let [mut] name = ...;` initializations. Pattern bindings
    // (`let Ok(x) = ...`, `let (a, b) = ...`) are skipped: only a plain
    // name directly followed by `:`, `=`, or `;` is a tracked binding.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let plain_binding = toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && toks
                    .get(k + 1)
                    .is_some_and(|t| t.is_punct(":") || t.is_punct("=") || t.is_punct(";"));
            if plain_binding {
                let name = toks[k].text.clone();
                let mut j = k + 1;
                let mut seen_eq = false;
                while j < toks.len() && j - i < 200 {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            // A top-level block ends the simple-statement
                            // scan; pass (a) covers struct-literal fields.
                            ";" | "{" => break,
                            "=" => seen_eq = true,
                            _ => {}
                        }
                    }
                    if t.kind == TokKind::Ident && hash_names.contains(&t.text) {
                        hash_vars
                            .entry(name.clone())
                            .or_insert((t.line, t.col, t.text.clone()));
                    }
                    if seen_eq && j == k + 2 {
                        if let TokKind::Number { float: true } = t.kind {
                            // `let mut acc = 0.0;` style initialization.
                            float_vars.insert(name.clone());
                        }
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }

    // ---- rule: unordered-collection -------------------------------------
    for (name, (line, col, ty)) in &hash_vars {
        push(
            RULE_UNORDERED_COLLECTION,
            *line,
            *col,
            format!(
                "`{name}` is bound to a {ty}, whose storage order is unspecified; \
                 use BTreeMap/BTreeSet or justify why order never escapes"
            ),
        );
    }

    // ---- rule: unordered-iter (method calls) -----------------------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !hash_vars.contains_key(&t.text) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|d| d.is_punct(".")) {
            if let Some(m) = toks.get(i + 2).filter(|m| m.kind == TokKind::Ident) {
                if ITER_METHODS.contains(&m.text.as_str())
                    && toks.get(i + 3).is_some_and(|p| p.is_punct("("))
                {
                    push(
                        RULE_UNORDERED_ITER,
                        m.line,
                        m.col,
                        format!(
                            "`{}.{}()` iterates a hash collection in unspecified order",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
    }

    // ---- rule: unordered-iter (for loops) --------------------------------
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("for") {
            // Find `in` at paren/bracket depth 0, then the loop body `{`.
            let mut depth: i32 = 0;
            let mut j = i + 1;
            let mut in_pos = None;
            while j < toks.len() && j - i < 64 {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        _ => {}
                    }
                }
                if depth == 0 && t.is_ident("in") {
                    in_pos = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_pos) = in_pos {
                let mut depth: i32 = 0;
                let mut j = in_pos + 1;
                while j < toks.len() && j - in_pos < 64 {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    if t.kind == TokKind::Ident && hash_vars.contains_key(&t.text) {
                        // Followed by a non-iterating method call: the loop
                        // iterates the method's (possibly ordered) result,
                        // and the method-call pass owns iter-method calls.
                        let accessor = toks.get(j + 1).is_some_and(|d| d.is_punct("."))
                            && toks.get(j + 2).is_some_and(|m| m.kind == TokKind::Ident)
                            && toks.get(j + 3).is_some_and(|p| p.is_punct("("));
                        if !accessor {
                            push(
                                RULE_UNORDERED_ITER,
                                t.line,
                                t.col,
                                format!(
                                    "for-loop over hash collection `{}` visits entries in \
                                     unspecified order",
                                    t.text
                                ),
                            );
                        }
                    }
                    j += 1;
                }
                i = in_pos;
            }
        }
        i += 1;
    }

    // ---- rule: nondet-source ---------------------------------------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if NONDET_IDENTS.contains(&t.text.as_str()) {
            push(
                RULE_NONDET_SOURCE,
                t.line,
                t.col,
                format!(
                    "`{}` is a nondeterministic source (per-process randomness); \
                     results depending on it are not reproducible",
                    t.text
                ),
            );
        }
        if CLOCK_TYPES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
            && toks.get(i + 2).is_some_and(|m| m.is_ident("now"))
        {
            push(
                RULE_NONDET_SOURCE,
                t.line,
                t.col,
                format!(
                    "`{}::now()` reads the clock; values derived from it differ \
                     between runs",
                    t.text
                ),
            );
        }
        if t.is_ident("rand")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
            && toks.get(i + 2).is_some_and(|m| m.is_ident("random"))
        {
            push(
                RULE_NONDET_SOURCE,
                t.line,
                t.col,
                "`rand::random()` draws from the OS-seeded thread RNG".to_string(),
            );
        }
    }

    // ---- rule: unscoped-thread -------------------------------------------
    if !rel_path.ends_with(THREAD_EXEMPT_SUFFIX) {
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.is_ident("thread")
                && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
                && toks.get(i + 2).is_some_and(|m| m.is_ident("spawn"))
            {
                push(
                    RULE_UNSCOPED_THREAD,
                    t.line,
                    t.col,
                    "`thread::spawn` outside pool/src/lib.rs: parallelism must go \
                     through the shared deterministic worker pool"
                        .to_string(),
                );
            }
            if t.is_ident("rayon") || t.is_ident("crossbeam") {
                push(
                    RULE_UNSCOPED_THREAD,
                    t.line,
                    t.col,
                    format!(
                        "`{}` used outside pool/src/lib.rs: parallelism must go \
                         through the shared deterministic worker pool",
                        t.text
                    ),
                );
            }
        }
    }

    // ---- rule: float-accum -----------------------------------------------
    if float_rule_applies(rel_path) {
        for i in 0..toks.len() {
            if !(toks[i].is_punct("+=") || toks[i].is_punct("-=")) {
                continue;
            }
            let op = toks[i].text.clone();
            // LHS: the field/variable immediately left of the operator.
            let lhs_is_float = toks
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.kind == TokKind::Ident && float_vars.contains(&t.text));
            // RHS: scan to `;` for float literals or f32/f64 casts.
            let mut rhs_float = false;
            let mut j = i + 1;
            while j < toks.len() && j - i < 32 {
                let t = &toks[j];
                if t.is_punct(";") {
                    break;
                }
                match &t.kind {
                    TokKind::Number { float: true } => rhs_float = true,
                    TokKind::Ident if t.text == "f32" || t.text == "f64" => rhs_float = true,
                    TokKind::Ident if float_vars.contains(&t.text) => rhs_float = true,
                    _ => {}
                }
                j += 1;
            }
            if lhs_is_float || rhs_float {
                push(
                    RULE_FLOAT_ACCUM,
                    toks[i].line,
                    toks[i].col,
                    format!(
                        "float `{op}` accumulation: summation order changes the result; \
                         tally in integers (or fixed-point) and divide once at the end"
                    ),
                );
            }
        }
    }

    // ---- rule: missing-forbid-unsafe --------------------------------------
    if is_crate_root(rel_path) {
        let mut found = false;
        for i in 0..toks.len() {
            if toks[i].is_punct("#")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct("("))
                && toks.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
            {
                found = true;
                break;
            }
        }
        if !found {
            push(
                RULE_MISSING_FORBID_UNSAFE,
                1,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`: detlint's safe-code \
                 assumption requires it in every crate root"
                    .to_string(),
            );
        }
    }

    // ---- pool-concurrency rules -------------------------------------------
    // These share phase A's span/closure scanners so the rules and the
    // symbol index agree on what a function body and a worker closure are.
    let spans = crate::index::fn_spans(toks);
    let closures = crate::index::worker_closures(toks);
    let last = toks.len().saturating_sub(1);

    // ---- rule: relaxed-atomic-output ---------------------------------------
    // Once per returning function, at its first `load(Ordering::Relaxed)`.
    // Pure accounting reporters are exempt by name: the execution-dependent
    // counter surface is their documented contract.
    for s in &spans {
        if !s.has_return || s.name.contains("stats") || s.name.contains("account") {
            continue;
        }
        for k in s.body.0..=s.body.1.min(last) {
            let t = &toks[k];
            if t.is_ident("load")
                && toks.get(k + 1).is_some_and(|p| p.is_punct("("))
                && toks.get(k + 2).is_some_and(|o| o.is_ident("Ordering"))
                && toks.get(k + 3).is_some_and(|p| p.is_punct("::"))
                && toks.get(k + 4).is_some_and(|r| r.is_ident("Relaxed"))
            {
                push(
                    RULE_RELAXED_ATOMIC_OUTPUT,
                    t.line,
                    t.col,
                    format!(
                        "`{}` declares a return type and reads an `Ordering::Relaxed` \
                         atomic: the value is execution-dependent; keep it out of \
                         deterministic output (or route it through exec-only metrics)",
                        s.name
                    ),
                );
                break;
            }
        }
    }

    // ---- rule: interior-mut-in-worker --------------------------------------
    // Once per worker closure, at the first interior-mutability type or
    // access method. The pool crate itself is the synchronization layer and
    // is exempt.
    if !rel_path.ends_with(THREAD_EXEMPT_SUFFIX) {
        for c in &closures {
            for k in c.body.0..=c.body.1.min(last) {
                let t = &toks[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let type_hit = INTERIOR_MUT_TYPES.contains(&t.text.as_str());
                let method_hit = INTERIOR_MUT_METHODS.contains(&t.text.as_str())
                    && k >= 1
                    && toks[k - 1].is_punct(".")
                    && toks.get(k + 1).is_some_and(|p| p.is_punct("("));
                if type_hit || method_hit {
                    push(
                        RULE_INTERIOR_MUT_IN_WORKER,
                        t.line,
                        t.col,
                        format!(
                            "worker closure passed to `{}` uses interior mutability \
                             (`{}`): lock/borrow order is scheduling-dependent; merge \
                             per-worker results after the batch instead",
                            c.method, t.text
                        ),
                    );
                    break;
                }
            }
        }
    }

    // ---- rule: pool-shared-capture -----------------------------------------
    // A worker closure capturing an identifier that is also mutated outside
    // the closure in the same file: shared mutable state across the pool
    // boundary, whose final value depends on worker scheduling.
    for c in &closures {
        let in_body = |k: usize| k >= c.body.0 && k <= c.body.1;
        // Closure-local `let` bindings are not captures.
        let mut locals: BTreeSet<&str> = BTreeSet::new();
        for k in c.body.0..=c.body.1.min(last) {
            if toks[k].is_ident("let") {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if let Some(t) = toks.get(n).filter(|t| t.kind == TokKind::Ident) {
                    locals.insert(t.text.as_str());
                }
            }
        }
        // Names mutated outside the closure: `name =`/`name +=` (prev token
        // not `let`/`mut`/`.`/`:`, so declarations and field stores don't
        // count as mutating the bare name) or `&mut name`.
        let mut mutated: BTreeSet<&str> = BTreeSet::new();
        for m in 0..toks.len() {
            if in_body(m) {
                continue;
            }
            let t = &toks[m];
            if t.kind == TokKind::Ident
                && toks.get(m + 1).is_some_and(|op| {
                    op.kind == TokKind::Punct && ASSIGN_OPS.contains(&op.text.as_str())
                })
            {
                let decl_or_field = m > 0
                    && (toks[m - 1].is_ident("let")
                        || toks[m - 1].is_ident("mut")
                        || toks[m - 1].is_punct(".")
                        || toks[m - 1].is_punct(":"));
                if !decl_or_field {
                    mutated.insert(t.text.as_str());
                }
            }
            if t.is_punct("&")
                && toks.get(m + 1).is_some_and(|x| x.is_ident("mut"))
                && !in_body(m + 2)
            {
                if let Some(x) = toks.get(m + 2).filter(|x| x.kind == TokKind::Ident) {
                    mutated.insert(x.text.as_str());
                }
            }
        }
        // First occurrence of each captured candidate that is mutated
        // outside: lowercase-initial ident, not a keyword, field access,
        // path segment, struct-literal field name / type ascription
        // (followed by `:`), parameter, or closure-local.
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for k in c.body.0..=c.body.1.min(last) {
            let t = &toks[k];
            if t.kind != TokKind::Ident
                || !t.text.chars().next().is_some_and(char::is_lowercase)
                || crate::index::KEYWORDS.contains(&t.text.as_str())
                || (k > 0 && toks[k - 1].is_punct("."))
                || toks
                    .get(k + 1)
                    .is_some_and(|p| p.is_punct("::") || p.is_punct(":"))
                || c.params.contains(&t.text)
                || locals.contains(t.text.as_str())
                || reported.contains(t.text.as_str())
            {
                continue;
            }
            if mutated.contains(t.text.as_str()) {
                reported.insert(t.text.as_str());
                push(
                    RULE_POOL_SHARED_CAPTURE,
                    t.line,
                    t.col,
                    format!(
                        "worker closure passed to `{}` captures `{}`, which is also \
                         mutated outside the closure: shared mutable state across \
                         the pool boundary makes results depend on worker scheduling",
                        c.method, t.text
                    ),
                );
            }
        }
    }

    // ---- rule: invalid-allow ----------------------------------------------
    for a in allows {
        if !a.well_formed || a.reason.is_empty() {
            push(
                RULE_INVALID_ALLOW,
                a.line,
                1,
                "allow annotation must carry a justification: \
                 `detlint::allow(rule): reason`"
                    .to_string(),
            );
        }
        for r in &a.rules {
            if !KNOWN_RULES.contains(&r.as_str()) {
                push(
                    RULE_INVALID_ALLOW,
                    a.line,
                    1,
                    format!("allow annotation names unknown rule `{r}`"),
                );
            }
        }
    }

    // ---- apply allow annotations ------------------------------------------
    let mut findings = raw;
    for f in &mut findings {
        if f.rule == RULE_INVALID_ALLOW {
            continue; // never silenceable
        }
        for (covered, a) in &allow_cover {
            if a.well_formed
                && !a.reason.is_empty()
                && covered.contains(&f.line)
                && a.rules.iter().any(|r| r == &f.rule)
            {
                f.allowed = Some(a.reason.clone());
                break;
            }
        }
    }

    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    findings.dedup_by(|a, b| (a.line, a.col, &a.rule) == (b.line, b.col, &b.rule));

    let allows = allow_cover
        .iter()
        .filter(|(_, a)| a.well_formed && !a.reason.is_empty())
        .map(|(covered, a)| AllowCover {
            lines: covered.clone(),
            rules: a.rules.clone(),
            reason: a.reason.clone(),
        })
        .collect();

    FileAnalysis { findings, allows }
}
