//! A minimal Rust lexer: just enough token structure for the detlint rules.
//!
//! The workspace vendors its entire dependency graph and `syn` is not part
//! of it, so detlint carries its own scanner. It understands the lexical
//! shapes that matter for *not* producing false positives — line and
//! (nested) block comments, string/char/byte/raw-string literals, lifetimes
//! versus char literals, numeric literals with float detection, and the
//! multi-character punctuation Rust glues together (`::`, `+=`, `>>`, …).
//! Everything inside comments and literals is invisible to the rules, with
//! one exception: comments are searched for `detlint::allow` annotations,
//! which are returned alongside the token stream.

/// Token kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal; `float` is true for floating-point shapes.
    Number {
        /// Whether the literal is floating-point (`1.0`, `2e9`, `3f64`).
        float: bool,
    },
    /// Punctuation (possibly multi-character, e.g. `::`, `+=`).
    Punct,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `detlint::allow` annotation — `(rule, ...): reason` — found in a
/// comment.
#[derive(Clone, Debug)]
pub struct AllowSite {
    /// Line the annotation comment starts on.
    pub line: u32,
    /// Rules the annotation names (as written; validated by the driver).
    pub rules: Vec<String>,
    /// Free-text justification after the `:` (may be empty — invalid).
    pub reason: String,
    /// Whether the annotation had the `): reason` tail at all.
    pub well_formed: bool,
}

/// Multi-character punctuation, longest first so matching is greedy.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=", "&&", "||", "<<", ">>", "..",
];

/// The annotation marker searched for inside comments.
const ALLOW_MARKER: &str = "detlint::allow(";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, returning the token stream and any allow annotations.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<AllowSite>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advance over `n` chars updating line/col bookkeeping.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];

        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also doc comments `///`, `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!(1);
            }
            scan_allow(&text, start_line, &mut allows);
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    bump!(1);
                }
            }
            scan_allow(&text, start_line, &mut allows);
            continue;
        }

        // String-literal prefixes: r"", r#""#, b"", br#""#, c"", cr#""#,
        // and raw identifiers r#ident.
        if is_ident_start(c) {
            let mut j = i;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let word: String = chars[i..j].iter().collect();
            let next = chars.get(j).copied();
            let stringish = matches!(word.as_str(), "r" | "b" | "br" | "c" | "cr");
            if stringish && (next == Some('"') || next == Some('#')) {
                // Raw identifier r#ident (not r#" which is a raw string).
                if word == "r"
                    && next == Some('#')
                    && chars.get(j + 1).copied().is_some_and(is_ident_start)
                {
                    let (l, co) = (line, col);
                    bump!(2); // r#
                    let mut text = String::new();
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        text.push(chars[i]);
                        bump!(1);
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line: l,
                        col: co,
                    });
                    continue;
                }
                // Raw string: skip prefix, count #s, then scan to "#*n.
                bump!(j - i);
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!(1);
                }
                if chars.get(i) == Some(&'"') {
                    bump!(1);
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                bump!(1 + hashes);
                                break 'raw;
                            }
                        }
                        bump!(1);
                    }
                }
                continue;
            }
            // Plain identifier / keyword.
            let (l, co) = (line, col);
            bump!(j - i);
            toks.push(Tok {
                kind: TokKind::Ident,
                text: word,
                line: l,
                col: co,
            });
            continue;
        }

        // Ordinary string literal.
        if c == '"' {
            bump!(1);
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!(2);
                } else if chars[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let n1 = chars.get(i + 1).copied();
            let n2 = chars.get(i + 2).copied();
            if n1.is_some_and(is_ident_start) && n2 != Some('\'') {
                // Lifetime: 'ident not closed by a quote.
                let (l, co) = (line, col);
                bump!(1);
                let mut text = String::from("'");
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    bump!(1);
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: l,
                    col: co,
                });
            } else {
                // Char literal (possibly escaped).
                bump!(1);
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!(2);
                    } else if chars[i] == '\'' {
                        bump!(1);
                        break;
                    } else {
                        bump!(1);
                    }
                }
            }
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let mut text = String::new();
            let mut float = false;
            let hexish =
                c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
            if hexish {
                text.push(chars[i]);
                text.push(chars[i + 1]);
                bump!(2);
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!(1);
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!(1);
                }
                // Fraction: '.' followed by a digit (not `..` or a method).
                if chars.get(i) == Some(&'.')
                    && chars
                        .get(i + 1)
                        .copied()
                        .is_some_and(|d| d.is_ascii_digit())
                {
                    float = true;
                    text.push('.');
                    bump!(1);
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!(1);
                    }
                }
                // Exponent.
                if matches!(chars.get(i), Some('e' | 'E'))
                    && (chars
                        .get(i + 1)
                        .copied()
                        .is_some_and(|d| d.is_ascii_digit())
                        || (matches!(chars.get(i + 1), Some('+' | '-'))
                            && chars
                                .get(i + 2)
                                .copied()
                                .is_some_and(|d| d.is_ascii_digit())))
                {
                    float = true;
                    text.push(chars[i]);
                    bump!(1);
                    while i < chars.len()
                        && (chars[i].is_ascii_digit() || matches!(chars[i], '+' | '-' | '_'))
                    {
                        text.push(chars[i]);
                        bump!(1);
                    }
                }
                // Suffix (u32, f64, ...).
                let suffix_start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    bump!(1);
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix.starts_with('f') {
                    float = true;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number { float },
                text,
                line: l,
                col: co,
            });
            continue;
        }

        // Punctuation: greedy multi-char match.
        let (l, co) = (line, col);
        let mut matched = None;
        for p in PUNCTS {
            let plen = p.chars().count();
            if i + plen <= chars.len() {
                let cand: String = chars[i..i + plen].iter().collect();
                if cand == *p {
                    matched = Some(cand);
                    break;
                }
            }
        }
        let text = matched.unwrap_or_else(|| c.to_string());
        let n = text.chars().count();
        bump!(n);
        toks.push(Tok {
            kind: TokKind::Punct,
            text,
            line: l,
            col: co,
        });
    }

    (toks, allows)
}

/// Parses `detlint::allow` occurrences — `(rule, ...): reason` — out of
/// one comment's text.
fn scan_allow(comment: &str, start_line: u32, out: &mut Vec<AllowSite>) {
    let mut rest = comment;
    let mut line_offset = 0u32;
    while let Some(pos) = rest.find(ALLOW_MARKER) {
        line_offset += rest[..pos].matches('\n').count() as u32;
        let after = &rest[pos + ALLOW_MARKER.len()..];
        let (rules_text, tail, well_formed) = match after.find(')') {
            Some(close) => (&after[..close], &after[close + 1..], true),
            None => (after, "", false),
        };
        let rules: Vec<String> = rules_text
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = tail
            .trim_start()
            .strip_prefix(':')
            .map(|r| r.lines().next().unwrap_or("").trim().to_string())
            .unwrap_or_default();
        let well_formed = well_formed && tail.trim_start().starts_with(':');
        out.push(AllowSite {
            line: start_line + line_offset,
            rules,
            reason,
            well_formed,
        });
        rest = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // DefaultHasher in a comment
            /* nested /* RandomState */ still comment */
            let s = "thread_rng inside a string";
            let r = r#"raw "SystemTime" string"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|t| t == "DefaultHasher"));
        assert!(!ids.iter().any(|t| t == "RandomState"));
        assert!(!ids.iter().any(|t| t == "thread_rng"));
        assert!(!ids.iter().any(|t| t == "SystemTime"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let (toks, _) = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn multichar_punct_is_glued() {
        let (toks, _) = lex("a += b; c::d; e >> 2; f..g");
        let puncts: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert!(puncts.contains(&"+=".to_string()));
        assert!(puncts.contains(&"::".to_string()));
        assert!(puncts.contains(&">>".to_string()));
        assert!(puncts.contains(&"..".to_string()));
    }

    #[test]
    fn float_detection() {
        let (toks, _) = lex("let a = 1.5; let b = 2e9; let c = 3f64; let d = 4; let e = 0x1F;");
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Number { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![true, true, true, false, false]);
    }

    #[test]
    fn range_is_not_a_float() {
        let (toks, _) = lex("for i in 0..10 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Number { .. }))
            .collect();
        assert_eq!(nums.len(), 2);
        assert!(nums
            .iter()
            .all(|t| t.kind == TokKind::Number { float: false }));
    }

    #[test]
    fn allow_annotations_are_parsed() {
        let marker = "detlint::allow";
        let src = format!(
            "// {marker}(unordered-iter): memo table, lookup-only\nlet x = 1;\n// {marker}(a, b): two rules\n// {marker}(broken
"
        );
        let (_, allows) = lex(&src);
        assert_eq!(allows.len(), 3);
        assert_eq!(allows[0].line, 1);
        assert_eq!(allows[0].rules, vec!["unordered-iter"]);
        assert_eq!(allows[0].reason, "memo table, lookup-only");
        assert!(allows[0].well_formed);
        assert_eq!(allows[1].rules, vec!["a", "b"]);
        assert!(!allows[2].well_formed);
    }
}
