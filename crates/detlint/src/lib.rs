//! **detlint**: the workspace determinism/ordering static-analysis pass.
//!
//! The refinement engine guarantees bit-identical output for every
//! `Config::threads` value, and the whole pipeline promises run-to-run
//! reproducibility (same inputs → same annotations, same convergence hash
//! trace). That contract is easy to break silently: one `for` loop over a
//! `HashMap`, one `DefaultHasher`, one stray `thread::spawn`, one float
//! tally that sums in scheduling order — and outputs start differing across
//! runs, platforms, or shard plans while every test still passes. The
//! dynamic determinism suite (`crates/core/tests/determinism.rs`) samples a
//! tiny corner of the input space; detlint checks the *source* of every
//! code path at CI time.
//!
//! The analysis runs in two phases (DESIGN.md §14). **Phase A** lexes and
//! analyzes every file independently — per-file rules plus a symbol index
//! of fn definitions, call sites, and taint facts — dispatched on the
//! shared [`pool::WorkerPool`] (detlint dogfoods the concurrency substrate
//! it polices). **Phase B** joins the indexes into a name-matched call
//! graph and propagates *order taint* to a fixpoint: a fn returning
//! hash-collection iteration order marks every transitive caller, and each
//! implicated call site is reported with its full propagation chain.
//!
//! Per-file rules (see DESIGN.md §9 for the threat model):
//!
//! | rule | hazard |
//! |------|--------|
//! | `unordered-collection` | binding a `HashMap`/`HashSet` (or an alias of one) |
//! | `unordered-iter` | iterating a hash collection (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`, …) |
//! | `nondet-source` | `DefaultHasher`, `RandomState`, `thread_rng`, `rand::random`, `SystemTime::now`, `Instant::now` |
//! | `unscoped-thread` | `thread::spawn` / `rayon` / `crossbeam` outside `pool/src/lib.rs` |
//! | `float-accum` | `+=`/`-=` float accumulation under `refine/` and `crates/eval/` |
//! | `missing-forbid-unsafe` | crate root without `#![forbid(unsafe_code)]` |
//! | `invalid-allow` | malformed `detlint::allow` annotation |
//! | `pool-shared-capture` | worker closure captures an identifier also mutated outside it |
//! | `relaxed-atomic-output` | returning fn reads an `Ordering::Relaxed` atomic |
//! | `interior-mut-in-worker` | `Mutex`/`RefCell`/`Cell` use inside a worker closure |
//!
//! Cross-file rule (phase B): `order-taint-flow` — a call site receives
//! hash-collection iteration order through the call graph; the finding
//! carries the seed-to-site chain.
//!
//! A benign site is silenced with a justification that lives next to the
//! code — for example `// detlint::allow(unordered-iter): membership test
//! only, order never observed` — on the offending line or the line above.
//! Annotations without a reason, or naming unknown rules, are themselves
//! findings, and `invalid-allow` can never be silenced.
//!
//! detlint is deliberately dependency-light (the workspace vendors its
//! dependency graph and carries no `syn`): a hand-rolled lexer strips
//! comments, strings, and lifetimes, and the rules are token-stream
//! heuristics with file-local name tracking. They over-approximate; that is
//! what the allow annotation is for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;

pub use dataflow::TaintSummary;
pub use index::{CallSite, FileIndex, FnInfo};
pub use report::{
    analyze_sources, analyze_workspace, analyze_workspace_with, collect_rs_files,
    find_workspace_root, Report, SCHEMA,
};
pub use rules::{analyze_source, ChainStep, FileAnalysis, Finding, KNOWN_RULES};
