//! Phase B of the workspace analysis: cross-file order-taint propagation.
//!
//! Phase A ([`crate::index`]) gives every file's function definitions,
//! taint facts, and call sites. This pass joins them into a name-matched
//! call graph and runs a fixpoint: a function that *returns hash-collection
//! iteration order* (it iterates a `HashMap`/`HashSet` and declares a
//! return type) seeds taint, and every caller that itself returns a value
//! inherits it transitively. Each call site of a tainted function becomes
//! an `order-taint-flow` finding carrying the full propagation chain back
//! to the seed, so the report shows *why* a call three crates away is
//! implicated — and an allow on the call site must argue the order is
//! neutralized (sorted, folded commutatively, count-only) right there.
//!
//! The seed condition deliberately ignores allow annotations on the
//! iteration site itself: "order never escapes this function" is exactly
//! the claim this pass machine-checks, so a justified iteration still
//! taints callers until some frame demonstrably stops the flow.

use crate::index::FileIndex;
use crate::rules::{AllowCover, ChainStep, Finding, RULE_ORDER_TAINT_FLOW};
use serde::Serialize;
use std::collections::BTreeMap;

/// Workspace-level index/taint statistics, embedded in the v2 report and
/// exported as the `detlint.*` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct TaintSummary {
    /// Function definitions indexed.
    pub fns: usize,
    /// Call sites whose callee name matches an indexed function.
    pub call_edges: usize,
    /// Seed functions (return hash-collection iteration order).
    pub taint_sources: usize,
    /// Functions tainted after the fixpoint (seeds included).
    pub tainted_fns: usize,
}

/// Runs the fixpoint over per-file indexes (paired with that file's allow
/// annotations) and returns the `order-taint-flow` findings plus summary
/// statistics. `indexes` must be in deterministic (sorted-path) order; the
/// output is then deterministic too — every map in here is a BTree.
pub fn propagate(indexes: &[(FileIndex, Vec<AllowCover>)]) -> (Vec<Finding>, TaintSummary) {
    // Function name -> definition facts, first definition in file order
    // wins for chain anchoring. `returning` is the union over same-named
    // definitions (over-approximation, documented in index.rs).
    struct FnFacts {
        file: String,
        line: u32,
        has_return: bool,
        seeds: bool,
    }
    let mut fns: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut fn_count = 0usize;
    for (idx, _) in indexes {
        for f in &idx.fns {
            fn_count += 1;
            let seeds = f.has_return && f.iterates_hash;
            let e = fns.entry(f.name.clone()).or_insert(FnFacts {
                file: f.file.clone(),
                line: f.line,
                has_return: f.has_return,
                seeds: false,
            });
            e.has_return |= f.has_return;
            e.seeds |= seeds;
        }
    }

    // Callee name -> call sites, source order within the sorted file walk.
    let mut calls_by_callee: BTreeMap<&str, Vec<&crate::index::CallSite>> = BTreeMap::new();
    let mut call_edges = 0usize;
    for (idx, _) in indexes {
        for c in &idx.calls {
            if fns.contains_key(&c.callee) {
                call_edges += 1;
                calls_by_callee
                    .entry(c.callee.as_str())
                    .or_default()
                    .push(c);
            }
        }
    }

    // Fixpoint: tainted fn name -> chain from the seed's definition to the
    // frame that tainted it. The worklist is a BTree so propagation order
    // (and therefore which of several possible chains is recorded) is
    // deterministic.
    let mut tainted: BTreeMap<String, Vec<ChainStep>> = BTreeMap::new();
    let mut worklist: Vec<String> = Vec::new();
    let mut taint_sources = 0usize;
    for (name, facts) in &fns {
        if facts.seeds {
            taint_sources += 1;
            tainted.insert(
                name.clone(),
                vec![ChainStep {
                    fn_name: name.clone(),
                    file: facts.file.clone(),
                    line: facts.line,
                }],
            );
            worklist.push(name.clone());
        }
    }
    while let Some(name) = worklist.pop() {
        let chain = tainted[&name].clone();
        for call in calls_by_callee.get(name.as_str()).into_iter().flatten() {
            let Some(caller) = &call.caller else { continue };
            if tainted.contains_key(caller) {
                continue;
            }
            if !fns.get(caller).is_some_and(|f| f.has_return) {
                continue; // the value cannot escape this frame by return
            }
            let caller_facts = &fns[caller];
            let mut next = chain.clone();
            next.push(ChainStep {
                fn_name: caller.clone(),
                file: caller_facts.file.clone(),
                line: caller_facts.line,
            });
            tainted.insert(caller.clone(), next);
            worklist.push(caller.clone());
        }
    }

    // Findings: every call site of a tainted function, chain = callee's
    // chain plus the call site itself.
    let mut findings = Vec::new();
    for (name, chain) in &tainted {
        let seed = &chain[0];
        for call in calls_by_callee.get(name.as_str()).into_iter().flatten() {
            let mut full = chain.clone();
            full.push(ChainStep {
                fn_name: call
                    .caller
                    .clone()
                    .unwrap_or_else(|| "<item scope>".to_string()),
                file: call.file.clone(),
                line: call.line,
            });
            let path: Vec<&str> = full.iter().map(|s| s.fn_name.as_str()).collect();
            let mut f = Finding {
                rule: RULE_ORDER_TAINT_FLOW.to_string(),
                file: call.file.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "call to `{name}` returns hash-collection iteration order \
                     (seeded at {}:{}; chain: {})",
                    seed.file,
                    seed.line,
                    path.join(" -> ")
                ),
                snippet: call.snippet.clone(),
                allowed: None,
                chain: Some(full),
            };
            // Apply the call-site file's allow annotations.
            if let Some((_, allows)) = indexes.iter().find(|(i, _)| i.file == call.file) {
                for a in allows {
                    if a.lines.contains(&f.line)
                        && a.rules.iter().any(|r| r == RULE_ORDER_TAINT_FLOW)
                    {
                        f.allowed = Some(a.reason.clone());
                        break;
                    }
                }
            }
            findings.push(f);
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.col).cmp(&(b.file.as_str(), b.line, b.col)));

    let summary = TaintSummary {
        fns: fn_count,
        call_edges,
        taint_sources,
        tainted_fns: tainted.len(),
    };
    (findings, summary)
}
