//! Ground-truth interdomain links and corpus visibility.
//!
//! The paper validates at link granularity against operator ground truth,
//! counting only "links visible in the paths" for recall. The synthetic
//! equivalent: an AS adjacency involving a validation network counts as
//! *visible* when the corpus contains evidence of it — an observed address
//! on one of its router-level links, a boundary crossing between observed
//! interfaces, or (for silent edges) a trace that died at the near side
//! while probing the far side. Precision judges inferred pairs against the
//! *full* truth, so correct inferences beyond the visible set are never
//! penalized (the paper likewise credits links absent from BGP).

use bdrmapit_core::Annotated;
use net_types::Asn;
use std::collections::BTreeSet;
use topo_gen::Internet;
use traceroute::Trace;

/// A canonical (low, high) AS pair.
pub type AsPair = (Asn, Asn);

/// Canonicalizes a pair.
pub fn pair(a: Asn, b: Asn) -> AsPair {
    (a.min(b), a.max(b))
}

/// Every true AS adjacency in the generated Internet.
pub fn true_pairs(net: &Internet) -> BTreeSet<AsPair> {
    net.true_links()
        .iter()
        .map(|l| pair(l.as_a, l.as_b))
        .collect()
}

/// True adjacencies involving `asn`.
pub fn true_pairs_of(net: &Internet, asn: Asn) -> BTreeSet<AsPair> {
    true_pairs(net)
        .into_iter()
        .filter(|&(a, b)| a == asn || b == asn)
        .collect()
}

/// The true owner of the router behind an observed address, if the address
/// is a real interface.
fn owner_of_addr(net: &Internet, addr: u32) -> Option<Asn> {
    net.topology
        .iface_by_addr(addr)
        .map(|i| net.topology.owner(i.router))
}

/// AS adjacencies involving `asn` visible in the corpus (see module docs).
/// `include_last_hop` controls whether the silent-edge rule applies —
/// Fig. 17 excludes links that only appear as the last hop.
pub fn visible_pairs(
    net: &Internet,
    traces: &[Trace],
    asn: Asn,
    include_last_hop: bool,
) -> BTreeSet<AsPair> {
    visible_pairs_in(net, traces, true_pairs_of(net, asn), include_last_hop)
}

/// Every visible AS adjacency, regardless of network (used by the
/// Internet-wide ablations).
pub fn visible_pairs_all(
    net: &Internet,
    traces: &[Trace],
    include_last_hop: bool,
) -> BTreeSet<AsPair> {
    visible_pairs_in(net, traces, true_pairs(net), include_last_hop)
}

fn visible_pairs_in(
    net: &Internet,
    traces: &[Trace],
    truth: BTreeSet<AsPair>,
    include_last_hop: bool,
) -> BTreeSet<AsPair> {
    let mut visible: BTreeSet<AsPair> = BTreeSet::new();

    // Rule 1: observed link addresses — point-to-point links only. An IXP
    // port address is shared by many peerings, so observing it is not
    // evidence of any particular pairing; IXP pairs become visible through
    // rule 2's boundary crossings instead.
    let observed: BTreeSet<u32> = traces
        .iter()
        .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
        .collect();
    for l in net.true_links() {
        let p = pair(l.as_a, l.as_b);
        if !truth.contains(&p) {
            continue;
        }
        let on_ixp_lan = net
            .addressing
            .ixps
            .iter()
            .any(|ixp| ixp.prefix.contains(l.addr_a));
        if on_ixp_lan {
            continue;
        }
        if observed.contains(&l.addr_a) || observed.contains(&l.addr_b) {
            visible.insert(p);
        }
    }

    // Rule 2: boundary crossings between observed interfaces.
    for t in traces {
        let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
        for w in hops.windows(2) {
            let (oa, ob) = (
                owner_of_addr(net, w[0].1.addr),
                owner_of_addr(net, w[1].1.addr),
            );
            if let (Some(a), Some(b)) = (oa, ob) {
                if a != b {
                    let p = pair(a, b);
                    if truth.contains(&p) {
                        visible.insert(p);
                    }
                }
            }
        }
    }

    // Rule 3: silent edges — the trace died at a router adjacent to the
    // destination's true network. The dying hop must itself be link-less in
    // the corpus (never followed by a response anywhere): that is the §5
    // precondition, and a link whose only witness is a trace dying at a
    // still-forwarding mid-path router is not evidenced in the dataset.
    if include_last_hop {
        let mut has_successor: BTreeSet<u32> = BTreeSet::new();
        for t in traces {
            let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
            for w in hops.windows(2) {
                has_successor.insert(w[0].1.addr);
            }
        }
        for t in traces {
            if t.reached_dst() {
                continue;
            }
            let Some((_, last)) = t.last_hop() else {
                continue;
            };
            if has_successor.contains(&last.addr) {
                continue;
            }
            let Some(near) = owner_of_addr(net, last.addr) else {
                continue;
            };
            let Some(dest_holder) = net.addressing.true_holder(t.dst) else {
                continue;
            };
            if near != dest_holder {
                let p = pair(near, dest_holder);
                if truth.contains(&p) {
                    visible.insert(p);
                }
            }
        }
    }

    visible
}

/// Inferred AS pairs from a bdrmapIT result, optionally restricted to pairs
/// involving one AS, optionally dropping links only inferred at last hops.
pub fn bdrmapit_pairs(
    result: &Annotated,
    focus: Option<Asn>,
    include_last_hop: bool,
) -> BTreeSet<AsPair> {
    result
        .interdomain_links()
        .iter()
        .filter(|l| include_last_hop || !l.last_hop)
        .map(|l| pair(l.ir_as, l.conn_as))
        .filter(|&(a, b)| focus.is_none_or(|f| a == f || b == f))
        .collect()
}

/// Inferred AS pairs from a MAP-IT run.
pub fn mapit_pairs(links: &[mapit::MapitLink], focus: Option<Asn>) -> BTreeSet<AsPair> {
    links
        .iter()
        .filter(|l| l.origin != l.operator && l.origin.is_some() && l.operator.is_some())
        .map(|l| pair(l.origin, l.operator))
        .filter(|&(a, b)| focus.is_none_or(|f| a == f || b == f))
        .collect()
}

/// Inferred AS pairs from a bdrmap run (always involves the VP network).
pub fn bdrmap_pairs(result: &bdrmap::BdrmapResult) -> BTreeSet<AsPair> {
    result
        .links
        .iter()
        .filter(|l| l.owner.is_some() && l.owner != result.vp_as)
        .map(|l| pair(result.vp_as, l.owner))
        .collect()
}

/// Link-level score with independent precision and recall numerators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkScore {
    /// Inferred pairs that exist in the full truth.
    pub correct: usize,
    /// Inferred pairs total.
    pub inferred: usize,
    /// Visible truth pairs that were inferred.
    pub found_visible: usize,
    /// Visible truth pairs total.
    pub visible: usize,
}

impl LinkScore {
    /// Computes the score.
    pub fn compute(
        inferred: &BTreeSet<AsPair>,
        truth_all: &BTreeSet<AsPair>,
        truth_visible: &BTreeSet<AsPair>,
    ) -> LinkScore {
        LinkScore {
            correct: inferred.intersection(truth_all).count(),
            inferred: inferred.len(),
            found_visible: inferred.intersection(truth_visible).count(),
            visible: truth_visible.len(),
        }
    }

    /// TP/(TP+FP).
    pub fn precision(&self) -> f64 {
        if self.inferred == 0 {
            1.0
        } else {
            self.correct as f64 / self.inferred as f64
        }
    }

    /// Visible links recovered.
    pub fn recall(&self) -> f64 {
        if self.visible == 0 {
            1.0
        } else {
            self.found_visible as f64 / self.visible as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u32, u32)]) -> BTreeSet<AsPair> {
        pairs.iter().map(|&(a, b)| pair(Asn(a), Asn(b))).collect()
    }

    #[test]
    fn pair_canonical() {
        assert_eq!(pair(Asn(5), Asn(2)), (Asn(2), Asn(5)));
    }

    #[test]
    fn link_score_math() {
        let inferred = set(&[(1, 2), (1, 3), (1, 9)]);
        let all = set(&[(1, 2), (1, 3), (1, 4)]);
        let visible = set(&[(1, 2), (1, 4)]);
        let s = LinkScore::compute(&inferred, &all, &visible);
        assert_eq!(s.correct, 2);
        assert_eq!(s.inferred, 3);
        assert_eq!(s.found_visible, 1);
        assert_eq!(s.visible, 2);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_scores() {
        let empty = BTreeSet::new();
        let s = LinkScore::compute(&empty, &empty, &empty);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
