//! Dual-snapshot experiments, matching the paper's figure axes.
//!
//! The paper evaluates two dataset snapshots — spring 2016 (March 2016
//! ITDK, 109 VPs) and spring 2018 (February 2018 ITDK, 141 VPs) — and its
//! figures group validation networks by year: Fig. 15 shows *2016 Tier 1,
//! 2016 R&E 2, 2016 L Access, 2018 Tier 1*; Fig. 16 adds *2016 R&E 1* and
//! *2018 R&E 1*. Two independently-seeded synthetic Internets stand in for
//! the two years (operators change topology between snapshots; independent
//! seeds model exactly that), and the drivers select the same groups the
//! paper reports.

use crate::experiments::{internet_wide, render_table, single_vp};
use crate::scenario::Scenario;
use net_types::Asn;
use serde::{Deserialize, Serialize};
use topo_gen::GeneratorConfig;

/// Two synthetic snapshots standing in for the 2016 and 2018 datasets.
#[derive(Debug)]
pub struct Snapshots {
    /// The "spring 2016" Internet.
    pub y2016: Scenario,
    /// The "spring 2018" Internet.
    pub y2018: Scenario,
}

impl Snapshots {
    /// Builds both snapshots from a base config; the 2018 snapshot gets an
    /// independent seed derived from the base.
    pub fn build(base: GeneratorConfig) -> Snapshots {
        let seed_2016 = base.seed;
        let seed_2018 = base.seed ^ 0x2018_2018;
        let cfg_2016 = GeneratorConfig {
            seed: seed_2016,
            ..base.clone()
        };
        let cfg_2018 = GeneratorConfig {
            seed: seed_2018,
            ..base
        };
        Snapshots {
            y2016: Scenario::build(cfg_2016),
            y2018: Scenario::build(cfg_2018),
        }
    }
}

/// One year-labelled figure row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct YearRow<T> {
    /// "2016" or "2018".
    pub year: String,
    /// Network label.
    pub network: String,
    /// Validation AS in that snapshot.
    pub asn: Asn,
    /// The measurement.
    pub data: T,
}

/// Fig. 15 with the paper's exact groups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig15Dual {
    /// Rows in the paper's order: 2016 Tier 1, 2016 R&E 2, 2016 L Access,
    /// 2018 Tier 1.
    pub rows: Vec<YearRow<single_vp::Fig15Row>>,
}

impl Fig15Dual {
    /// Text rendering in the paper's group order.
    pub fn render(&self) -> String {
        render_table(
            "Fig. 15 — Single in-network VP (2016 & 2018 snapshots)",
            &["group", "visible", "bdrmapIT", "bdrmap"],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{} {}", r.year, r.network),
                        r.data.visible_links.to_string(),
                        format!("{:.3}", r.data.bdrmapit),
                        format!("{:.3}", r.data.bdrmap),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs Fig. 15 over both snapshots, selecting the paper's groups.
pub fn fig15_dual(snaps: &Snapshots, seed: u64) -> Fig15Dual {
    let f2016 = single_vp::fig15(&snaps.y2016, seed);
    let f2018 = single_vp::fig15(&snaps.y2018, seed ^ 1);
    let pick = |fig: &single_vp::Fig15, year: &'static str, label: &str| {
        fig.rows
            .iter()
            .find(|r| r.network == label)
            .map(|r| YearRow {
                year: year.to_string(),
                network: label.to_string(),
                asn: r.asn,
                data: r.clone(),
            })
    };
    let rows = [
        pick(&f2016, "2016", "Tier 1"),
        pick(&f2016, "2016", "R&E 2"),
        pick(&f2016, "2016", "L Access"),
        pick(&f2018, "2018", "Tier 1"),
    ]
    .into_iter()
    .flatten()
    .collect();
    Fig15Dual { rows }
}

/// Figs. 16 & 17 with the paper's exact groups.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig16Dual {
    /// Fig. 16 rows: 2016 Tier 1, 2016 R&E 1, 2016 R&E 2, 2016 L Access,
    /// 2018 Tier 1, 2018 R&E 1.
    pub fig16: Vec<YearRow<internet_wide::WideRow>>,
    /// The same groups with last-hop-only links excluded (Fig. 17).
    pub fig17: Vec<YearRow<internet_wide::WideRow>>,
}

impl Fig16Dual {
    /// Text rendering of both figures in the paper's group order.
    pub fn render(&self) -> String {
        let fmt = |rows: &[YearRow<internet_wide::WideRow>], title: &str| {
            render_table(
                title,
                &[
                    "group",
                    "visible",
                    "IT prec",
                    "IT recall",
                    "MAPIT prec",
                    "MAPIT recall",
                ],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            format!("{} {}", r.year, r.network),
                            r.data.visible_links.to_string(),
                            format!("{:.3}", r.data.bdrmapit.precision()),
                            format!("{:.3}", r.data.bdrmapit.recall()),
                            format!("{:.3}", r.data.mapit.precision()),
                            format!("{:.3}", r.data.mapit.recall()),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
        };
        format!(
            "{}\n{}",
            fmt(
                &self.fig16,
                "Fig. 16 — No in-network VP (2016 & 2018 snapshots)"
            ),
            fmt(
                &self.fig17,
                "Fig. 17 — No in-network VP, last-hop-only links excluded (2016 & 2018)"
            )
        )
    }
}

/// Runs Figs. 16 & 17 over both snapshots.
pub fn fig16_dual(snaps: &Snapshots, n_vps: usize, seed: u64) -> Fig16Dual {
    let w2016 = internet_wide::run(&snaps.y2016, n_vps, seed);
    let w2018 = internet_wide::run(&snaps.y2018, n_vps, seed ^ 1);
    let pick = |rows: &[internet_wide::WideRow], year: &'static str, label: &str| {
        rows.iter().find(|r| r.network == label).map(|r| YearRow {
            year: year.to_string(),
            network: label.to_string(),
            asn: r.asn,
            data: r.clone(),
        })
    };
    let groups_2016 = ["Tier 1", "R&E 1", "R&E 2", "L Access"];
    let groups_2018 = ["Tier 1", "R&E 1"];
    let select = |w16: &[internet_wide::WideRow], w18: &[internet_wide::WideRow]| {
        let mut out = Vec::new();
        for g in groups_2016 {
            out.extend(pick(w16, "2016", g));
        }
        for g in groups_2018 {
            out.extend(pick(w18, "2018", g));
        }
        out
    };
    Fig16Dual {
        fig16: select(&w2016.fig16, &w2018.fig16),
        fig17: select(&w2016.fig17, &w2018.fig17),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_snapshots_have_independent_topologies() {
        let snaps = Snapshots::build(GeneratorConfig::tiny(3));
        assert_ne!(
            snaps.y2016.rels.to_serial1(),
            snaps.y2018.rels.to_serial1(),
            "snapshots must differ"
        );
        // Same structural shape though.
        assert_eq!(snaps.y2016.net.graph.len(), snaps.y2018.net.graph.len());
    }

    #[test]
    fn fig15_dual_has_paper_groups() {
        let snaps = Snapshots::build(GeneratorConfig::tiny(3));
        let fig = fig15_dual(&snaps, 5);
        let groups: Vec<String> = fig
            .rows
            .iter()
            .map(|r| format!("{} {}", r.year, r.network))
            .collect();
        assert_eq!(
            groups,
            vec!["2016 Tier 1", "2016 R&E 2", "2016 L Access", "2018 Tier 1"]
        );
        assert!(fig.render().contains("2018 Tier 1"));
    }

    #[test]
    fn fig16_dual_has_paper_groups() {
        let snaps = Snapshots::build(GeneratorConfig::tiny(3));
        let fig = fig16_dual(&snaps, 5, 7);
        assert_eq!(fig.fig16.len(), 6);
        assert_eq!(fig.fig17.len(), 6);
        assert_eq!(fig.fig16[4].year, "2018");
        assert!(fig.render().contains("Fig. 17"));
    }
}
