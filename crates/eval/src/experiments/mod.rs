//! Experiment drivers — one per paper figure/table.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`single_vp::fig15`] | Fig. 15: single in-network VP, bdrmapIT vs bdrmap |
//! | [`snapshots::fig15_dual`], [`snapshots::fig16_dual`] | the same figures with the paper's 2016/2018 snapshot groups |
//! | [`internet_wide::run`] | Figs. 16 & 17: Internet-wide, bdrmapIT vs MAP-IT |
//! | [`vps::sweep`] | Figs. 18 & 19: varying the number of VPs |
//! | [`aliases::fig20`] | Fig. 20 + §7.4: alias-resolution impact |
//! | [`heuristics::ablation`] | DESIGN.md ablations: each heuristic toggled |
//! | [`stats::corpus_stats`] | Table 3 distribution + §5 coverage claims |

pub mod aliases;
pub mod heuristics;
pub mod internet_wide;
pub mod single_vp;
pub mod snapshots;
pub mod stats;
pub mod vps;

use crate::scenario::{CorpusBundle, Scenario};
use bdrmapit_core::{Annotated, Bdrmapit, Config};

/// Runs bdrmapIT on a corpus under a scenario, reporting telemetry through
/// the scenario's recorder (disabled unless the scenario was built with
/// [`Scenario::build_with_obs`]) and dispatching the parallel phases on the
/// scenario's worker pool — the scenario's shared pool if one is installed,
/// so campaign and inference accumulate scheduling stats together.
pub fn run_bdrmapit(s: &Scenario, bundle: &CorpusBundle, cfg: Config) -> Annotated {
    Bdrmapit::new(cfg)
        .with_obs(s.obs.clone())
        .with_pool(s.worker_pool())
        .run(&bundle.traces, &bundle.aliases, &s.ip2as, &s.rels)
}

/// Renders an aligned text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = format!("== {title} ==\n");
    let header_cells: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "Demo",
            &["net", "value"],
            &[
                vec!["Tier 1".into(), "0.98".into()],
                vec!["L Access".into(), "0.91".into()],
            ],
        );
        assert!(t.contains("== Demo =="));
        assert!(t.contains("Tier 1"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }
}
