//! Heuristic ablations.
//!
//! DESIGN.md calls out each bdrmapIT design choice as a toggle; this driver
//! disables them one at a time on a fixed corpus and scores the overall
//! precision/recall across all validation networks, quantifying what each
//! heuristic buys (the paper argues §5's destination heuristic dominates
//! the improvement over MAP-IT).

use crate::experiments::{render_table, run_bdrmapit};
use crate::scenario::Scenario;
use crate::truth::{bdrmapit_pairs, true_pairs, visible_pairs_all, AsPair, LinkScore};
use bdrmapit_core::Config;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One ablation row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which variant ran.
    pub variant: String,
    /// Combined score across all validation networks.
    pub score: LinkScore,
    /// Interface-level router-annotation accuracy (more sensitive than
    /// pair-level scores to the vote heuristics, which mostly correct
    /// individual router attributions).
    pub annotation_accuracy: f64,
}

/// Ablation results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// One row per variant, full config first.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// Text rendering.
    pub fn render(&self) -> String {
        render_table(
            "Ablations — each heuristic disabled in turn",
            &[
                "variant",
                "precision",
                "recall",
                "ann acc",
                "inferred",
                "visible",
            ],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.variant.clone(),
                        format!("{:.3}", r.score.precision()),
                        format!("{:.3}", r.score.recall()),
                        format!("{:.4}", r.annotation_accuracy),
                        r.score.inferred.to_string(),
                        r.score.visible.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// The ablation variants.
pub fn variants() -> Vec<(&'static str, Config)> {
    let base = Config::default();
    vec![
        ("full", base.clone()),
        (
            "no-last-hop",
            Config {
                enable_last_hop: false,
                ..base.clone()
            },
        ),
        (
            "no-third-party",
            Config {
                enable_third_party: false,
                ..base.clone()
            },
        ),
        (
            "no-realloc",
            Config {
                enable_realloc: false,
                ..base.clone()
            },
        ),
        (
            "no-exceptions",
            Config {
                enable_exceptions: false,
                ..base.clone()
            },
        ),
        (
            "no-hidden-as",
            Config {
                enable_hidden_as: false,
                ..base.clone()
            },
        ),
        (
            "no-ixp",
            Config {
                enable_ixp_heuristic: false,
                ..base
            },
        ),
    ]
}

/// Runs all ablation variants on one corpus.
pub fn ablation(s: &Scenario, n_vps: usize, seed: u64) -> Ablation {
    let bundle = s.campaign(n_vps, true, seed);
    // Internet-wide truth: ablations measure the heuristics' aggregate
    // contribution, not just the four validation networks.
    let truth_all = true_pairs(&s.net);
    let visible = visible_pairs_all(&s.net, &bundle.traces, true);
    let mut rows = Vec::new();
    for (name, cfg) in variants() {
        let result = run_bdrmapit(s, &bundle, cfg);
        let pairs: BTreeSet<AsPair> = bdrmapit_pairs(&result, None, true);
        rows.push(AblationRow {
            variant: name.to_string(),
            score: LinkScore::compute(&pairs, &truth_all, &visible),
            annotation_accuracy: annotation_accuracy(s, &result),
        });
    }
    Ablation { rows }
}

/// Fraction of observed interfaces whose IR annotation names the true
/// router operator.
pub fn annotation_accuracy(s: &Scenario, result: &bdrmapit_core::Annotated) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (addr, asn) in result.router_annotations() {
        if asn.is_none() {
            continue;
        }
        let Some(iface) = s.net.topology.iface_by_addr(addr) else {
            continue;
        };
        total += 1;
        if s.net.topology.owner(iface.router) == asn {
            correct += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        correct as f64 / total as f64
    }
}
