//! Table 3 link-label statistics and the §5 coverage claims.
//!
//! The paper reports that Nexthop links dominate (96.4% in its datasets,
//! with 2.8% of linked IRs having only Echo links), that ≈98% of IRs have
//! no outgoing links, and that 73.3% of those have an empty destination AS
//! set. This driver recomputes the same statistics for a synthetic corpus.

use crate::experiments::render_table;
use crate::scenario::{CorpusBundle, Scenario};
use as_rel::CustomerCones;
use bdrmapit_core::{Config, IrGraph, LinkLabel};
use serde::{Deserialize, Serialize};

/// Corpus statistics mirroring Table 3 and §5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total links in the IR graph.
    pub links: usize,
    /// Nexthop-labelled links.
    pub nexthop: usize,
    /// Echo-labelled links.
    pub echo: usize,
    /// Multihop-labelled links.
    pub multihop: usize,
    /// IRs with at least one outgoing link.
    pub linked_irs: usize,
    /// Linked IRs whose best links are Echo (no Nexthop available) —
    /// the paper's 2.8% statistic.
    pub echo_only_irs: usize,
    /// Total IRs.
    pub irs: usize,
    /// IRs with no outgoing links (the paper's ≈98%).
    pub last_hop_irs: usize,
    /// Last-hop IRs with an empty destination AS set (the paper's 73.3%).
    pub last_hop_empty_dest: usize,
    /// Observed interfaces.
    pub interfaces: usize,
    /// Observed interfaces resolved by BGP/RIR/IXP (the paper's 99.95%).
    pub resolved_interfaces: usize,
}

impl CorpusStats {
    /// Fraction of links labelled Nexthop.
    pub fn nexthop_frac(&self) -> f64 {
        if self.links == 0 {
            return 0.0;
        }
        self.nexthop as f64 / self.links as f64
    }

    /// Fraction of IRs that are last-hop.
    pub fn last_hop_frac(&self) -> f64 {
        if self.irs == 0 {
            return 0.0;
        }
        self.last_hop_irs as f64 / self.irs as f64
    }

    /// Fraction of last-hop IRs with empty destination sets.
    pub fn empty_dest_frac(&self) -> f64 {
        if self.last_hop_irs == 0 {
            return 0.0;
        }
        self.last_hop_empty_dest as f64 / self.last_hop_irs as f64
    }

    /// Text rendering.
    pub fn render(&self) -> String {
        render_table(
            "Table 3 statistics & §5 coverage",
            &["metric", "value", "paper"],
            &[
                vec![
                    "Nexthop link share".into(),
                    format!("{:.1}%", 100.0 * self.nexthop_frac()),
                    "96.4%".into(),
                ],
                vec![
                    "Echo-only linked IRs".into(),
                    format!(
                        "{:.1}%",
                        100.0 * self.echo_only_irs as f64 / self.linked_irs.max(1) as f64
                    ),
                    "2.8%".into(),
                ],
                vec![
                    "last-hop IR share".into(),
                    format!("{:.1}%", 100.0 * self.last_hop_frac()),
                    "≈98%".into(),
                ],
                vec![
                    "last-hop IRs w/ empty dest set".into(),
                    format!("{:.1}%", 100.0 * self.empty_dest_frac()),
                    "73.3%".into(),
                ],
                vec![
                    "interfaces resolved to an AS".into(),
                    format!(
                        "{:.2}%",
                        100.0 * self.resolved_interfaces as f64 / self.interfaces.max(1) as f64
                    ),
                    "99.95%".into(),
                ],
            ],
        )
    }
}

/// Computes the statistics for a corpus.
pub fn corpus_stats(s: &Scenario, bundle: &CorpusBundle) -> CorpusStats {
    let cones = CustomerCones::compute(&s.rels);
    let graph = IrGraph::build(
        &bundle.traces,
        &bundle.aliases,
        &s.ip2as,
        &Config::default(),
        &s.rels,
        &cones,
    );
    let dist = graph.label_distribution();
    let get = |l: LinkLabel| dist.get(&l).copied().unwrap_or(0);
    let linked: Vec<&bdrmapit_core::Ir> = graph.mid_path_irs().collect();
    let echo_only = linked
        .iter()
        .filter(|ir| {
            ir.links.iter().any(|l| l.label == LinkLabel::Echo)
                && !ir.links.iter().any(|l| l.label == LinkLabel::Nexthop)
        })
        .count();
    let last_hop: Vec<&bdrmapit_core::Ir> = graph.last_hop_irs().collect();
    let empty_dest = last_hop.iter().filter(|ir| ir.dests.is_empty()).count();
    let resolved = graph
        .iface_origin
        .iter()
        .filter(|o| o.prefix.is_some())
        .count();
    CorpusStats {
        links: graph.link_count(),
        nexthop: get(LinkLabel::Nexthop),
        echo: get(LinkLabel::Echo),
        multihop: get(LinkLabel::Multihop),
        linked_irs: linked.len(),
        echo_only_irs: echo_only,
        irs: graph.irs.len(),
        last_hop_irs: last_hop.len(),
        last_hop_empty_dest: empty_dest,
        interfaces: graph.iface_addrs.len(),
        resolved_interfaces: resolved,
    }
}
