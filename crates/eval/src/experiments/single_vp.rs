//! Fig. 15: single in-network VP — bdrmapIT vs bdrmap.
//!
//! The paper's regression test: for each ground-truth network, run both
//! tools on the *same* single-VP corpus collected inside that network and
//! compare the accuracy of the inferred border links. bdrmapIT should be at
//! least as accurate ("bdrmapIT performs slightly more accurately than
//! bdrmap, primarily due to mapping past the VP AS border").

use crate::experiments::{render_table, run_bdrmapit};
use crate::scenario::Scenario;
use crate::truth::{bdrmap_pairs, bdrmapit_pairs, true_pairs_of, visible_pairs, LinkScore};
use bdrmapit_core::Config;
use net_types::Asn;
use serde::{Deserialize, Serialize};

/// One bar pair of Fig. 15.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Validation network label ("Tier 1", ...).
    pub network: String,
    /// The validation AS.
    pub asn: Asn,
    /// Interdomain links of this network visible in the corpus (the number
    /// printed under each group in the paper's figure).
    pub visible_links: usize,
    /// bdrmapIT accuracy (fraction of its inferred links that are real).
    pub bdrmapit: f64,
    /// bdrmap accuracy on the identical corpus.
    pub bdrmap: f64,
}

/// Fig. 15 results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig15 {
    /// One row per validation network.
    pub rows: Vec<Fig15Row>,
}

impl Fig15 {
    /// Text rendering in the figure's layout.
    pub fn render(&self) -> String {
        render_table(
            "Fig. 15 — Single in-network VP: accuracy (bdrmapIT vs bdrmap)",
            &["network", "visible", "bdrmapIT", "bdrmap"],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        r.visible_links.to_string(),
                        format!("{:.3}", r.bdrmapit),
                        format!("{:.3}", r.bdrmap),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs the experiment.
pub fn fig15(s: &Scenario, seed: u64) -> Fig15 {
    let mut rows = Vec::new();
    for asn in s.validation.all() {
        let bundle = s.single_vp_campaign(asn, seed);
        let truth_all = true_pairs_of(&s.net, asn);
        let visible = visible_pairs(&s.net, &bundle.traces, asn, true);

        let it_result = run_bdrmapit(s, &bundle, Config::default());
        let it_pairs = bdrmapit_pairs(&it_result, Some(asn), true);
        let it_score = LinkScore::compute(&it_pairs, &truth_all, &visible);

        let bm_result = bdrmap::run(
            &bundle.traces,
            &bundle.aliases,
            &s.ip2as,
            &s.rels,
            Some(asn),
        );
        let bm_pairs = bdrmap_pairs(&bm_result);
        let bm_score = LinkScore::compute(&bm_pairs, &truth_all, &visible);

        rows.push(Fig15Row {
            network: s.validation.label(asn).to_string(),
            asn,
            visible_links: visible.len(),
            bdrmapit: it_score.precision(),
            bdrmap: bm_score.precision(),
        });
    }
    Fig15 { rows }
}
