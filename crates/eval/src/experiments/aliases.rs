//! Fig. 20 and §7.4: the impact of alias resolution.
//!
//! Three runs on one corpus: precise MIDAR+iffinder-style aliases, the
//! over-merging kapar-style dataset, and no aliases at all. Fig. 20 scores
//! router-annotation accuracy restricted to IRs with multiple aliases —
//! where the alias input actually matters — per validation network; the
//! §7.4 ablation compares overall interface-level accuracy with and
//! without aliases (the paper reports a <0.1% difference).

use crate::experiments::render_table;
use crate::experiments::run_bdrmapit;
use crate::metrics::Accuracy;
use crate::scenario::{CorpusBundle, Scenario};
use bdrmapit_core::{Annotated, Config};
use net_types::Asn;
use serde::{Deserialize, Serialize};

/// Per-network accuracy under each alias dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig20Row {
    /// Network label.
    pub network: String,
    /// Validation AS.
    pub asn: Asn,
    /// Accuracy over multi-alias IRs with MIDAR-style aliases.
    pub midar: Accuracy,
    /// Accuracy over multi-alias IRs with kapar-style aliases.
    pub kapar: Accuracy,
}

/// Fig. 20 + §7.4 results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AliasImpact {
    /// Per-network multi-alias accuracy.
    pub rows: Vec<Fig20Row>,
    /// Overall interface-level accuracy with MIDAR aliases.
    pub overall_midar: Accuracy,
    /// Overall interface-level accuracy with no aliases (§7.4).
    pub overall_none: Accuracy,
    /// Alias-pair precision of each dataset, for context.
    pub midar_pair_precision: f64,
    /// kapar pair precision (lower: the over-merge mechanism).
    pub kapar_pair_precision: f64,
}

impl AliasImpact {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = render_table(
            "Fig. 20 — Multi-alias IR accuracy: midar vs kapar",
            &["network", "midar", "kapar"],
            &self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.network.clone(),
                        format!(
                            "{:.3} ({}/{})",
                            r.midar.value(),
                            r.midar.correct,
                            r.midar.total
                        ),
                        format!(
                            "{:.3} ({}/{})",
                            r.kapar.value(),
                            r.kapar.correct,
                            r.kapar.total
                        ),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        out.push_str(&format!(
            "\n§7.4 — overall interface accuracy: midar {:.4} vs no-alias {:.4} (Δ {:+.4})\n\
             alias pair precision: midar {:.3}, kapar {:.3}\n",
            self.overall_midar.value(),
            self.overall_none.value(),
            self.overall_midar.value() - self.overall_none.value(),
            self.midar_pair_precision,
            self.kapar_pair_precision,
        ));
        out
    }
}

/// Interface-level router-annotation accuracy, optionally restricted to
/// multi-alias IRs and/or to interfaces truly owned by one AS.
fn interface_accuracy(
    s: &Scenario,
    result: &Annotated,
    multi_alias_only: bool,
    focus: Option<Asn>,
) -> Accuracy {
    let mut acc = Accuracy::default();
    for ir in &result.graph.irs {
        if multi_alias_only && ir.ifaces.len() < 2 {
            continue;
        }
        let ann = result.state.router[ir.id.0 as usize];
        if ann.is_none() {
            continue;
        }
        // Judged per interface against the true owner of *its* router: an
        // IR that wrongly merges two networks' routers (kapar's failure
        // mode) is then necessarily wrong for the minority side, exactly
        // the effect Fig. 20 measures ("bdrmapIT ensures that each router
        // receives a single AS annotation").
        for &ifidx in &ir.ifaces {
            let addr = result.graph.iface_addrs[ifidx.0 as usize];
            let Some(iface) = s.net.topology.iface_by_addr(addr) else {
                continue;
            };
            let truth = s.net.topology.owner(iface.router);
            if let Some(f) = focus {
                if truth != f {
                    continue;
                }
            }
            acc.total += 1;
            if ann == truth {
                acc.correct += 1;
            }
        }
    }
    acc
}

/// Runs the experiment.
pub fn fig20(s: &Scenario, n_vps: usize, seed: u64) -> AliasImpact {
    let bundle = s.campaign(n_vps, true, seed);
    let kapar = s.kapar_aliases(&bundle);

    let midar_result = run_bdrmapit(s, &bundle, Config::default());
    let kapar_bundle = CorpusBundle {
        traces: bundle.traces.clone(),
        aliases: kapar.clone(),
        vps: bundle.vps.clone(),
    };
    let kapar_result = run_bdrmapit(s, &kapar_bundle, Config::default());
    let none_bundle = CorpusBundle {
        traces: bundle.traces.clone(),
        aliases: alias::AliasSets::empty(),
        vps: bundle.vps.clone(),
    };
    let none_result = run_bdrmapit(s, &none_bundle, Config::default());

    let rows = s
        .validation
        .all()
        .iter()
        .map(|&asn| Fig20Row {
            network: s.validation.label(asn).to_string(),
            asn,
            midar: interface_accuracy(s, &midar_result, true, Some(asn)),
            kapar: interface_accuracy(s, &kapar_result, true, Some(asn)),
        })
        .collect();

    let (m_tp, m_tot) = alias::pair_accuracy(&bundle.aliases, &s.net);
    let (k_tp, k_tot) = alias::pair_accuracy(&kapar, &s.net);

    AliasImpact {
        rows,
        overall_midar: interface_accuracy(s, &midar_result, false, None),
        overall_none: interface_accuracy(s, &none_result, false, None),
        midar_pair_precision: if m_tot == 0 {
            1.0
        } else {
            m_tp as f64 / m_tot as f64
        },
        kapar_pair_precision: if k_tot == 0 {
            1.0
        } else {
            k_tp as f64 / k_tot as f64
        },
    }
}
