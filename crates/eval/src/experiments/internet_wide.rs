//! Figs. 16 & 17: Internet-wide mapping with no in-network VPs —
//! bdrmapIT vs MAP-IT.
//!
//! One ITDK-style campaign with every validation-network VP removed; both
//! tools run on identical input. Fig. 16 scores precision and recall over
//! all visible links; Fig. 17 repeats the recall comparison with the
//! links that only appear as traceroute last hops excluded, isolating the
//! contribution of the destination-AS heuristic (§5) from mid-path
//! inference quality.

use crate::experiments::{render_table, run_bdrmapit};
use crate::scenario::Scenario;
use crate::truth::{bdrmapit_pairs, mapit_pairs, true_pairs_of, visible_pairs, LinkScore};
use bdrmapit_core::Config;
use mapit::{Mapit, MapitConfig};
use net_types::Asn;
use serde::{Deserialize, Serialize};

/// Scores for one validation network under one tool.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ToolScore {
    /// Link-level score.
    pub score: LinkScore,
}

/// One network's row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WideRow {
    /// Network label.
    pub network: String,
    /// Validation AS.
    pub asn: Asn,
    /// Visible links (the figure's per-group count).
    pub visible_links: usize,
    /// bdrmapIT score.
    pub bdrmapit: LinkScore,
    /// MAP-IT score.
    pub mapit: LinkScore,
}

/// Figs. 16 & 17 results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InternetWide {
    /// Fig. 16 rows (all visible links).
    pub fig16: Vec<WideRow>,
    /// Fig. 17 rows (last-hop-only links excluded).
    pub fig17: Vec<WideRow>,
    /// Number of VPs probing.
    pub vps: usize,
    /// Total traces in the corpus.
    pub traces: usize,
}

impl InternetWide {
    /// Text rendering of both figures.
    pub fn render(&self) -> String {
        let fmt = |rows: &[WideRow], title: &str| {
            render_table(
                title,
                &[
                    "network",
                    "visible",
                    "IT prec",
                    "IT recall",
                    "MAPIT prec",
                    "MAPIT recall",
                ],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.network.clone(),
                            r.visible_links.to_string(),
                            format!("{:.3}", r.bdrmapit.precision()),
                            format!("{:.3}", r.bdrmapit.recall()),
                            format!("{:.3}", r.mapit.precision()),
                            format!("{:.3}", r.mapit.recall()),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
        };
        format!(
            "{}\n{}",
            fmt(
                &self.fig16,
                "Fig. 16 — No in-network VP: correctness & coverage"
            ),
            fmt(
                &self.fig17,
                "Fig. 17 — No in-network VP, last-hop-only links excluded"
            )
        )
    }
}

/// Runs the experiment.
pub fn run(s: &Scenario, n_vps: usize, seed: u64) -> InternetWide {
    let bundle = s.campaign(n_vps, true, seed);
    let it_result = run_bdrmapit(s, &bundle, Config::default());
    let mut mp = Mapit::build(&bundle.traces, &s.ip2as);
    mp.run(&MapitConfig::default());
    let mp_links = mp.links();

    let mut fig16 = Vec::new();
    let mut fig17 = Vec::new();
    for asn in s.validation.all() {
        let truth_all = true_pairs_of(&s.net, asn);
        let network = s.validation.label(asn).to_string();

        // Fig. 16: everything visible.
        let visible = visible_pairs(&s.net, &bundle.traces, asn, true);
        let it_pairs = bdrmapit_pairs(&it_result, Some(asn), true);
        let mp_pairs = mapit_pairs(&mp_links, Some(asn));
        fig16.push(WideRow {
            network: network.clone(),
            asn,
            visible_links: visible.len(),
            bdrmapit: LinkScore::compute(&it_pairs, &truth_all, &visible),
            mapit: LinkScore::compute(&mp_pairs, &truth_all, &visible),
        });

        // Fig. 17: last-hop-only links excluded from both sides.
        let visible_mid = visible_pairs(&s.net, &bundle.traces, asn, false);
        let it_pairs_mid = bdrmapit_pairs(&it_result, Some(asn), false);
        fig17.push(WideRow {
            network,
            asn,
            visible_links: visible_mid.len(),
            bdrmapit: LinkScore::compute(&it_pairs_mid, &truth_all, &visible_mid),
            mapit: LinkScore::compute(&mp_pairs, &truth_all, &visible_mid),
        });
    }

    InternetWide {
        fig16,
        fig17,
        vps: bundle.vps.len(),
        traces: bundle.traces.len(),
    }
}
