//! Figs. 18 & 19: effect of decreasing the number of vantage points.
//!
//! The paper's headline negative result: accuracy does *not* diminish with
//! fewer VPs, even though the number of visible links does. The sweep runs
//! several random VP sets per group size, reporting mean ± standard error
//! of precision/recall (Fig. 18) and of the fraction of links visible
//! relative to the full VP pool (Fig. 19).

use crate::experiments::{render_table, run_bdrmapit};
use crate::metrics::mean_stderr;
use crate::scenario::Scenario;
use crate::truth::{bdrmapit_pairs, true_pairs_of, visible_pairs, LinkScore};
use bdrmapit_core::Config;
use net_types::Asn;
use serde::{Deserialize, Serialize};

/// Aggregated measurements for one (group size, network) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Network label.
    pub network: String,
    /// Validation AS.
    pub asn: Asn,
    /// Number of VPs in the group.
    pub vps: usize,
    /// Mean precision across the random sets.
    pub precision_mean: f64,
    /// Standard error of the precision.
    pub precision_stderr: f64,
    /// Mean recall.
    pub recall_mean: f64,
    /// Standard error of the recall.
    pub recall_stderr: f64,
    /// Mean fraction of links visible relative to the full-pool baseline
    /// (Fig. 19).
    pub visible_frac_mean: f64,
    /// Standard error of the visible fraction.
    pub visible_frac_stderr: f64,
}

/// Figs. 18 & 19 results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VpSweep {
    /// Group sizes swept.
    pub groups: Vec<usize>,
    /// Random sets per group.
    pub sets_per_group: usize,
    /// All cells.
    pub cells: Vec<SweepCell>,
}

impl VpSweep {
    /// Text rendering of both figures.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.vps.to_string(),
                    c.network.clone(),
                    format!("{:.3}±{:.3}", c.precision_mean, c.precision_stderr),
                    format!("{:.3}±{:.3}", c.recall_mean, c.recall_stderr),
                    format!("{:.3}±{:.3}", c.visible_frac_mean, c.visible_frac_stderr),
                ]
            })
            .collect();
        render_table(
            "Figs. 18 & 19 — Varying the number of VPs",
            &["#VPs", "network", "precision", "recall", "visible frac"],
            &rows,
        )
    }
}

/// Runs the sweep. `groups` mirrors the paper's 20/40/60/80, scaled to the
/// synthetic Internet's size.
pub fn sweep(s: &Scenario, groups: &[usize], sets_per_group: usize, seed: u64) -> VpSweep {
    // Full-pool baseline for Fig. 19's denominator: every eligible VP.
    let max_vps = groups.iter().copied().max().unwrap_or(1) * 2;
    let full = s.campaign(max_vps, true, seed ^ 0xF0F0);
    let full_visible: Vec<usize> = s
        .validation
        .all()
        .iter()
        .map(|&asn| visible_pairs(&s.net, &full.traces, asn, true).len())
        .collect();

    let mut cells = Vec::new();
    for &g in groups {
        // Collect per-network samples across the random sets.
        let nets = s.validation.all();
        let mut precision: Vec<Vec<f64>> = vec![Vec::new(); nets.len()];
        let mut recall: Vec<Vec<f64>> = vec![Vec::new(); nets.len()];
        let mut vis_frac: Vec<Vec<f64>> = vec![Vec::new(); nets.len()];
        for set_idx in 0..sets_per_group {
            let vp_seed = seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add((g * 1000 + set_idx) as u64);
            let bundle = s.campaign(g, true, vp_seed);
            let result = run_bdrmapit(s, &bundle, Config::default());
            for (i, &asn) in nets.iter().enumerate() {
                let truth_all = true_pairs_of(&s.net, asn);
                let visible = visible_pairs(&s.net, &bundle.traces, asn, true);
                let pairs = bdrmapit_pairs(&result, Some(asn), true);
                let score = LinkScore::compute(&pairs, &truth_all, &visible);
                precision[i].push(score.precision());
                recall[i].push(score.recall());
                let denom = full_visible[i].max(1);
                vis_frac[i].push(visible.len() as f64 / denom as f64);
            }
        }
        for (i, &asn) in nets.iter().enumerate() {
            let (pm, pe) = mean_stderr(&precision[i]);
            let (rm, re) = mean_stderr(&recall[i]);
            let (vm, ve) = mean_stderr(&vis_frac[i]);
            cells.push(SweepCell {
                network: s.validation.label(asn).to_string(),
                asn,
                vps: g,
                precision_mean: pm,
                precision_stderr: pe,
                recall_mean: rm,
                recall_stderr: re,
                visible_frac_mean: vm,
                visible_frac_stderr: ve,
            });
        }
    }
    VpSweep {
        groups: groups.to_vec(),
        sets_per_group,
        cells,
    }
}
