//! Validation harness for bdrmapit-rs.
//!
//! Everything needed to regenerate the paper's evaluation (§7) on the
//! synthetic Internet:
//!
//! * [`metrics`] — precision/recall/accuracy containers.
//! * [`scenario`] — a reproducible experiment scenario: generated Internet,
//!   collector RIB, IP→AS oracle, *inferred* AS relationships (as CAIDA
//!   derives them from BGP), and the four validation networks mirroring the
//!   paper's ground-truth set (a Tier-1, a large access network, two R&E
//!   networks).
//! * [`truth`] — ground-truth interdomain links and their visibility in a
//!   given corpus.
//! * [`experiments`] — one driver per paper figure/table. Each returns a
//!   serializable result with a `render()` text table matching the figure's
//!   rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod scenario;
pub mod truth;

pub use metrics::{Accuracy, PrecisionRecall};
pub use scenario::{CorpusBundle, Scenario, ValidationNetworks};
