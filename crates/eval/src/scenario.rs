//! Reproducible experiment scenarios.

use alias::{observed_addresses, resolve_kapar, resolve_midar_with_obs, AliasSets};
use as_rel::infer::{infer_relationships, InferenceConfig};
use as_rel::AsRelationships;
use bgp::{IpToAs, Rib};
use net_types::Asn;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use topo_gen::{GeneratorConfig, Internet, RouterId, Tier};
use traceroute::sim::{probe_campaign_in_pool, select_vps, ProbeConfig};
use traceroute::Trace;

/// The four networks validated in the paper (§7): "a Tier-1 network, a
/// large access network, and two research and education (R&E) networks".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationNetworks {
    /// The Tier-1.
    pub tier1: Asn,
    /// The large access network (the access AS with the most customers).
    pub large_access: Asn,
    /// R&E network 1 (router configs in the paper).
    pub re1: Asn,
    /// R&E network 2.
    pub re2: Asn,
}

impl ValidationNetworks {
    /// The networks as a slice for exclusion lists.
    pub fn all(&self) -> [Asn; 4] {
        [self.tier1, self.large_access, self.re1, self.re2]
    }

    /// Display label per network, matching the paper's figure axes.
    pub fn label(&self, asn: Asn) -> &'static str {
        if asn == self.tier1 {
            "Tier 1"
        } else if asn == self.large_access {
            "L Access"
        } else if asn == self.re1 {
            "R&E 1"
        } else if asn == self.re2 {
            "R&E 2"
        } else {
            "?"
        }
    }
}

/// A fully-prepared experiment scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The synthetic Internet.
    pub net: Internet,
    /// Collector RIB (synthetic Routeviews/RIS view).
    pub rib: Rib,
    /// The combined IP→AS oracle (BGP + RIR + IXP).
    pub ip2as: IpToAs,
    /// AS relationships *inferred from the RIB* — the pipeline never peeks
    /// at generator truth, exactly as CAIDA runs on inferred relationships.
    pub rels: AsRelationships,
    /// The validation networks.
    pub validation: ValidationNetworks,
    /// Telemetry recorder threaded through campaigns and experiment runs.
    /// Disabled (no-op) unless the scenario was built with
    /// [`Scenario::build_with_obs`]; either way inference results are
    /// bit-identical.
    pub obs: obs::Recorder,
    /// Worker threads for the sharded probe campaign (0 = ask the OS).
    /// Campaign output is bit-identical for every value; this only sizes
    /// the pool.
    pub threads: usize,
    /// A shared worker pool for every parallel phase run under this
    /// scenario. `None` (the default) means each campaign builds an ad-hoc
    /// pool from [`Scenario::threads`]; installing one lets campaign, graph
    /// build, and refinement accumulate scheduling statistics on one object
    /// (and is what the pipeline benchmarks do). The pool's budget takes
    /// precedence over `threads`.
    pub pool: Option<Arc<pool::WorkerPool>>,
}

impl Scenario {
    /// Builds the scenario for a generator config, telemetry off.
    pub fn build(cfg: GeneratorConfig) -> Scenario {
        Scenario::build_with_obs(cfg, obs::Recorder::disabled())
    }

    /// Builds the scenario for a generator config, recording phase spans and
    /// counters through `rec`. The recorder is kept on the scenario so
    /// campaigns and [`run_bdrmapit`](crate::experiments::run_bdrmapit)
    /// report into the same run.
    pub fn build_with_obs(cfg: GeneratorConfig, rec: obs::Recorder) -> Scenario {
        let net = Internet::generate_with_obs(cfg, &rec);
        let rib = net.build_rib();
        let ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
        let rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
        let validation = pick_validation(&net);
        Scenario {
            net,
            rib,
            ip2as,
            rels,
            validation,
            obs: rec,
            threads: 0,
            pool: None,
        }
    }

    /// The worker pool campaigns and inference runs dispatch on: the
    /// installed shared pool, or an ad-hoc one sized from
    /// [`Scenario::threads`] reporting into the scenario's recorder.
    pub fn worker_pool(&self) -> Arc<pool::WorkerPool> {
        self.pool.clone().unwrap_or_else(|| {
            Arc::new(pool::WorkerPool::with_recorder(
                self.threads,
                self.obs.clone(),
            ))
        })
    }

    /// Runs an ITDK-style campaign from `n_vps` vantage points. When
    /// `exclude_validation` is set, no VP sits inside a validation network
    /// (§7.2: "we removed traceroutes from a VP in one of our ground truth
    /// networks").
    pub fn campaign(&self, n_vps: usize, exclude_validation: bool, vp_seed: u64) -> CorpusBundle {
        let exclude: Vec<Asn> = if exclude_validation {
            self.validation.all().to_vec()
        } else {
            Vec::new()
        };
        let vps = select_vps(&self.net, n_vps, &exclude, vp_seed);
        self.campaign_from(&vps, vp_seed)
    }

    /// Runs a campaign from explicit VP routers.
    pub fn campaign_from(&self, vps: &[RouterId], seed: u64) -> CorpusBundle {
        let probe_cfg = ProbeConfig::default();
        let wp = self.worker_pool();
        let traces = probe_campaign_in_pool(&self.net, vps, &probe_cfg, &wp, &self.obs);
        let observed = observed_addresses(&traces);
        let aliases = resolve_midar_with_obs(&self.net, &observed, 0.9, seed, &self.obs);
        CorpusBundle {
            traces,
            aliases,
            vps: vps.to_vec(),
        }
    }

    /// A single in-network VP campaign for a validation network (the
    /// bdrmap regression setting of §7.1), using bdrmap's *reactive*
    /// data-collection strategy: suspicious prefixes get follow-up probes
    /// at additional addresses.
    pub fn single_vp_campaign(&self, asn: Asn, seed: u64) -> CorpusBundle {
        let vp = self.net.topology.as_routers[&asn][0];
        let probe_cfg = ProbeConfig {
            seed,
            ..ProbeConfig::default()
        };
        let traces = {
            let _span = self.obs.span(obs::names::PHASE_TRACEROUTE);
            traceroute::sim::reactive_campaign(&self.net, vp, &probe_cfg, 2)
        };
        let observed = observed_addresses(&traces);
        let aliases = resolve_midar_with_obs(&self.net, &observed, 0.9, seed, &self.obs);
        CorpusBundle {
            traces,
            aliases,
            vps: vec![vp],
        }
    }

    /// The kapar-style alias dataset for a corpus (Fig. 20): the analytic
    /// resolver's output, degraded with kapar's documented false-merge
    /// failure mode (which on the simulator's clean forwarding plane the
    /// graph analysis alone does not reproduce — see `alias` docs).
    pub fn kapar_aliases(&self, bundle: &CorpusBundle) -> AliasSets {
        let analytic = resolve_kapar(&bundle.traces, &bundle.aliases);
        alias::degrade_with_false_merges(&analytic, &bundle.traces, 0.10, self.net.cfg.seed)
    }
}

/// A traceroute corpus plus its alias data.
#[derive(Clone, Debug)]
pub struct CorpusBundle {
    /// The traces.
    pub traces: Vec<Trace>,
    /// MIDAR+iffinder-style alias sets.
    pub aliases: AliasSets,
    /// The VP routers used.
    pub vps: Vec<RouterId>,
}

/// Picks the validation networks deterministically: the first Tier-1, the
/// access network with the most customers, and the first two R&E networks.
fn pick_validation(net: &Internet) -> ValidationNetworks {
    let tier1 = net.graph.tier_members(Tier::Clique)[0];
    let accesses = net.graph.tier_members(Tier::Access);
    let large_access = accesses
        .iter()
        .copied()
        .max_by_key(|&a| {
            (
                net.graph.relationships.customers_of(a).count(),
                std::cmp::Reverse(a),
            )
        })
        .expect("at least one access network");
    let res = net.graph.tier_members(Tier::ResearchEducation);
    ValidationNetworks {
        tier1,
        large_access,
        re1: res[0],
        re2: res[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_is_deterministic() {
        let s1 = Scenario::build(GeneratorConfig::tiny(3));
        let s2 = Scenario::build(GeneratorConfig::tiny(3));
        assert_eq!(s1.validation, s2.validation);
        assert_eq!(s1.rib.prefix_count(), s2.rib.prefix_count());
        assert!(!s1.rels.is_empty());
    }

    #[test]
    fn validation_networks_are_distinct_and_typed() {
        let s = Scenario::build(GeneratorConfig::tiny(5));
        let v = s.validation;
        let all = v.all();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(s.net.graph.node(v.tier1).unwrap().tier, Tier::Clique);
        assert_eq!(s.net.graph.node(v.large_access).unwrap().tier, Tier::Access);
        assert_eq!(v.label(v.tier1), "Tier 1");
        assert_eq!(v.label(v.re2), "R&E 2");
    }

    #[test]
    fn exclusion_respected() {
        let s = Scenario::build(GeneratorConfig::tiny(7));
        let bundle = s.campaign(6, true, 1);
        for &vp in &bundle.vps {
            let owner = s.net.topology.owner(vp);
            assert!(!s.validation.all().contains(&owner));
        }
        assert!(!bundle.traces.is_empty());
    }

    #[test]
    fn single_vp_campaign_sits_inside() {
        let s = Scenario::build(GeneratorConfig::tiny(9));
        let bundle = s.single_vp_campaign(s.validation.large_access, 2);
        assert_eq!(bundle.vps.len(), 1);
        assert_eq!(
            s.net.topology.owner(bundle.vps[0]),
            s.validation.large_access
        );
    }
}
