//! Evaluation metrics.

use serde::{Deserialize, Serialize};

/// Precision / recall over a set-membership task (Figs. 16–18).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Inferences that are correct.
    pub tp: usize,
    /// Inferences that are wrong.
    pub fp: usize,
    /// Ground-truth items never inferred.
    pub fn_: usize,
}

impl PrecisionRecall {
    /// TP/(TP+FP); 1.0 when nothing was inferred (vacuous correctness).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// TP/(TP+FN); 1.0 when the truth set is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Simple accuracy (Figs. 15, 20).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Correct judgements.
    pub correct: usize,
    /// Total judgements.
    pub total: usize,
}

impl Accuracy {
    /// correct/total; 1.0 for an empty denominator.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Mean and standard error of a sample (Fig. 18's error bars).
pub fn mean_stderr(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_basic() {
        let pr = PrecisionRecall {
            tp: 8,
            fp: 2,
            fn_: 2,
        };
        assert!((pr.precision() - 0.8).abs() < 1e-12);
        assert!((pr.recall() - 0.8).abs() < 1e-12);
        assert!((pr.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn vacuous_cases() {
        let pr = PrecisionRecall::default();
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
        let acc = Accuracy::default();
        assert_eq!(acc.value(), 1.0);
    }

    #[test]
    fn stderr() {
        let (m, se) = mean_stderr(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((se - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_stderr(&[]), (0.0, 0.0));
        assert_eq!(mean_stderr(&[5.0]), (5.0, 0.0));
    }
}
