//! Diagnose relationship-inference disagreements (dev tool).

use as_rel::infer::{infer_relationships, InferenceConfig};
use topo_gen::{GeneratorConfig, Internet};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let scale = std::env::args().nth(2).unwrap_or_default();
    let cfg = if scale == "default" {
        GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        }
    } else {
        GeneratorConfig::tiny(seed)
    };
    let net = Internet::generate(cfg);
    let rib = net.build_rib();
    let paths = rib.collapsed_paths();
    let degrees = as_rel::infer::transit_degrees(&paths);
    let mut ranked: Vec<_> = degrees.iter().map(|(&a, &d)| (d, a)).collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    println!("top degrees: {:?}", &ranked[..20.min(ranked.len())]);
    let clique = as_rel::infer::infer_clique(
        &paths,
        &degrees,
        InferenceConfig::default().clique_candidates,
    );
    println!("inferred clique: {clique:?}");
    let inferred = infer_relationships(&paths, &InferenceConfig::default());
    let truth = &net.graph.relationships;
    let mut confusion: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    let mut wrong = Vec::new();
    for (a, b, rel) in inferred.iter() {
        if let Some(t) = truth.relationship(a, b) {
            *confusion
                .entry((format!("{t:?}"), format!("{rel:?}")))
                .or_insert(0) += 1;
            if t != rel {
                wrong.push((a, b, t, rel));
            }
        }
    }
    println!("confusion (truth, inferred): {confusion:#?}");
    for (a, b, t, r) in wrong.iter().take(20) {
        let (ta, tb) = (
            net.graph.node(*a).map(|n| n.tier),
            net.graph.node(*b).map(|n| n.tier),
        );
        println!("{a}({ta:?}) -- {b}({tb:?}): truth {t:?}, inferred {r:?}");
    }
    // Also: truth edges entirely absent from inference.
    let missing = truth
        .iter()
        .filter(|&(a, b, _)| !inferred.has_relationship(a, b))
        .count();
    println!(
        "truth edges missing from inference: {missing} of {}",
        truth.len()
    );
    let (agree, common) = as_rel::infer::agreement(&inferred, truth);
    println!(
        "agreement: {agree}/{common} = {:.3}",
        agree as f64 / common as f64
    );
}
