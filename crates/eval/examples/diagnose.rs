//! Diagnostic dump for the internet-wide experiment (dev tool).

use eval::experiments::run_bdrmapit;
use eval::truth::{bdrmapit_pairs, mapit_pairs, true_pairs_of, visible_pairs};
use eval::Scenario;
use topo_gen::GeneratorConfig;

fn main() {
    let s = Scenario::build(GeneratorConfig::tiny(1604));
    if std::env::args().nth(1).as_deref() == Some("abl") {
        let ab = eval::experiments::heuristics::ablation(&s, 6, 17);
        println!("{}", ab.render());
        let st = eval::experiments::stats::corpus_stats(&s, &s.campaign(8, true, 4));
        println!("{}", st.render());
        let wide = eval::experiments::internet_wide::run(&s, 8, 22);
        println!("{}", wide.render());
        // Which Internet-wide visible pairs does the full config miss?
        let bundle = s.campaign(6, true, 17);
        let result = run_bdrmapit(&s, &bundle, bdrmapit_core::Config::default());
        let pairs = bdrmapit_pairs(&result, None, true);
        let visible = eval::truth::visible_pairs_all(&s.net, &bundle.traces, true);
        for p in visible.difference(&pairs) {
            let fw_a = s.net.is_firewalled(p.0);
            let fw_b = s.net.is_firewalled(p.1);
            println!("missed {p:?} fw=({fw_a},{fw_b})");
        }
        let no_lh = run_bdrmapit(
            &s,
            &bundle,
            bdrmapit_core::Config {
                enable_last_hop: false,
                ..Default::default()
            },
        );
        let pairs_nl = bdrmapit_pairs(&no_lh, None, true);
        println!(
            "full-only pairs: {:?}",
            pairs.difference(&pairs_nl).collect::<Vec<_>>()
        );
        println!(
            "nl-only pairs: {:?}",
            pairs_nl.difference(&pairs).collect::<Vec<_>>()
        );
        // Firewalled stub census.
        use std::collections::BTreeSet;
        let mut fw_even = Vec::new();
        let mut fw_odd = Vec::new();
        for n in s.net.graph.nodes.values() {
            if n.firewalled {
                if n.asn.0 % 2 == 0 {
                    fw_even.push(n.asn);
                } else {
                    fw_odd.push(n.asn);
                }
            }
        }
        println!("firewalled even: {fw_even:?}\nfirewalled odd: {fw_odd:?}");
        let mut seen_owner: BTreeSet<net_types::Asn> = BTreeSet::new();
        for t in &bundle.traces {
            for (_, h) in t.responsive() {
                if let Some(i) = s.net.topology.iface_by_addr(h.addr) {
                    seen_owner.insert(s.net.topology.owner(i.router));
                }
            }
        }
        for &f in fw_even.iter().chain(&fw_odd) {
            println!("{f}: router observed = {}", seen_owner.contains(&f));
        }
        return;
    }
    let bundle = s.campaign(8, true, 22);
    println!("traces: {}", bundle.traces.len());

    let result = run_bdrmapit(&s, &bundle, bdrmapit_core::Config::default());
    println!("iterations: {}", result.state.iterations);
    println!("label dist: {:?}", result.graph.label_distribution());
    println!(
        "irs: {} (last-hop {}), ifaces {}",
        result.graph.irs.len(),
        result.graph.last_hop_irs().count(),
        result.graph.iface_addrs.len()
    );

    let mut mp = mapit::Mapit::build(&bundle.traces, &s.ip2as);
    mp.run(&mapit::MapitConfig::default());
    let mp_links = mp.links();

    for asn in s.validation.all() {
        let truth_all = true_pairs_of(&s.net, asn);
        let visible = visible_pairs(&s.net, &bundle.traces, asn, true);
        let it_pairs = bdrmapit_pairs(&result, Some(asn), true);
        let mp_pairs = mapit_pairs(&mp_links, Some(asn));
        println!(
            "\n== {} ({asn}) truth_all={} visible={} it_inferred={} mp_inferred={}",
            s.validation.label(asn),
            truth_all.len(),
            visible.len(),
            it_pairs.len(),
            mp_pairs.len()
        );
        let missed: Vec<_> = visible.difference(&it_pairs).collect();
        println!("it missed {} visible pairs:", missed.len());
        for &&(a, b) in missed.iter().take(12) {
            // Inspect the annotations on the true links of this pair.
            let mut info = String::new();
            for l in s.net.true_links() {
                if eval::truth::pair(l.as_a, l.as_b) == (a, b) {
                    let oa = result.owner_of_addr(l.addr_a);
                    let ob = result.owner_of_addr(l.addr_b);
                    let ia = result
                        .graph
                        .iface_of_addr(l.addr_a)
                        .map(|i| result.state.iface[i.0 as usize]);
                    let ib = result
                        .graph
                        .iface_of_addr(l.addr_b)
                        .map(|i| result.state.iface[i.0 as usize]);
                    info.push_str(&format!(
                        " [link {}({}) r={:?} i={:?} -- {}({}) r={:?} i={:?}]",
                        net_types::format_ipv4(l.addr_a),
                        l.as_a,
                        oa,
                        ia,
                        net_types::format_ipv4(l.addr_b),
                        l.as_b,
                        ob,
                        ib
                    ));
                }
            }
            println!("  ({a}, {b}){info}");
        }
        let fp: Vec<_> = it_pairs.difference(&truth_all).collect();
        println!("it false pairs: {fp:?}");
    }
}
// (appended) — run `cargo run -p eval --example diagnose abl` for ablations
