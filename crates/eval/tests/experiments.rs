//! The paper-shape assertions: every figure's qualitative claim must hold
//! on the synthetic Internet. Absolute numbers differ from the paper (our
//! substrate is a simulator, not the authors' testbed); who wins, and
//! roughly how, must not.

use eval::experiments::{aliases, heuristics, internet_wide, single_vp, stats, vps};
use eval::Scenario;
use topo_gen::GeneratorConfig;

fn scenario() -> Scenario {
    Scenario::build(GeneratorConfig::tiny(1604))
}

#[test]
fn fig15_bdrmapit_at_least_as_accurate_as_bdrmap() {
    let s = scenario();
    let fig = single_vp::fig15(&s, 15);
    assert_eq!(fig.rows.len(), 4);
    let mut it_sum = 0.0;
    let mut bm_sum = 0.0;
    for row in &fig.rows {
        assert!(
            row.bdrmapit >= 0.6,
            "{}: bdrmapIT single-VP accuracy {:.3} too low",
            row.network,
            row.bdrmapit
        );
        // detlint::allow(float-accum): sequential fold over a Vec in its
        // fixed row order — one addition order, same result every run
        it_sum += row.bdrmapit;
        // detlint::allow(float-accum): same fixed-order fold as above
        bm_sum += row.bdrmap;
    }
    assert!(
        it_sum >= bm_sum - 0.05,
        "bdrmapIT ({it_sum:.3}) regressed against bdrmap ({bm_sum:.3}) on aggregate"
    );
    let rendered = fig.render();
    assert!(rendered.contains("Fig. 15"));
    assert!(rendered.contains("Tier 1"));
}

#[test]
fn fig16_bdrmapit_outrecalls_mapit_at_comparable_precision() {
    let s = scenario();
    let wide = internet_wide::run(&s, 8, 22);
    assert_eq!(wide.fig16.len(), 4);
    let mut it_recall = 0.0;
    let mut mp_recall = 0.0;
    for row in &wide.fig16 {
        // detlint::allow(float-accum): sequential fold over a Vec in its
        // fixed row order — one addition order, same result every run
        it_recall += row.bdrmapit.recall();
        // detlint::allow(float-accum): same fixed-order fold as above
        mp_recall += row.mapit.recall();
        assert!(
            row.bdrmapit.precision() >= 0.7,
            "{}: precision {:.3} too low",
            row.network,
            row.bdrmapit.precision()
        );
    }
    // The paper's headline: "vastly better recall".
    assert!(
        it_recall > mp_recall + 0.5,
        "bdrmapIT recall {it_recall:.3} not clearly above MAP-IT {mp_recall:.3} (sum over 4 networks)"
    );
    assert!(wide.render().contains("Fig. 17"));
}

#[test]
fn fig17_mid_path_recall_still_better() {
    let s = scenario();
    let wide = internet_wide::run(&s, 8, 22);
    let it: f64 = wide.fig17.iter().map(|r| r.bdrmapit.recall()).sum();
    let mp: f64 = wide.fig17.iter().map(|r| r.mapit.recall()).sum();
    assert!(
        it >= mp,
        "mid-path recall: bdrmapIT {it:.3} below MAP-IT {mp:.3}"
    );
}

#[test]
fn fig18_accuracy_does_not_collapse_with_fewer_vps() {
    let s = scenario();
    let sweep = vps::sweep(&s, &[3, 6, 9], 3, 7);
    assert_eq!(sweep.cells.len(), 3 * 4);
    // Average precision at the smallest group must be within 0.1 of the
    // largest group — the paper's flat-accuracy claim.
    let avg = |vps: usize, f: &dyn Fn(&vps::SweepCell) -> f64| -> f64 {
        let cells: Vec<&vps::SweepCell> = sweep.cells.iter().filter(|c| c.vps == vps).collect();
        cells.iter().map(|c| f(c)).sum::<f64>() / cells.len() as f64
    };
    let p_small = avg(3, &|c| c.precision_mean);
    let p_large = avg(9, &|c| c.precision_mean);
    assert!(
        (p_small - p_large).abs() < 0.15,
        "precision shifts with VPs: {p_small:.3} vs {p_large:.3}"
    );
    let r_small = avg(3, &|c| c.recall_mean);
    let r_large = avg(9, &|c| c.recall_mean);
    assert!(
        (r_small - r_large).abs() < 0.2,
        "recall shifts with VPs: {r_small:.3} vs {r_large:.3}"
    );
    // Fig. 19: link visibility *does* grow with more VPs.
    let v_small = avg(3, &|c| c.visible_frac_mean);
    let v_large = avg(9, &|c| c.visible_frac_mean);
    assert!(
        v_large >= v_small,
        "visibility should grow with VPs: {v_small:.3} vs {v_large:.3}"
    );
    assert!(sweep.render().contains("Figs. 18 & 19"));
}

#[test]
fn fig20_kapar_hurts_midar_does_not() {
    let s = scenario();
    let impact = aliases::fig20(&s, 8, 31);
    // kapar's pair precision is the over-merge mechanism; it must be worse
    // than midar's (which is perfect by construction).
    assert!(impact.midar_pair_precision >= 0.999);
    assert!(
        impact.kapar_pair_precision <= impact.midar_pair_precision,
        "kapar should over-merge"
    );
    // §7.4: with and without aliases the overall accuracy is nearly equal.
    let delta = (impact.overall_midar.value() - impact.overall_none.value()).abs();
    assert!(
        delta < 0.05,
        "no-alias accuracy delta {delta:.4} too large (paper: <0.001)"
    );
    // Fig. 20's shape: averaged over networks, kapar accuracy does not beat
    // midar accuracy.
    let midar_avg: f64 = impact.rows.iter().map(|r| r.midar.value()).sum::<f64>() / 4.0;
    let kapar_avg: f64 = impact.rows.iter().map(|r| r.kapar.value()).sum::<f64>() / 4.0;
    assert!(
        kapar_avg <= midar_avg + 0.05,
        "kapar accuracy {kapar_avg:.3} should not beat midar {midar_avg:.3}"
    );
    assert!(impact.render().contains("Fig. 20"));
}

#[test]
fn ablations_full_config_is_best_or_close() {
    let s = scenario();
    let ab = heuristics::ablation(&s, 6, 17);
    assert_eq!(ab.rows.len(), 7);
    let full = &ab.rows[0];
    assert_eq!(full.variant, "full");
    // Disabling the last-hop heuristic must cost recall (the paper's
    // largest single contribution).
    let no_last = ab
        .rows
        .iter()
        .find(|r| r.variant == "no-last-hop")
        .expect("variant exists");
    assert!(
        no_last.score.recall() < full.score.recall(),
        "last-hop heuristic contributed nothing: {:.3} vs {:.3}",
        no_last.score.recall(),
        full.score.recall()
    );
    assert!(ab.render().contains("Ablations"));
}

#[test]
fn corpus_stats_match_paper_shape() {
    let s = scenario();
    let bundle = s.campaign(8, true, 4);
    let st = stats::corpus_stats(&s, &bundle);
    // Nexthop links dominate. (The paper reports 96.4%; the tiny test
    // topology has few routers per AS, so distinct N links are scarce
    // relative to echo destinations — the plurality claim is the
    // scale-independent shape. See EXPERIMENTS.md for full-scale numbers.)
    assert!(
        st.nexthop_frac() > 0.45,
        "nexthop share {:.3} too low",
        st.nexthop_frac()
    );
    assert!(st.nexthop > st.echo, "N must outnumber E");
    assert!(st.nexthop > st.multihop, "N must outnumber M");
    // Most IRs are last-hop-only.
    assert!(
        st.last_hop_frac() > 0.5,
        "last-hop share {:.3} too low",
        st.last_hop_frac()
    );
    // Nearly every observed interface resolves to an AS.
    let resolved = st.resolved_interfaces as f64 / st.interfaces as f64;
    assert!(resolved > 0.95, "only {resolved:.3} resolved");
    assert!(st.render().contains("Table 3"));
}
