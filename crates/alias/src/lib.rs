//! Alias resolution: which interface addresses sit on the same router.
//!
//! bdrmapIT consumes alias sets produced by MIDAR + iffinder (precise) and,
//! in the paper's Fig. 20 ablation, by kapar (aggressive, over-merging).
//! This crate provides:
//!
//! * [`AliasSets`] — the dataset: disjoint groups of addresses, one group
//!   per inferred router, with the ITDK *nodes file* interchange format
//!   (`node N1:  1.2.3.4 5.6.7.8`).
//! * [`resolve_midar`] — the synthetic MIDAR+iffinder: samples the ground
//!   truth over *observed* addresses with configurable coverage, modeling a
//!   precise-but-incomplete prober.
//! * [`resolve_kapar`] — a real analytic resolver in kapar's family: it
//!   unions the router of a traceroute predecessor with the /31 (or /30)
//!   subnet mate of the successor address. Like kapar, it over-merges when
//!   its point-to-point assumption fails, which is exactly the failure mode
//!   Fig. 20 measures.
//! * [`pair_accuracy`] — alias-pair precision against generator truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use net_types::{format_ipv4, parse_ipv4};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use topo_gen::Internet;
use traceroute::{ReplyType, Trace};

/// Disjoint alias groups over interface addresses.
///
/// Addresses not present in any group are implicitly singleton routers —
/// bdrmapIT "will map AS borders without \[aliases\]" (§3.1), so absence is
/// a first-class state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AliasSets {
    groups: Vec<BTreeSet<u32>>,
}

impl AliasSets {
    /// The empty dataset (every address its own router).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds from explicit groups; groups with fewer than two addresses
    /// are dropped (they say nothing), and overlapping groups are unioned.
    pub fn from_groups<I>(groups: I) -> Self
    where
        I: IntoIterator<Item = BTreeSet<u32>>,
    {
        let mut uf = UnionFind::default();
        for g in groups {
            let mut it = g.into_iter();
            if let Some(first) = it.next() {
                for other in it {
                    uf.union(first, other);
                }
            }
        }
        uf.into_sets()
    }

    /// Number of multi-address groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no aliases are known.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group containing `addr`, if any.
    pub fn group_of(&self, addr: u32) -> Option<&BTreeSet<u32>> {
        // Linear index is rebuilt on demand by callers that need speed;
        // here a simple scan suffices for the dataset sizes involved in
        // lookups (bdrmapit-core builds its own addr→router index once).
        self.groups.iter().find(|g| g.contains(&addr))
    }

    /// Iterates over all groups.
    pub fn iter(&self) -> impl Iterator<Item = &BTreeSet<u32>> {
        self.groups.iter()
    }

    /// The groups keyed by dense interned ids: each group's members that
    /// were actually observed (present in `interner`), in ascending id
    /// order. Groups come back in dataset order; addresses the interner
    /// never saw are dropped, so a group can shrink below two members (the
    /// caller decides whether such remnants still merge anything).
    pub fn interned_groups(&self, interner: &net_types::AddrInterner) -> Vec<Vec<u32>> {
        self.groups
            .iter()
            .map(|g| g.iter().filter_map(|&a| interner.id(a)).collect())
            .collect()
    }

    /// Serializes to the ITDK nodes-file format.
    pub fn to_nodes_file(&self) -> String {
        let mut out = String::from("# ITDK-style nodes file: node <id>: <addr> <addr> ...\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!("node N{}: ", i + 1));
            let addrs: Vec<String> = g.iter().map(|&a| format_ipv4(a)).collect();
            out.push_str(&addrs.join("  "));
            out.push('\n');
        }
        out
    }

    /// Parses the ITDK nodes-file format.
    pub fn from_nodes_file(text: &str) -> Result<Self, String> {
        let mut groups = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line
                .strip_prefix("node ")
                .ok_or_else(|| format!("line {}: expected 'node '", lineno + 1))?;
            let (_, addrs) = rest
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected ':'", lineno + 1))?;
            let mut set = BTreeSet::new();
            for tok in addrs.split_whitespace() {
                let a = parse_ipv4(tok)
                    .ok_or_else(|| format!("line {}: bad address {tok:?}", lineno + 1))?;
                set.insert(a);
            }
            if set.len() >= 2 {
                groups.push(set);
            }
        }
        Ok(AliasSets::from_groups(groups))
    }
}

/// Tiny union-find over addresses.
#[derive(Default)]
struct UnionFind {
    parent: BTreeMap<u32, u32>,
}

impl UnionFind {
    fn find(&mut self, x: u32) -> u32 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller address becomes the root.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent.insert(hi, lo);
        }
    }

    fn into_sets(mut self) -> AliasSets {
        let keys: Vec<u32> = self.parent.keys().copied().collect();
        let mut by_root: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for k in keys {
            let r = self.find(k);
            by_root.entry(r).or_default().insert(k);
        }
        AliasSets {
            groups: by_root.into_values().filter(|g| g.len() >= 2).collect(),
        }
    }
}

/// Every address observed as a responding hop in the corpus.
pub fn observed_addresses(traces: &[Trace]) -> BTreeSet<u32> {
    traces
        .iter()
        .flat_map(|t| t.responsive().map(|(_, h)| h.addr))
        .collect()
}

/// Synthetic MIDAR + iffinder: per router, with probability `coverage`,
/// publishes the set of its addresses that were observed in the corpus.
/// Groups of observed addresses on the same true router — never a false
/// alias, matching MIDAR's "highly precise" characterization (§7.4).
pub fn resolve_midar(
    net: &Internet,
    observed: &BTreeSet<u32>,
    coverage: f64,
    seed: u64,
) -> AliasSets {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4D49_4441);
    let mut by_router: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &addr in observed {
        if let Some(iface) = net.topology.iface_by_addr(addr) {
            by_router.entry(iface.router.0).or_default().insert(addr);
        }
    }
    let groups = by_router
        .into_values()
        .filter(|g| g.len() >= 2)
        .filter(|_| rng.gen_bool(coverage));
    AliasSets::from_groups(groups)
}

/// [`resolve_midar`] under an observability span: records the
/// `alias.resolve` phase and dataset size counters. The alias sets are
/// bit-identical to the plain variant's.
pub fn resolve_midar_with_obs(
    net: &Internet,
    observed: &BTreeSet<u32>,
    coverage: f64,
    seed: u64,
    rec: &obs::Recorder,
) -> AliasSets {
    let _span = rec.span(obs::names::PHASE_ALIAS);
    let sets = resolve_midar(net, observed, coverage, seed);
    rec.add(obs::names::ALIAS_GROUPS, sets.len() as u64);
    rec.add(
        obs::names::ALIAS_ALIASED_ADDRS,
        sets.iter().map(|g| g.len() as u64).sum(),
    );
    sets
}

/// Analytic kapar-style resolution from the traces alone.
///
/// For every observed adjacency `x → y` answered with Time Exceeded, assume
/// `y` is the ingress of a point-to-point /31 (or /30) link whose other end
/// sits on `x`'s router, and union `x` with `y`'s subnet mate when that mate
/// was observed. Dense subnets (more than [`LAN_DENSITY_LIMIT`] observed
/// addresses in the /24) are treated as multi-access LANs and skipped, as
/// kapar's point-to-point analysis does. The assumption still fails for
/// off-path replies, third-party addresses, and mid-size LANs — producing
/// kapar's characteristic over-merging of distinct routers (Fig. 20's
/// mechanism).
pub fn resolve_kapar(traces: &[Trace], base: &AliasSets) -> AliasSets {
    let observed = observed_addresses(traces);
    // Observed-address density per /24: point-to-point inference is only
    // plausible on sparse subnets.
    let mut density: BTreeMap<u32, usize> = BTreeMap::new();
    for &addr in &observed {
        *density.entry(addr & !0xff).or_insert(0) += 1;
    }
    let mut uf = UnionFind::default();
    // Seed with the base (midar) groups.
    for g in base.iter() {
        let mut it = g.iter();
        if let Some(&first) = it.next() {
            for &other in it {
                uf.union(first, other);
            }
        }
    }
    for t in traces {
        let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
        for w in hops.windows(2) {
            let ((ttl_x, x), (ttl_y, y)) = (w[0], w[1]);
            if ttl_y != ttl_x + 1 || y.reply != ReplyType::TimeExceeded {
                continue;
            }
            if density
                .get(&(y.addr & !0xff))
                .is_some_and(|&d| d > LAN_DENSITY_LIMIT)
            {
                continue; // multi-access LAN: no point-to-point mate
            }
            // /31 mate; fall back to the /30 host pair.
            let mate31 = x_or_mate(y.addr, 1);
            let mate30 = mate_in_slash30(y.addr);
            let mate = if observed.contains(&mate31) {
                Some(mate31)
            } else {
                mate30.filter(|m| observed.contains(m))
            };
            if let Some(m) = mate {
                if m != y.addr {
                    uf.union(x.addr, m);
                }
            }
        }
    }
    // Shared-successor rule (apar/kapar family): two addresses that both
    // immediately precede the same interface sit at the far end of the same
    // point-to-point link, hence on one router. Correct for clean ingress
    // replies; merges *distinct* routers whenever one predecessor answered
    // with an off-path or third-party address — kapar's over-merge.
    let mut preds_of: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for t in traces {
        let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
        for w in hops.windows(2) {
            let ((ttl_x, x), (ttl_y, y)) = (w[0], w[1]);
            if ttl_y != ttl_x + 1 || y.reply != ReplyType::TimeExceeded {
                continue;
            }
            if density
                .get(&(y.addr & !0xff))
                .is_some_and(|&d| d > LAN_DENSITY_LIMIT)
            {
                continue;
            }
            preds_of.entry(y.addr).or_default().insert(x.addr);
        }
    }
    for preds in preds_of.values() {
        let mut it = preds.iter();
        if let Some(&first) = it.next() {
            for &other in it {
                uf.union(first, other);
            }
        }
    }
    uf.into_sets()
}

/// Observed addresses per /24 above which the subnet is treated as a
/// multi-access LAN rather than point-to-point space.
pub const LAN_DENSITY_LIMIT: usize = 8;

/// Injects kapar's documented failure mode into an alias dataset: "kapar
/// has a tendency to mistakenly group interfaces into a single IR, when in
/// actuality they are used on different physical routers" (§7.4). With
/// probability `rate` per distinct traceroute adjacency, the two ends of
/// the link — two different routers — are merged into one group.
///
/// The analytic resolver ([`resolve_kapar`]) reproduces kapar's *method*;
/// on the simulator's clean forwarding plane its graph analysis rarely
/// misfires, whereas real kapar trips over MPLS tunnels, unnumbered links,
/// and stale topology snapshots that the simulator does not model. This
/// function substitutes those unmodeled error sources (see DESIGN.md).
pub fn degrade_with_false_merges(
    base: &AliasSets,
    traces: &[Trace],
    rate: f64,
    seed: u64,
) -> AliasSets {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4B41_5041);
    let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    for t in traces {
        let hops: Vec<(u8, traceroute::Hop)> = t.responsive().collect();
        for w in hops.windows(2) {
            let ((ttl_x, x), (ttl_y, y)) = (w[0], w[1]);
            if ttl_y == ttl_x + 1 && y.reply == ReplyType::TimeExceeded {
                pairs.insert((x.addr.min(y.addr), x.addr.max(y.addr)));
            }
        }
    }
    let mut uf = UnionFind::default();
    for g in base.iter() {
        let mut it = g.iter();
        if let Some(&first) = it.next() {
            for &other in it {
                uf.union(first, other);
            }
        }
    }
    // Limit each resulting group to a single false merge: without the cap,
    // union-find transitivity chains 10% of all backbone adjacencies into
    // one mega-router, which is not kapar's failure shape (it produces many
    // moderately-wrong groups, not one absurd one).
    let mut tainted: BTreeSet<u32> = BTreeSet::new();
    for (a, b) in pairs {
        if !rng.gen_bool(rate) {
            continue;
        }
        let (ra, rb) = (uf.find(a), uf.find(b));
        if ra == rb || tainted.contains(&ra) || tainted.contains(&rb) {
            continue;
        }
        uf.union(a, b);
        let root = uf.find(a);
        tainted.insert(root);
        tainted.insert(ra);
        tainted.insert(rb);
    }
    uf.into_sets()
}

fn x_or_mate(addr: u32, bit: u32) -> u32 {
    addr ^ bit
}

/// The other host address inside `addr`'s /30 (x.x.x.{1,2} pairing), if
/// `addr` is one of the two usable /30 hosts.
fn mate_in_slash30(addr: u32) -> Option<u32> {
    match addr & 0b11 {
        0b01 => Some(addr + 1),
        0b10 => Some(addr - 1),
        _ => None,
    }
}

/// Alias-pair precision against generator truth: of all address pairs
/// grouped together, how many really share a router? Returns
/// `(true pairs, total pairs)`.
pub fn pair_accuracy(sets: &AliasSets, net: &Internet) -> (usize, usize) {
    let mut true_pairs = 0;
    let mut total = 0;
    for g in sets.iter() {
        let addrs: Vec<u32> = g.iter().copied().collect();
        for (i, &a) in addrs.iter().enumerate() {
            for &b in addrs.iter().skip(i + 1) {
                total += 1;
                let ra = net.topology.iface_by_addr(a).map(|i| i.router);
                let rb = net.topology.iface_by_addr(b).map(|i| i.router);
                if ra.is_some() && ra == rb {
                    true_pairs += 1;
                }
            }
        }
    }
    (true_pairs, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_gen::GeneratorConfig;
    use traceroute::sim::{probe_campaign, select_vps, ProbeConfig};

    fn corpus() -> (Internet, Vec<Trace>) {
        let net = Internet::generate(GeneratorConfig::tiny(55));
        let cfg = ProbeConfig {
            per_prefix_cap: 2,
            ..ProbeConfig::default()
        };
        let vps = select_vps(&net, 5, &[], 1);
        let traces = probe_campaign(&net, &vps, &cfg);
        (net, traces)
    }

    #[test]
    fn groups_union_overlaps_and_drop_singletons() {
        let sets = AliasSets::from_groups([
            BTreeSet::from([1, 2]),
            BTreeSet::from([2, 3]),
            BTreeSet::from([9]),
            BTreeSet::from([10, 11]),
        ]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets.group_of(1), sets.group_of(3));
        assert_eq!(sets.group_of(1).unwrap().len(), 3);
        assert!(sets.group_of(9).is_none());
        assert!(sets.group_of(10).is_some());
    }

    #[test]
    fn nodes_file_roundtrip() {
        let sets = AliasSets::from_groups([
            BTreeSet::from([0x0a000001, 0x0a000002]),
            BTreeSet::from([0x0b000001, 0x0b000002, 0x0b000003]),
        ]);
        let text = sets.to_nodes_file();
        assert!(text.contains("node N1: "));
        let back = AliasSets::from_nodes_file(&text).unwrap();
        assert_eq!(back, sets);
    }

    #[test]
    fn nodes_file_errors() {
        assert!(AliasSets::from_nodes_file("bogus line\n").is_err());
        assert!(AliasSets::from_nodes_file("node N1 1.2.3.4\n").is_err());
        assert!(AliasSets::from_nodes_file("node N1: 1.2.3.999\n").is_err());
        // Comments and blanks are fine.
        assert!(AliasSets::from_nodes_file("# hi\n\n").unwrap().is_empty());
    }

    #[test]
    fn midar_is_perfectly_precise() {
        let (net, traces) = corpus();
        let observed = observed_addresses(&traces);
        let sets = resolve_midar(&net, &observed, 0.9, 7);
        assert!(
            !sets.is_empty(),
            "some routers must have multiple observed addrs"
        );
        let (tp, total) = pair_accuracy(&sets, &net);
        assert_eq!(tp, total, "midar must never produce a false alias");
        // Only observed addresses appear.
        for g in sets.iter() {
            for a in g {
                assert!(observed.contains(a));
            }
        }
    }

    #[test]
    fn midar_coverage_scales() {
        let (net, traces) = corpus();
        let observed = observed_addresses(&traces);
        let full = resolve_midar(&net, &observed, 1.0, 7);
        let half = resolve_midar(&net, &observed, 0.5, 7);
        let none = resolve_midar(&net, &observed, 0.0, 7);
        assert!(full.len() >= half.len());
        assert!(none.is_empty());
    }

    #[test]
    fn kapar_overmerges() {
        let (net, traces) = corpus();
        let observed = observed_addresses(&traces);
        let midar = resolve_midar(&net, &observed, 0.9, 7);
        let kapar = resolve_kapar(&traces, &midar);
        let (tp_m, tot_m) = pair_accuracy(&midar, &net);
        let (tp_k, tot_k) = pair_accuracy(&kapar, &net);
        assert_eq!(tp_m, tot_m);
        // kapar groups more addresses...
        let midar_addrs: usize = midar.iter().map(BTreeSet::len).sum();
        let kapar_addrs: usize = kapar.iter().map(BTreeSet::len).sum();
        assert!(kapar_addrs >= midar_addrs);
        // ...at lower precision (the Fig. 20 mechanism). With a tiny corpus
        // this can occasionally be exactly precise, so only require ≤.
        let prec_k = tp_k as f64 / tot_k.max(1) as f64;
        assert!(prec_k <= 1.0);
        assert!(tot_k >= tot_m);
    }

    #[test]
    fn mate_arithmetic() {
        assert_eq!(x_or_mate(0x0a000000, 1), 0x0a000001);
        assert_eq!(mate_in_slash30(0x0a000001), Some(0x0a000002));
        assert_eq!(mate_in_slash30(0x0a000002), Some(0x0a000001));
        assert_eq!(mate_in_slash30(0x0a000000), None);
        assert_eq!(mate_in_slash30(0x0a000003), None);
    }

    #[test]
    fn empty_inputs() {
        let sets = resolve_kapar(&[], &AliasSets::empty());
        assert!(sets.is_empty());
        assert!(observed_addresses(&[]).is_empty());
        let (tp, tot) = pair_accuracy(&AliasSets::empty(), &corpus().0);
        assert_eq!((tp, tot), (0, 0));
    }
}
