//! The churn determinism contract, adversarially: random schedules at every
//! supported thread count, with observability on and off, must produce
//! byte-identical snapshots at every epoch — and the default schedule's
//! final snapshot is pinned to a golden fingerprint so silent drift in any
//! upstream phase fails loudly.
//!
//! (Each `run_churn` call already proves incremental == full internally by
//! recomputing every epoch from scratch and comparing snapshot bytes; these
//! tests add the cross-configuration axis on top.)

use churn::{run_churn, ChurnOptions};
use proptest::prelude::*;
use topo_gen::GeneratorConfig;
use traceroute::sim::ProbeConfig;

fn tiny_opts(epochs: usize, threads: usize, seed: u64) -> ChurnOptions {
    ChurnOptions {
        probe: ProbeConfig {
            per_prefix_cap: 2,
            ..ProbeConfig::default()
        },
        ..ChurnOptions::new(epochs, 4, threads, seed)
    }
}

/// Runs the churn loop and returns the per-epoch snapshot bytes.
fn snapshots(seed: u64, threads: usize, obs_on: bool) -> Vec<Vec<u8>> {
    let rec = if obs_on {
        obs::Recorder::new(false)
    } else {
        obs::Recorder::disabled()
    };
    let run = run_churn(
        GeneratorConfig::tiny(seed),
        &tiny_opts(3, threads, seed),
        &rec,
    )
    .expect("churn run succeeds");
    run.epochs.into_iter().map(|e| e.snapshot).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Sweeping random schedule seeds: threads 1/2/8 × obs on/off all
    /// produce the same snapshot bytes at every epoch.
    #[test]
    fn snapshots_identical_across_threads_and_obs(seed in 0u64..1000) {
        let reference = snapshots(seed, 1, false);
        prop_assert_eq!(reference.len(), 4);
        for threads in [1usize, 2, 8] {
            for obs_on in [false, true] {
                if threads == 1 && !obs_on {
                    continue;
                }
                let other = snapshots(seed, threads, obs_on);
                prop_assert_eq!(
                    &reference,
                    &other,
                    "snapshots diverged at threads={} obs={}",
                    threads,
                    obs_on
                );
            }
        }
    }
}

/// The default schedule's final snapshot, pinned. If any upstream phase
/// (generator, probing, alias resolution, refinement, codec) changes its
/// output for the default seed, this fingerprint moves and the change must
/// be acknowledged here.
#[test]
fn default_schedule_golden_fingerprint() {
    let snaps = snapshots(2018, 2, false);
    let last = snaps.last().expect("at least the baseline epoch");
    assert_eq!(
        snapshot::fnv1a64(last),
        0x7f26_03b9_ae8d_6b36,
        "final-epoch snapshot fingerprint drifted"
    );
}
