//! The churn driver: steps a schedule epoch by epoch, re-probing only the
//! dirty `(vp, dst)` pairs and re-converging only the dirty refinement
//! shards, and proves every epoch's output byte-identical to a full
//! recompute.
//!
//! # Incremental machinery
//!
//! Two caches persist across epochs:
//!
//! * the **pair cache** maps each `(vp, dst)` pair to its last trace and
//!   the set of ASes that measurement depends on
//!   ([`traversed_ases`]). After an epoch's events, a pair is *dirty* —
//!   re-probed — iff interdomain routing changed, the pair is new to the
//!   probe matrix, or its AS set intersects the events' touched set;
//!   everything else replays its cached trace verbatim (the traceroute
//!   crate's untouched-pairs contract test backs this).
//! * the **shard cache** ([`ShardCache`]) replays converged refinement
//!   outcomes for shards whose fingerprint is unchanged; see
//!   [`refine_incremental`].
//!
//! # Verification
//!
//! Every epoch the driver *also* runs the naive path — full campaign, full
//! [`Bdrmapit::run`] — freezes both results into `bdrmapit.snapshot/v1`
//! bytes, and aborts unless they are identical. The per-epoch cost gap
//! (probes + shards converged) is what `bdrmapit.bench-churn/v1` reports.

use crate::bench::{report_delta, EpochCost};
use crate::schedule::ChurnSchedule;
use alias::{observed_addresses, resolve_midar, resolve_midar_with_obs};
use as_rel::infer::{infer_relationships, InferenceConfig};
use as_rel::CustomerCones;
use bdrmapit_core::refine::{refine_incremental, ShardCache};
use bdrmapit_core::Bdrmapit;
use bdrmapit_core::{lasthop, Annotated, AnnotationState, Config, IrGraph};
use bgp::IpToAs;
use net_types::Asn;
use obs::names;
use obs::Clock as _;
use obs::RunReport;
use snapshot::SnapshotData;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use topo_gen::{GeneratorConfig, Internet};
use traceroute::sim::{
    destinations, probe_campaign_in_pool, probe_pairs_in_pool, select_vps, traversed_ases,
    ProbeConfig,
};
use traceroute::Trace;

/// Knobs for one churn run.
#[derive(Clone, Debug)]
pub struct ChurnOptions {
    /// Churn epochs after the baseline (the run produces `epochs + 1`
    /// snapshots).
    pub epochs: usize,
    /// Vantage points, selected once at the baseline and fixed thereafter.
    pub vps: usize,
    /// Worker threads for both paths (0 = all cores). Snapshots are
    /// byte-identical for every value.
    pub threads: usize,
    /// Topology, schedule, VP-selection, and alias seed.
    pub seed: u64,
    /// Probe campaign configuration (shared by both paths).
    pub probe: ProbeConfig,
    /// Inference configuration; `threads` is overridden from
    /// [`ChurnOptions::threads`].
    pub core: Config,
}

impl ChurnOptions {
    /// Defaults for a run: standard probe and inference configuration.
    pub fn new(epochs: usize, vps: usize, threads: usize, seed: u64) -> ChurnOptions {
        ChurnOptions {
            epochs,
            vps,
            threads,
            seed,
            probe: ProbeConfig::default(),
            core: Config::default(),
        }
    }
}

/// What one epoch produced.
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Epoch index (0 = baseline).
    pub epoch: usize,
    /// Scheduled events, described (applied and skipped alike).
    pub events: Vec<String>,
    /// Events applied.
    pub applied: usize,
    /// Events refused at apply time.
    pub skipped: usize,
    /// Whether interdomain routing changed this epoch.
    pub rib_changed: bool,
    /// Pairs re-probed.
    pub dirty_pairs: usize,
    /// Pairs in the epoch's probe matrix.
    pub total_pairs: usize,
    /// Shards re-converged.
    pub dirty_shards: usize,
    /// Shards in the epoch's plan.
    pub total_shards: usize,
    /// Incremental-path cost.
    pub incremental: EpochCost,
    /// Full-recompute cost.
    pub full: EpochCost,
    /// The epoch's `bdrmapit.snapshot/v1` bytes (identical on both paths).
    pub snapshot: Vec<u8>,
    /// The epoch's slice of the session recorder (see
    /// [`report_delta`]).
    pub report: RunReport,
}

/// A completed churn run.
#[derive(Clone, Debug)]
pub struct ChurnRun {
    /// Per-epoch outcomes, baseline first.
    pub epochs: Vec<EpochOutcome>,
    /// The schedule that was executed.
    pub schedule: ChurnSchedule,
}

/// A cached measurement for one `(vp, dst)` pair.
struct PairInfo {
    trace: Trace,
    ases: BTreeSet<Asn>,
}

/// Milliseconds elapsed since `start_nanos` on `clock`.
#[allow(clippy::cast_precision_loss)]
fn elapsed_ms(clock: &obs::MonotonicClock, start_nanos: u64) -> f64 {
    clock.now_nanos().saturating_sub(start_nanos) as f64 / 1e6
}

/// Runs the full churn loop. All incremental-path phases record through
/// `rec` (per-epoch reports are carved out by snapshot deltas); the
/// verification path runs silently. Returns `Err` the moment any epoch's
/// incremental output is not byte-identical to the full recompute.
pub fn run_churn(
    gen: GeneratorConfig,
    opts: &ChurnOptions,
    rec: &obs::Recorder,
) -> Result<ChurnRun, String> {
    let mut net = Internet::generate_with_obs(gen, rec);
    // Wall times (informational cost fields only) go through obs's clock
    // abstraction — determinism policy bans direct clock reads out here.
    let clock = obs::MonotonicClock::new();
    let schedule = ChurnSchedule::generate(&net, opts.seed, opts.epochs);
    let wp = Arc::new(pool::WorkerPool::with_recorder(opts.threads, rec.clone()));
    let full_wp = Arc::new(pool::WorkerPool::new(opts.threads));
    let silent = obs::Recorder::disabled();
    let vps = select_vps(&net, opts.vps, &[], opts.seed);
    let cfg = Config {
        threads: opts.threads,
        ..opts.core.clone()
    };

    let mut rib = net.build_rib();
    let mut ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
    let mut rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
    let mut cones = CustomerCones::compute(&rels);

    let mut pair_cache: BTreeMap<(usize, u32), PairInfo> = BTreeMap::new();
    let mut shard_cache = ShardCache::new();
    let mut epochs_out = Vec::with_capacity(opts.epochs + 1);
    let mut report_mark = rec.report();

    for epoch in 0..=opts.epochs {
        rec.inc(names::CHURN_EPOCHS);
        let epoch_span = rec.span(names::PHASE_CHURN_EPOCH);
        let inc_start = clock.now_nanos();

        // 1. Apply this epoch's events (none at the baseline).
        let mut events = Vec::new();
        let (mut applied, mut skipped) = (0usize, 0usize);
        let mut touched: BTreeSet<Asn> = BTreeSet::new();
        let mut rib_changed = false;
        if epoch > 0 {
            for ev in &schedule.epochs[epoch - 1] {
                events.push(ev.describe());
                let out = net.apply_event(ev);
                if out.applied {
                    applied += 1;
                    touched.extend(out.touched.iter().copied());
                    rib_changed |= out.rib_changed;
                } else {
                    skipped += 1;
                }
            }
        }
        rec.add(names::CHURN_EVENTS_APPLIED, applied as u64);
        rec.add(names::CHURN_EVENTS_SKIPPED, skipped as u64);
        if rib_changed {
            rec.inc(names::CHURN_RIB_REBUILDS);
            rib = net.build_rib();
            ip2as = IpToAs::build(&rib, &net.addressing.delegations, &net.addressing.ixps);
            rels = infer_relationships(&rib.collapsed_paths(), &InferenceConfig::default());
            cones = CustomerCones::compute(&rels);
        }

        // 2. The epoch's probe matrix and its dirty subset. Destinations are
        // re-enumerated — router additions can shift the live-biased
        // sampling — and the matrix stays vp-major, so the spliced corpus
        // below is ordered exactly like a full campaign's.
        let dests = destinations(&net, &opts.probe);
        let pairs: Vec<(usize, u32)> = (0..vps.len())
            .flat_map(|v| dests.iter().map(move |&d| (v, d)))
            .collect();
        let dirty: Vec<(usize, u32)> = pairs
            .iter()
            .copied()
            .filter(|key| {
                rib_changed
                    || pair_cache
                        .get(key)
                        .is_none_or(|info| !info.ases.is_disjoint(&touched))
            })
            .collect();
        rec.add(names::CHURN_DIRTY_PAIRS, dirty.len() as u64);
        rec.add(names::CHURN_CLEAN_PAIRS, (pairs.len() - dirty.len()) as u64);

        // 3. Re-probe the dirty pairs; splice fresh traces over the cache.
        let fresh = {
            let _span = rec.span(names::PHASE_TRACEROUTE);
            let router_pairs: Vec<_> = dirty.iter().map(|&(v, d)| (vps[v], d)).collect();
            probe_pairs_in_pool(&net, &router_pairs, &opts.probe, &wp)
        };
        let mut next_cache: BTreeMap<(usize, u32), PairInfo> = BTreeMap::new();
        for (key, trace) in dirty.iter().copied().zip(fresh) {
            let ases = traversed_ases(&net, vps[key.0], key.1);
            next_cache.insert(key, PairInfo { trace, ases });
        }
        for &key in &pairs {
            next_cache.entry(key).or_insert_with(|| {
                pair_cache
                    .remove(&key)
                    .expect("clean pair must be cached from the previous epoch")
            });
        }
        pair_cache = next_cache;

        // 4. The spliced corpus, filtered exactly like a full campaign.
        let corpus: Vec<Trace> = pairs
            .iter()
            .map(|key| pair_cache[key].trace.clone())
            .filter(|t| t.responsive_count() > 0)
            .collect();

        // 5. Aliases are re-resolved from scratch: alias sets are global
        // (any changed trace can re-cluster distant interfaces), and the
        // resolver is cheap next to probing.
        let observed = observed_addresses(&corpus);
        let aliases = resolve_midar_with_obs(&net, &observed, 0.9, opts.seed, rec);

        // 6. Incremental inference: rebuild the graph, freeze last hops,
        // then re-converge only the dirty shards.
        let graph = {
            let _span = rec.span(names::PHASE_GRAPH);
            IrGraph::build_in_pool(&corpus, &aliases, &ip2as, &cfg, &rels, &cones, &wp, rec)
        };
        let mut state = AnnotationState::new(&graph);
        if cfg.enable_last_hop {
            let _span = rec.span(names::PHASE_LASTHOP);
            lasthop::annotate_last_hops(&graph, &rels, &cones, &mut state);
        }
        let stats = {
            let _span = rec.span(names::PHASE_REFINE);
            refine_incremental(
                &graph,
                &rels,
                &cones,
                &cfg,
                &mut state,
                &wp,
                rec,
                &mut shard_cache,
            )
        };
        let total_shards = graph.shards.shards.len();
        let annotated = Annotated { graph, state };
        let snap_inc = snapshot::to_bytes(&SnapshotData::from_annotated(
            &annotated,
            &rib.origin_table(),
        ));
        let incremental = EpochCost::new(
            dirty.len() as u64,
            stats.dirty_shards as u64,
            elapsed_ms(&clock, inc_start),
        );
        drop(epoch_span);

        // 7. The naive path, for cost comparison and byte-level proof.
        let full_start = clock.now_nanos();
        let full_corpus = probe_campaign_in_pool(&net, &vps, &opts.probe, &full_wp, &silent);
        if full_corpus != corpus {
            return Err(format!(
                "epoch {epoch}: spliced corpus diverges from the full campaign \
                 ({} vs {} traces)",
                corpus.len(),
                full_corpus.len()
            ));
        }
        let full_aliases = resolve_midar(&net, &observed_addresses(&full_corpus), 0.9, opts.seed);
        if full_aliases != aliases {
            return Err(format!("epoch {epoch}: alias sets diverge"));
        }
        let full_result = Bdrmapit::new(cfg.clone()).with_pool(full_wp.clone()).run(
            &full_corpus,
            &full_aliases,
            &ip2as,
            &rels,
        );
        let snap_full = snapshot::to_bytes(&SnapshotData::from_annotated(
            &full_result,
            &rib.origin_table(),
        ));
        let full = EpochCost::new(
            pairs.len() as u64,
            full_result.graph.shards.shards.len() as u64,
            elapsed_ms(&clock, full_start),
        );
        if snap_full != snap_inc {
            return Err(format!(
                "epoch {epoch}: incremental snapshot is not byte-identical to the \
                 full recompute"
            ));
        }

        let cumulative = rec.report();
        let report = report_delta(&report_mark, &cumulative);
        report_mark = cumulative;
        epochs_out.push(EpochOutcome {
            epoch,
            events,
            applied,
            skipped,
            rib_changed,
            dirty_pairs: dirty.len(),
            total_pairs: pairs.len(),
            dirty_shards: stats.dirty_shards,
            total_shards,
            incremental,
            full,
            snapshot: snap_inc,
            report,
        });
    }
    Ok(ChurnRun {
        epochs: epochs_out,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts(epochs: usize, threads: usize, seed: u64) -> ChurnOptions {
        ChurnOptions {
            probe: ProbeConfig {
                per_prefix_cap: 2,
                ..ProbeConfig::default()
            },
            ..ChurnOptions::new(epochs, 4, threads, seed)
        }
    }

    #[test]
    fn baseline_epoch_probes_everything_and_matches_full() {
        let opts = tiny_opts(0, 1, 41);
        let run = run_churn(GeneratorConfig::tiny(41), &opts, &obs::Recorder::disabled()).unwrap();
        assert_eq!(run.epochs.len(), 1);
        let e = &run.epochs[0];
        assert_eq!(e.dirty_pairs, e.total_pairs, "cold start probes everything");
        assert_eq!(e.dirty_shards, e.total_shards);
        assert_eq!(e.incremental.work, e.full.work);
        assert!(!e.snapshot.is_empty());
    }

    #[test]
    fn churn_epochs_cost_less_than_full_recompute() {
        let opts = tiny_opts(3, 1, 42);
        let run = run_churn(GeneratorConfig::tiny(42), &opts, &obs::Recorder::disabled()).unwrap();
        assert_eq!(run.epochs.len(), 4);
        for e in &run.epochs[1..] {
            assert!(e.applied + e.skipped >= 1, "every churn epoch has events");
            if !e.rib_changed {
                assert!(
                    e.incremental.work < e.full.work,
                    "epoch {}: {} !< {}",
                    e.epoch,
                    e.incremental.work,
                    e.full.work
                );
            }
        }
    }

    #[test]
    fn per_epoch_reports_carry_churn_counters() {
        let opts = tiny_opts(2, 1, 43);
        let rec = obs::Recorder::new(false);
        let run = run_churn(GeneratorConfig::tiny(43), &opts, &rec).unwrap();
        for e in &run.epochs {
            assert_eq!(e.report.counters[names::CHURN_EPOCHS], 1);
            assert!(e.report.phases.contains_key(names::PHASE_CHURN_EPOCH));
            assert!(e.report.phases.contains_key(names::PHASE_REFINE));
        }
        // The session recorder holds the cumulative view.
        let total = rec.report();
        assert_eq!(total.counters[names::CHURN_EPOCHS], 3);
    }
}
