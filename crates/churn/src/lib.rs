//! **churn**: streaming topology dynamics with incremental re-convergence.
//!
//! The paper maps a static snapshot; real topologies move. This crate
//! models that movement and makes re-mapping cheap without ever trading
//! away the determinism contract:
//!
//! 1. a [`ChurnSchedule`] derives timed topology events — link failures
//!    and recoveries, router additions, prefix reannouncements — from a
//!    seed (see [`schedule`]);
//! 2. the [`driver`] steps the schedule epoch by epoch, re-probing only
//!    the `(vp, dst)` pairs whose measurements depend on a touched AS and
//!    re-converging only the refinement shards whose fingerprints changed
//!    ([`bdrmapit_core::refine::refine_incremental`]);
//! 3. every epoch is *proved* byte-identical to a from-scratch recompute —
//!    the driver runs both paths and compares their
//!    `bdrmapit.snapshot/v1` bytes — and the per-epoch cost gap lands in a
//!    `bdrmapit.bench-churn/v1` artifact ([`bench`]).
//!
//! The CLI front end is `bdrmapit pipeline --churn`; see DESIGN.md §16 for
//! the dirty-propagation rules and the determinism argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod driver;
pub mod schedule;

pub use bench::{
    report_delta, BenchChurn, BenchEpoch, ChurnReport, EpochCost, BENCH_SCHEMA, REPORT_SCHEMA,
};
pub use driver::{run_churn, ChurnOptions, ChurnRun, EpochOutcome};
pub use schedule::{ChurnSchedule, GROWTH_EPOCH};
