//! Deterministic churn schedules: seed-derived timed topology events.
//!
//! A [`ChurnSchedule`] is a pure function of the generated Internet and a
//! seed: the same `(net, seed, epochs)` triple always yields the same event
//! sequence, so a churn run is reproducible end to end. Events target
//! non-clique ASes — edge networks churn, the core is stable — which also
//! keeps each event's blast radius small enough for the incremental engine
//! to exploit.
//!
//! The first two epochs carry link failures and recoveries only; router
//! additions and prefix reannouncements become eligible from epoch
//! [`GROWTH_EPOCH`] on, so every run starts with purely intra-AS dynamics
//! before interdomain routing starts moving.

use net_types::Asn;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use topo_gen::{Internet, RouterId, Tier, TopologyEvent};

/// First epoch at which [`TopologyEvent::RouterAdd`] and
/// [`TopologyEvent::Reannounce`] may be scheduled.
pub const GROWTH_EPOCH: usize = 3;

/// Domain separator folded into the schedule RNG seed.
const SCHEDULE_SEED: u64 = 0x6368_7572_6e65_7673;

/// A per-epoch list of topology events, derived deterministically from a
/// seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// `epochs[e]` holds the events for churn epoch `e + 1` (epoch 0 is the
    /// baseline and never carries events).
    pub epochs: Vec<Vec<TopologyEvent>>,
}

impl ChurnSchedule {
    /// Derives the schedule for `epochs` churn epochs. Each epoch carries
    /// one or two events; link failures track a down-set so recoveries only
    /// target links the schedule itself took down.
    ///
    /// The schedule is advisory: [`Internet::apply_event`] may still skip an
    /// event at apply time (e.g. a link failure that would disconnect its
    /// AS), and the driver counts those separately.
    pub fn generate(net: &Internet, seed: u64, epochs: usize) -> ChurnSchedule {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ SCHEDULE_SEED);
        let clique: BTreeSet<Asn> = net.graph.tier_members(Tier::Clique).into_iter().collect();
        let mut up: Vec<(Asn, RouterId, RouterId)> = net
            .internal_links()
            .into_iter()
            .filter(|(asn, _, _)| !clique.contains(asn))
            .collect();
        let mut down: Vec<(Asn, RouterId, RouterId)> = Vec::new();
        let reann: Vec<Asn> = net
            .graph
            .relationships
            .ases()
            .into_iter()
            .filter(|&a| net.graph.relationships.providers_of(a).count() >= 2)
            .collect();
        let grow: Vec<Asn> = net
            .graph
            .relationships
            .ases()
            .into_iter()
            .filter(|a| !clique.contains(a) && net.topology.as_routers.contains_key(a))
            .collect();

        let mut out = Vec::with_capacity(epochs);
        for epoch in 1..=epochs {
            let n = 1 + usize::from(rng.gen_bool(0.5));
            let mut evs = Vec::with_capacity(n);
            for _ in 0..n {
                let roll: u32 = rng.gen_range(0..10);
                let ev = if epoch >= GROWTH_EPOCH && roll == 0 && !grow.is_empty() {
                    let asn = grow[rng.gen_range(0..grow.len())];
                    let routers = &net.topology.as_routers[&asn];
                    let attach = routers[rng.gen_range(0..routers.len())];
                    Some(TopologyEvent::RouterAdd { asn, attach })
                } else if epoch >= GROWTH_EPOCH && roll == 1 && !reann.is_empty() {
                    let asn = reann[rng.gen_range(0..reann.len())];
                    Some(TopologyEvent::Reannounce { asn })
                } else if roll < 4 && !down.is_empty() {
                    let (asn, a, b) = down.swap_remove(rng.gen_range(0..down.len()));
                    up.push((asn, a, b));
                    Some(TopologyEvent::LinkUp { asn, a, b })
                } else if !up.is_empty() {
                    let (asn, a, b) = up.swap_remove(rng.gen_range(0..up.len()));
                    down.push((asn, a, b));
                    Some(TopologyEvent::LinkDown { asn, a, b })
                } else {
                    None
                };
                if let Some(ev) = ev {
                    evs.push(ev);
                }
            }
            out.push(evs);
        }
        ChurnSchedule { epochs: out }
    }

    /// Total scheduled events across all epochs.
    pub fn event_count(&self) -> usize {
        self.epochs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_gen::GeneratorConfig;

    #[test]
    fn schedule_is_deterministic() {
        let net = Internet::generate(GeneratorConfig::tiny(11));
        let a = ChurnSchedule::generate(&net, 7, 6);
        let b = ChurnSchedule::generate(&net, 7, 6);
        assert_eq!(a, b);
        let c = ChurnSchedule::generate(&net, 8, 6);
        assert_ne!(a, c, "different seeds give different schedules");
        assert_eq!(a.epochs.len(), 6);
        assert!(
            a.event_count() >= 6,
            "every epoch carries at least one event"
        );
    }

    #[test]
    fn early_epochs_are_link_events_only() {
        let net = Internet::generate(GeneratorConfig::tiny(12));
        for seed in 0..20 {
            let s = ChurnSchedule::generate(&net, seed, 8);
            for evs in s.epochs.iter().take(GROWTH_EPOCH - 1) {
                for ev in evs {
                    assert!(
                        matches!(
                            ev,
                            TopologyEvent::LinkDown { .. } | TopologyEvent::LinkUp { .. }
                        ),
                        "pre-growth epoch carries {ev:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn events_avoid_clique_ases() {
        let net = Internet::generate(GeneratorConfig::tiny(13));
        let clique = net.graph.tier_members(Tier::Clique);
        for seed in 0..10 {
            let s = ChurnSchedule::generate(&net, seed, 8);
            for ev in s.epochs.iter().flatten() {
                let asn = match ev {
                    TopologyEvent::LinkDown { asn, .. }
                    | TopologyEvent::LinkUp { asn, .. }
                    | TopologyEvent::RouterAdd { asn, .. }
                    | TopologyEvent::Reannounce { asn } => *asn,
                };
                assert!(
                    !clique.contains(&asn),
                    "clique AS {asn:?} targeted by {ev:?}"
                );
            }
        }
    }
}
