//! Churn artifacts: the `bdrmapit.bench-churn/v1` cost benchmark, the
//! `bdrmapit.churn-report/v1` per-epoch report bundle, and the report-delta
//! arithmetic that carves per-epoch [`RunReport`]s out of one cumulative
//! recorder.

use crate::driver::ChurnRun;
use obs::{HistogramSummary, PhaseStats, RunReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema identifier of the churn cost benchmark artifact.
pub const BENCH_SCHEMA: &str = "bdrmapit.bench-churn/v1";
/// Schema identifier of the per-epoch report bundle.
pub const REPORT_SCHEMA: &str = "bdrmapit.churn-report/v1";

/// What one epoch cost on one path (incremental or full recompute). The
/// deterministic `work` unit is `probes + shards`: probes executed plus
/// refinement shards converged — the two quantities churn actually scales.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochCost {
    /// Traceroute probes executed (`(vp, dst)` pairs measured).
    pub probes: u64,
    /// Refinement shards converged from scratch.
    pub shards: u64,
    /// Deterministic cost: `probes + shards`.
    pub work: u64,
    /// Wall time of the path, milliseconds (informational; varies by
    /// machine and thread count).
    pub wall_ms: f64,
}

impl EpochCost {
    /// Assembles a cost record; `work` is derived.
    pub fn new(probes: u64, shards: u64, wall_ms: f64) -> EpochCost {
        EpochCost {
            probes,
            shards,
            work: probes + shards,
            wall_ms,
        }
    }
}

/// One epoch's row in the benchmark artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEpoch {
    /// Epoch index (0 = baseline, no events).
    pub epoch: usize,
    /// Human-readable event descriptions (applied or skipped).
    pub events: Vec<String>,
    /// Events actually applied.
    pub applied: usize,
    /// Events refused at apply time.
    pub skipped: usize,
    /// Whether interdomain routing changed (forces a full re-probe).
    pub rib_changed: bool,
    /// `(vp, dst)` pairs re-probed.
    pub dirty_pairs: usize,
    /// Total pairs in the epoch's probe matrix.
    pub total_pairs: usize,
    /// Refinement shards re-converged.
    pub dirty_shards: usize,
    /// Total shards in the epoch's plan.
    pub total_shards: usize,
    /// Incremental-path cost.
    pub incremental: EpochCost,
    /// Full-recompute cost.
    pub full: EpochCost,
    /// Whether the incremental snapshot was byte-identical to the full
    /// recompute's (the driver aborts when false, so this is always true in
    /// a written artifact — kept explicit for the CI schema check).
    pub identical: bool,
}

/// The `bdrmapit.bench-churn/v1` artifact: per-epoch incremental-vs-full
/// cost for one churn run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchChurn {
    /// Schema identifier ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Topology scale label (`tiny` / `small` / ...).
    pub scale: String,
    /// Topology + schedule seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Per-epoch rows, baseline first.
    pub epochs: Vec<BenchEpoch>,
    /// Sum of incremental `work` across epochs.
    pub incremental_work_total: u64,
    /// Sum of full-recompute `work` across epochs.
    pub full_work_total: u64,
}

impl BenchChurn {
    /// Builds the artifact from a completed run.
    pub fn from_run(run: &ChurnRun, scale: &str, seed: u64, threads: usize) -> BenchChurn {
        let epochs: Vec<BenchEpoch> = run
            .epochs
            .iter()
            .map(|e| BenchEpoch {
                epoch: e.epoch,
                events: e.events.clone(),
                applied: e.applied,
                skipped: e.skipped,
                rib_changed: e.rib_changed,
                dirty_pairs: e.dirty_pairs,
                total_pairs: e.total_pairs,
                dirty_shards: e.dirty_shards,
                total_shards: e.total_shards,
                incremental: e.incremental,
                full: e.full,
                identical: true,
            })
            .collect();
        let incremental_work_total = epochs.iter().map(|e| e.incremental.work).sum();
        let full_work_total = epochs.iter().map(|e| e.full.work).sum();
        BenchChurn {
            schema: BENCH_SCHEMA.to_string(),
            scale: scale.to_string(),
            seed,
            threads,
            epochs,
            incremental_work_total,
            full_work_total,
        }
    }

    /// The CI cost gate: every epoch's output byte-identical, every
    /// rib-stable churn epoch strictly cheaper incrementally than the full
    /// recompute, and the run total strictly cheaper overall.
    pub fn gate(&self) -> Result<(), String> {
        for e in &self.epochs {
            if !e.identical {
                return Err(format!(
                    "epoch {}: incremental output diverged from full recompute",
                    e.epoch
                ));
            }
            if e.epoch >= 1 && !e.rib_changed && e.incremental.work >= e.full.work {
                return Err(format!(
                    "epoch {}: incremental work {} is not below full work {}",
                    e.epoch, e.incremental.work, e.full.work
                ));
            }
        }
        if self.incremental_work_total >= self.full_work_total {
            return Err(format!(
                "total incremental work {} is not below total full work {}",
                self.incremental_work_total, self.full_work_total
            ));
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench-churn serializes")
    }

    /// Parses the artifact back from JSON.
    pub fn from_json(text: &str) -> Result<BenchChurn, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

/// The `bdrmapit.churn-report/v1` bundle: one [`RunReport`] per epoch,
/// baseline first. `report diff A B --epoch X[:Y]` selects epochs out of
/// these.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Schema identifier ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Per-epoch reports, index = epoch number.
    pub epochs: Vec<RunReport>,
}

impl ChurnReport {
    /// Collects the per-epoch reports of a completed run.
    pub fn from_run(run: &ChurnRun) -> ChurnReport {
        ChurnReport {
            schema: REPORT_SCHEMA.to_string(),
            epochs: run.epochs.iter().map(|e| e.report.clone()).collect(),
        }
    }

    /// The report for epoch `i`, or a descriptive error.
    pub fn epoch(&self, i: usize) -> Result<&RunReport, String> {
        self.epochs
            .get(i)
            .ok_or_else(|| format!("epoch {i} out of range (report has {})", self.epochs.len()))
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("churn report serializes")
    }

    /// Parses the bundle back from JSON; `Err` includes schema mismatches.
    pub fn from_json(text: &str) -> Result<ChurnReport, String> {
        let report: ChurnReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if report.schema != REPORT_SCHEMA {
            return Err(format!(
                "expected schema {REPORT_SCHEMA}, found {}",
                report.schema
            ));
        }
        Ok(report)
    }
}

/// The per-epoch slice of a cumulative recorder: `after − before`,
/// field by field. Counters and exec counters subtract per key (zero deltas
/// are dropped), phases subtract entry counts and wall times, and histogram
/// deltas subtract the exact `value → occurrences` maps, recomputing
/// `count`/`sum`/`min`/`max` from what remains. Snapshotting the recorder
/// around each epoch and subtracting is what lets every epoch run under
/// *one* session recorder (so `--trace-out` sees all epochs) while still
/// producing standalone per-epoch reports.
pub fn report_delta(before: &RunReport, after: &RunReport) -> RunReport {
    let sub_counters = |a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>| {
        b.iter()
            .filter_map(|(k, &vb)| {
                let d = vb.saturating_sub(a.get(k).copied().unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect::<BTreeMap<String, u64>>()
    };
    let phases = after
        .phases
        .iter()
        .filter_map(|(k, pb)| {
            let pa = before.phases.get(k);
            let count = pb.count.saturating_sub(pa.map_or(0, |p| p.count));
            let wall_ms = pb.wall_ms - pa.map_or(0.0, |p| p.wall_ms);
            (count > 0).then(|| (k.clone(), PhaseStats { count, wall_ms }))
        })
        .collect();
    let histograms = after
        .histograms
        .iter()
        .filter_map(|(k, hb)| {
            let empty = BTreeMap::new();
            let base = before.histograms.get(k).map_or(&empty, |h| &h.values);
            let values: BTreeMap<u64, u64> = hb
                .values
                .iter()
                .filter_map(|(&v, &n)| {
                    let d = n.saturating_sub(base.get(&v).copied().unwrap_or(0));
                    (d > 0).then_some((v, d))
                })
                .collect();
            if values.is_empty() {
                return None;
            }
            let count = values.values().sum();
            let sum = values.iter().map(|(&v, &n)| v * n).sum();
            let min = *values.keys().next().expect("nonempty");
            let max = *values.keys().next_back().expect("nonempty");
            Some((
                k.clone(),
                HistogramSummary {
                    count,
                    sum,
                    min,
                    max,
                    values,
                },
            ))
        })
        .collect();
    RunReport {
        schema: after.schema.clone(),
        phases,
        counters: sub_counters(&before.counters, &after.counters),
        exec: sub_counters(&before.exec, &after.exec),
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{names, MockClock, Recorder};

    #[test]
    fn report_delta_subtracts_every_section() {
        let clock = MockClock::new();
        let rec = Recorder::with_clock(false, Box::new(clock.clone()));
        {
            let _s = rec.span(names::PHASE_REFINE);
            clock.advance(1_000_000);
        }
        rec.add(names::REFINE_ITERATIONS, 3);
        rec.add_exec(names::EXEC_CACHE_HITS, 5);
        rec.record(names::HIST_SHARD_ITERATIONS, 2);
        rec.record(names::HIST_SHARD_ITERATIONS, 2);
        let before = rec.report();

        {
            let _s = rec.span(names::PHASE_REFINE);
            clock.advance(2_000_000);
        }
        rec.add(names::REFINE_ITERATIONS, 4);
        rec.record(names::HIST_SHARD_ITERATIONS, 2);
        rec.record(names::HIST_SHARD_ITERATIONS, 7);
        let after = rec.report();

        let delta = report_delta(&before, &after);
        assert_eq!(delta.counters[names::REFINE_ITERATIONS], 4);
        assert!(
            !delta.exec.contains_key(names::EXEC_CACHE_HITS),
            "unchanged exec counter must drop out"
        );
        let p = &delta.phases[names::PHASE_REFINE];
        assert_eq!(p.count, 1);
        assert!((p.wall_ms - 2.0).abs() < 1e-9, "{}", p.wall_ms);
        let h = &delta.histograms[names::HIST_SHARD_ITERATIONS];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 7);
        assert_eq!(h.values[&2], 1);
        assert_eq!(h.values[&7], 1);
    }

    #[test]
    fn report_delta_of_identical_reports_is_empty() {
        let rec = Recorder::with_clock(false, Box::new(MockClock::new()));
        rec.add(names::REFINE_ITERATIONS, 3);
        let r = rec.report();
        let delta = report_delta(&r, &r);
        assert!(delta.counters.is_empty());
        assert!(delta.phases.is_empty());
        assert!(delta.histograms.is_empty());
    }

    #[test]
    fn churn_report_round_trips_and_checks_schema() {
        let report = ChurnReport {
            schema: REPORT_SCHEMA.to_string(),
            epochs: vec![RunReport::empty(), RunReport::empty()],
        };
        let back = ChurnReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(back.epoch(1).is_ok());
        assert!(back.epoch(2).is_err());
        let bogus = report.to_json().replace(REPORT_SCHEMA, "bogus/v0");
        assert!(ChurnReport::from_json(&bogus).is_err());
    }

    #[test]
    fn gate_rejects_costlier_incremental_epochs() {
        let cheap = EpochCost::new(10, 2, 1.0);
        let dear = EpochCost::new(100, 20, 2.0);
        let row = |epoch: usize, inc: EpochCost, rib: bool| BenchEpoch {
            epoch,
            events: Vec::new(),
            applied: 1,
            skipped: 0,
            rib_changed: rib,
            dirty_pairs: 1,
            total_pairs: 100,
            dirty_shards: 1,
            total_shards: 20,
            incremental: inc,
            full: dear,
            identical: true,
        };
        let mut bench = BenchChurn {
            schema: BENCH_SCHEMA.to_string(),
            scale: "tiny".into(),
            seed: 1,
            threads: 1,
            epochs: vec![row(0, dear, false), row(1, cheap, false)],
            incremental_work_total: dear.work + cheap.work,
            full_work_total: dear.work * 2,
        };
        assert_eq!(bench.gate(), Ok(()));

        // A rib-changed epoch at full cost is exempt from the per-epoch gate.
        bench.epochs.push(row(2, dear, true));
        bench.incremental_work_total += dear.work;
        bench.full_work_total += dear.work;
        assert_eq!(bench.gate(), Ok(()));

        // A rib-stable epoch at full cost fails it.
        bench.epochs.push(row(3, dear, false));
        bench.incremental_work_total += dear.work;
        bench.full_work_total += dear.work;
        assert!(bench.gate().unwrap_err().contains("epoch 3"));
    }
}
