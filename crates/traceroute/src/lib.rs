//! Traceroute data model and measurement simulator.
//!
//! The data model ([`Trace`], [`Hop`], [`ReplyType`]) mirrors what matters
//! about an ICMP Paris traceroute record for boundary mapping: the probed
//! destination, and per-TTL the responding address and ICMP reply type (the
//! paper's §4.2 link-confidence labels depend on reply types and hop gaps).
//! Traces serialize to JSON-lines ([`io`]), the shape CAIDA publishes.
//!
//! The simulator ([`sim`]) replaces the Ark measurement infrastructure: it
//! probes a synthetic [`topo_gen::Internet`] from a set of vantage points,
//! reproducing the measurement artifacts that bdrmapIT's heuristics target —
//! silent and rate-limited routers, firewalled edge networks, echo-only
//! replies, off-path and third-party reply addresses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod sim;

use net_types::format_ipv4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ICMP reply type of one traceroute response.
///
/// The paper's link labels (§4.2): Time Exceeded / Destination Unreachable
/// "typically indicate that the traceroute probe arrived at interface j on
/// the responding router", while Echo Reply only proves the address is *on*
/// the responding router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplyType {
    /// ICMP Time Exceeded — the normal intermediate-hop reply.
    TimeExceeded,
    /// ICMP Echo Reply — the destination (or an echo-answering box) replied.
    EchoReply,
    /// ICMP Destination Unreachable.
    DestUnreachable,
}

/// One responsive hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// Responding source address.
    pub addr: u32,
    /// ICMP reply type.
    pub reply: ReplyType,
}

/// Why probing stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The destination answered.
    Completed,
    /// Too many consecutive unresponsive hops.
    GapLimit,
    /// An ICMP unreachable ended the measurement.
    Unreachable,
    /// No route toward the destination existed at the vantage point.
    NoRoute,
}

/// One traceroute measurement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Monitor (VP) name, e.g. `"vp-2001"`.
    pub monitor: String,
    /// Source address of the probes.
    pub src: u32,
    /// Probed destination address.
    pub dst: u32,
    /// Per-TTL responses; `hops[t]` is the reply to the TTL `t+1` probe,
    /// `None` for an unresponsive hop (`*`).
    pub hops: Vec<Option<Hop>>,
    /// Why the measurement stopped.
    pub stop: StopReason,
}

impl Trace {
    /// The responsive hops with their TTL (1-based), in order.
    pub fn responsive(&self) -> impl Iterator<Item = (u8, Hop)> + '_ {
        self.hops
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|h| ((i + 1) as u8, h)))
    }

    /// The final responsive hop, if any.
    pub fn last_hop(&self) -> Option<(u8, Hop)> {
        self.responsive().last()
    }

    /// Did the destination itself answer (last hop is an Echo Reply from the
    /// probed address, or marked completed)?
    pub fn reached_dst(&self) -> bool {
        self.stop == StopReason::Completed
    }

    /// Total responsive hop count.
    pub fn responsive_count(&self) -> usize {
        self.hops.iter().flatten().count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} -> {} [{:?}]",
            format_ipv4(self.src),
            format_ipv4(self.dst),
            self.stop
        )?;
        for (ttl, hop) in self.hops.iter().enumerate() {
            match hop {
                Some(h) => write!(
                    f,
                    "\n  {:>2}  {}  {:?}",
                    ttl + 1,
                    format_ipv4(h.addr),
                    h.reply
                )?,
                None => write!(f, "\n  {:>2}  *", ttl + 1)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace {
            monitor: "vp-1".into(),
            src: 1,
            dst: 99,
            hops: vec![
                Some(Hop {
                    addr: 10,
                    reply: ReplyType::TimeExceeded,
                }),
                None,
                Some(Hop {
                    addr: 20,
                    reply: ReplyType::TimeExceeded,
                }),
                Some(Hop {
                    addr: 99,
                    reply: ReplyType::EchoReply,
                }),
            ],
            stop: StopReason::Completed,
        }
    }

    #[test]
    fn responsive_iteration() {
        let t = trace();
        let hops: Vec<(u8, u32)> = t.responsive().map(|(ttl, h)| (ttl, h.addr)).collect();
        assert_eq!(hops, vec![(1, 10), (3, 20), (4, 99)]);
        assert_eq!(t.responsive_count(), 3);
        assert_eq!(t.last_hop().unwrap().1.addr, 99);
        assert!(t.reached_dst());
    }

    #[test]
    fn display_renders_stars() {
        let s = trace().to_string();
        assert!(s.contains("0.0.0.10"));
        assert!(s.contains("*"));
        assert!(s.contains("EchoReply"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace {
            monitor: "vp".into(),
            src: 1,
            dst: 2,
            hops: vec![None, None],
            stop: StopReason::GapLimit,
        };
        assert_eq!(t.last_hop(), None);
        assert_eq!(t.responsive_count(), 0);
        assert!(!t.reached_dst());
    }
}
