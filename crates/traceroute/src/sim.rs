//! The measurement simulator: probes a synthetic Internet from vantage
//! points, the synthetic stand-in for a CAIDA Ark / ITDK campaign.
//!
//! Per probe, the simulator forwards through [`topo_gen::Internet`]'s
//! deterministic forwarding plane and applies each traversed router's
//! response behaviour:
//!
//! * silent routers and per-probe rate limiting produce `*` gaps;
//! * firewalled stub networks swallow every externally-sourced probe at
//!   their border (the paper's §5 motivation for last-hop inference);
//! * `egress_reply` routers answer with the interface facing the return
//!   route, producing off-path and third-party addresses (§6.1.1);
//! * destinations that are real router interfaces answer with Echo Replies,
//!   sometimes from a different interface of the router (§4.2's `E`-label
//!   discussion).
//!
//! Everything is seeded; the same `(campaign seed, vp, dst)` triple always
//! produces the same trace, regardless of thread scheduling.

use crate::{Hop, ReplyType, StopReason, Trace};
use net_types::Asn;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use topo_gen::routers::LinkKind;
use topo_gen::{ForwardOutcome, Internet, RouterId, Tier};

/// Probing campaign parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Campaign seed (independent of the topology seed).
    pub seed: u64,
    /// Max /24s probed per announced prefix (Ark probes every routed /24;
    /// we cap for runtime, sampling deterministically).
    pub per_prefix_cap: usize,
    /// Probability that a host answers a probe into plain host space.
    pub dest_response_prob: f64,
    /// Consecutive unresponsive hops before the prober gives up
    /// (scamper's default gap limit is 5).
    pub gap_limit: usize,
    /// When a probed /24 contains live router interfaces, probability the
    /// prober's pseudo-random last octet lands on one of them.
    pub iface_hit_prob: f64,
    /// When a probe reaches the destination network but no host answers,
    /// probability the last router sends ICMP Destination Unreachable
    /// instead of staying silent (the N-label's second reply type, §4.2).
    pub dest_unreachable_prob: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            seed: 0x7472_6163,
            per_prefix_cap: 6,
            dest_response_prob: 0.35,
            gap_limit: 5,
            iface_hit_prob: 0.1,
            dest_unreachable_prob: 0.25,
        }
    }
}

/// Selects one vantage-point router in each of `count` distinct ASes,
/// excluding the listed ASes (the paper removes VPs inside validation
/// networks). VP ASes are drawn from transit, access, and R&E tiers, like
/// Ark monitors.
pub fn select_vps(net: &Internet, count: usize, exclude: &[Asn], seed: u64) -> Vec<RouterId> {
    use rand::seq::SliceRandom;
    let mut pool: Vec<Asn> = Vec::new();
    pool.extend(net.graph.tier_members(Tier::Transit));
    pool.extend(net.graph.tier_members(Tier::Access));
    pool.extend(net.graph.tier_members(Tier::ResearchEducation));
    pool.retain(|a| !exclude.contains(a));
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5650_5650);
    let mut ases: Vec<Asn> = pool
        .choose_multiple(&mut rng, count.min(pool.len()))
        .copied()
        .collect();
    ases.sort_unstable();
    ases.iter()
        .map(|&a| {
            let routers = &net.topology.as_routers[&a];
            routers[rng.gen_range(0..routers.len())]
        })
        .collect()
}

/// Enumerates the campaign's destination addresses: for each announced
/// prefix, up to `per_prefix_cap` /24s, one pseudo-random address each —
/// biased onto live interface addresses with `iface_hit_prob` so Echo-Reply
/// last hops occur, as they do when Ark probes infrastructure /24s.
pub fn destinations(net: &Internet, cfg: &ProbeConfig) -> Vec<u32> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x6473_7473);
    let mut out = Vec::new();
    for &(prefix, _) in &net.addressing.announced {
        let total_24s = if prefix.len() >= 24 {
            1
        } else {
            1usize << (24 - prefix.len())
        };
        let step = (total_24s / cfg.per_prefix_cap.max(1)).max(1);
        let mut taken = 0;
        for (i, sub) in prefix.subnets(24.max(prefix.len())).enumerate() {
            if i % step != 0 || taken >= cfg.per_prefix_cap {
                continue;
            }
            taken += 1;
            // Live interfaces inside this /24?
            let live: Vec<u32> = net
                .topology
                .addr_to_iface
                .range(sub.addr()..=sub.last_addr())
                .map(|(&a, _)| a)
                .collect();
            let addr = if !live.is_empty() && rng.gen_bool(cfg.iface_hit_prob) {
                live[rng.gen_range(0..live.len())]
            } else {
                sub.addr() + rng.gen_range(1..=254.min(sub.size() as u32 - 1))
            };
            out.push(addr);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Probes one destination from one VP.
pub fn trace_one(net: &Internet, vp: RouterId, dst: u32, cfg: &ProbeConfig) -> Trace {
    // Per-probe RNG: deterministic in (seed, vp, dst) regardless of order.
    let mut rng = ChaCha8Rng::seed_from_u64(
        cfg.seed ^ (vp.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (dst as u64),
    );
    let vp_as = net.topology.owner(vp);
    let vp_info = net.topology.router(vp);
    let src = net.topology.iface(vp_info.ifaces[0]).addr;
    let monitor = format!("vp-{}", vp_as.0);

    let fwd = net.forward_path(vp, dst);
    if fwd.outcome == ForwardOutcome::NoRoute {
        return Trace {
            monitor,
            src,
            dst,
            hops: vec![],
            stop: StopReason::NoRoute,
        };
    }

    let mut hops: Vec<Option<Hop>> = Vec::with_capacity(fwd.hops.len() + 2);
    let mut firewalled_from: Option<usize> = None;
    let n = fwd.hops.len();
    for (i, h) in fwd.hops.iter().enumerate() {
        let owner = net.topology.owner(h.router);
        if owner != vp_as && net.is_firewalled(owner) {
            // §5's two firewall shapes, a generated per-AS attribute:
            // either the border router is the visible last hop (it filters
            // what is behind it), or the filter drops at the border and the
            // provider's router becomes the last hop.
            let border_responds = net
                .graph
                .node(owner)
                .is_some_and(|n| n.firewall_border_responds);
            firewalled_from.get_or_insert(if border_responds { i + 1 } else { i });
        }
        let info = net.topology.router(h.router);
        let is_last = i + 1 == n;
        let blocked = firewalled_from.is_some_and(|f| i >= f);
        let silent = blocked || info.silent || rng.gen_bool(net.cfg.rate_limit_prob);
        if silent {
            hops.push(None);
            continue;
        }
        if is_last {
            if let ForwardOutcome::ReachedIface(ifid) = fwd.outcome {
                // The destination is this router's own interface: Echo Reply
                // sourced from the probed address, or from the router-id
                // interface for echo-offpath routers.
                let addr = if info.echo_offpath {
                    net.topology.iface(info.ifaces[0]).addr
                } else {
                    net.topology.iface(ifid).addr
                };
                hops.push(Some(Hop {
                    addr,
                    reply: ReplyType::EchoReply,
                }));
                continue;
            }
        }
        let addr = net.reply_source(h.router, h.ingress, vp_as);
        hops.push(Some(Hop {
            addr,
            reply: ReplyType::TimeExceeded,
        }));
    }

    let mut completed = false;
    let mut unreachable = false;
    if let ForwardOutcome::ReachedIface(_) = fwd.outcome {
        completed = hops.last().is_some_and(Option::is_some);
    } else if let ForwardOutcome::ReachedHostSpace { asn } = fwd.outcome {
        // A host past the final router may answer; failing that, the last
        // router may report the dead host with Destination Unreachable.
        let behind_firewall = net.is_firewalled(asn) || firewalled_from.is_some();
        if !behind_firewall && rng.gen_bool(cfg.dest_response_prob) {
            hops.push(Some(Hop {
                addr: dst,
                reply: ReplyType::EchoReply,
            }));
            completed = true;
        } else if !behind_firewall
            && hops.last().is_some_and(Option::is_some)
            && rng.gen_bool(cfg.dest_unreachable_prob)
        {
            // Convert the final router's reply into the unreachable that a
            // subsequent probe would elicit.
            if let Some(Some(h)) = hops.last_mut() {
                h.reply = ReplyType::DestUnreachable;
            }
            unreachable = true;
        }
    }

    // Gap-limit semantics: the prober abandons the measurement at the first
    // run of `gap_limit` consecutive unresponsive probes, so nothing beyond
    // that point is ever observed.
    let mut stop = if completed {
        StopReason::Completed
    } else if unreachable {
        StopReason::Unreachable
    } else {
        StopReason::GapLimit
    };
    let mut run = 0;
    for i in 0..hops.len() {
        run = if hops[i].is_none() { run + 1 } else { 0 };
        if run == cfg.gap_limit {
            hops.truncate(i + 1);
            stop = StopReason::GapLimit;
            break;
        }
    }
    // An unfinished measurement shows the prober walking into silence
    // before giving up (unreachables end the measurement immediately).
    if stop == StopReason::GapLimit {
        let trailing = hops.iter().rev().take_while(|h| h.is_none()).count();
        for _ in trailing..cfg.gap_limit {
            hops.push(None);
        }
    }

    Trace {
        monitor,
        src,
        dst,
        hops,
        stop,
    }
}

/// bdrmap's reactive data-collection component (paper §2): a single VP
/// probes one address in every routed prefix, and re-probes a prefix at
/// additional addresses whenever the first measurement "might have found an
/// off-path interface within the target AS" — an off-path Echo Reply, a
/// reply address outside the target origin's space on the final hop, or an
/// incomplete measurement.
pub fn reactive_campaign(
    net: &Internet,
    vp: RouterId,
    cfg: &ProbeConfig,
    follow_ups: usize,
) -> Vec<Trace> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x6264_7270);
    let mut out = Vec::new();
    for &(prefix, origin) in &net.addressing.announced {
        let sub24s = 1u64 << (24u8.saturating_sub(prefix.len()));
        let pick = |rng: &mut ChaCha8Rng| {
            let block = rng.gen_range(0..sub24s) as u32;
            prefix.addr() + block * 256 + rng.gen_range(1..=254.min(prefix.size() as u32 - 1))
        };
        let first = trace_one(net, vp, pick(&mut rng), cfg);
        let mut suspicious = !first.reached_dst();
        if let Some((_, last)) = first.last_hop() {
            // Off-path echo (source differs from the probed address) or a
            // final reply from outside the target network's space.
            if last.reply == ReplyType::EchoReply && last.addr != first.dst {
                suspicious = true;
            }
            if net.bgp_origin(last.addr) != Some(origin) {
                suspicious = true;
            }
        }
        let keep_first = first.responsive_count() > 0;
        if keep_first {
            out.push(first);
        }
        if suspicious {
            for _ in 0..follow_ups {
                let t = trace_one(net, vp, pick(&mut rng), cfg);
                if t.responsive_count() > 0 {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Worker count for a sharded campaign: `threads == 0` asks the OS
/// (mirroring the refinement engine's `Config::threads` convention), and the
/// pool never exceeds the number of probe pairs. Thread count can only
/// change wall time, never output — every probe is a pure function of
/// `(seed, vp, dst)` and shards concatenate in canonical order.
pub fn campaign_workers(threads: usize, probe_pairs: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.clamp(1, probe_pairs.max(1))
}

/// Probes the contiguous slice `[lo, hi)` of the flattened `(vp, dst)`
/// matrix (vp-major), appending responsive traces to `out` in matrix order.
fn fill_shard(
    net: &Internet,
    vps: &[RouterId],
    dests: &[u32],
    cfg: &ProbeConfig,
    lo: usize,
    hi: usize,
    out: &mut Vec<Trace>,
) {
    for k in lo..hi {
        let vp = vps[k / dests.len()];
        let dst = dests[k % dests.len()];
        let t = trace_one(net, vp, dst, cfg);
        if t.responsive_count() > 0 {
            out.push(t);
        }
    }
}

/// Runs the full campaign: every VP probes every destination. Parallel over
/// VPs with deterministic per-probe seeding, so output order and content are
/// reproducible. Worker count is taken from the OS (`threads == 0`).
pub fn probe_campaign(net: &Internet, vps: &[RouterId], cfg: &ProbeConfig) -> Vec<Trace> {
    probe_campaign_sharded(net, vps, cfg, 0)
}

/// [`probe_campaign`] with an explicit thread count (0 = ask the OS),
/// dispatched on an ad-hoc [`pool::WorkerPool`].
///
/// The `(vp, dst)` probe matrix is flattened vp-major and split into
/// pool-sized task chunks; each task fills a private trace buffer for its
/// contiguous index range, and the buffers are concatenated in range order.
/// Because every trace depends only on `(campaign seed, vp, dst)` and the
/// ranges partition the matrix in its canonical order, the merged corpus is
/// byte-identical to a serial walk for every thread count — stealing can
/// move a chunk between workers, never reorder the chunks.
pub fn probe_campaign_sharded(
    net: &Internet,
    vps: &[RouterId],
    cfg: &ProbeConfig,
    threads: usize,
) -> Vec<Trace> {
    let dests = destinations(net, cfg);
    campaign_in_pool(net, vps, &dests, cfg, &pool::WorkerPool::new(threads)).0
}

/// Shard runner shared by the entry points: probes the full `(vp, dst)`
/// matrix on the given pool. Returns the corpus plus the worker count the
/// batch could use (the execution-dependent `campaign.workers` value).
fn campaign_in_pool(
    net: &Internet,
    vps: &[RouterId],
    dests: &[u32],
    cfg: &ProbeConfig,
    wp: &pool::WorkerPool,
) -> (Vec<Trace>, usize) {
    let jobs = vps.len() * dests.len();
    if jobs == 0 {
        return (Vec::new(), 1);
    }
    let workers = wp.worker_cap(jobs);
    let batch = wp.batch_size(jobs);
    let tasks = jobs.div_ceil(batch);
    let shards = wp.run(obs::names::EXEC_POOL_BUSY_CAMPAIGN, tasks, |t| {
        let (lo, hi) = (t * batch, ((t + 1) * batch).min(jobs));
        let mut out = Vec::new();
        fill_shard(net, vps, dests, cfg, lo, hi, &mut out);
        out
    });
    (shards.into_iter().flatten().collect(), workers)
}

/// [`probe_campaign_sharded`] under an observability span: records the
/// `traceroute.campaign` phase, corpus size counters, and the
/// execution-dependent `campaign.workers` pool size. The corpus is
/// bit-identical to the plain variant's.
pub fn probe_campaign_with_obs(
    net: &Internet,
    vps: &[RouterId],
    cfg: &ProbeConfig,
    threads: usize,
    rec: &obs::Recorder,
) -> Vec<Trace> {
    let wp = pool::WorkerPool::with_recorder(threads, rec.clone());
    probe_campaign_in_pool(net, vps, cfg, &wp, rec)
}

/// [`probe_campaign_with_obs`] on a caller-provided worker pool — the entry
/// the pipeline uses so campaign, graph build, and refinement share one
/// pool. Destination enumeration runs *before* the phase span opens: it is
/// input preparation, identical at every thread count, and timing it inside
/// the span inflated the campaign's serial baseline (bench-pipeline v3
/// measures probing only).
pub fn probe_campaign_in_pool(
    net: &Internet,
    vps: &[RouterId],
    cfg: &ProbeConfig,
    wp: &pool::WorkerPool,
    rec: &obs::Recorder,
) -> Vec<Trace> {
    let dests = destinations(net, cfg);
    let _span = rec.span(obs::names::PHASE_TRACEROUTE);
    rec.tracer()
        .instant_main(obs::names::EV_CAMPAIGN_DESTS, dests.len() as u64);
    let (traces, workers) = campaign_in_pool(net, vps, &dests, cfg, wp);
    rec.add(obs::names::TRACEROUTE_TRACES, traces.len() as u64);
    rec.add(
        obs::names::TRACEROUTE_HOPS,
        traces.iter().map(|t| t.hops.len() as u64).sum(),
    );
    rec.add(
        obs::names::TRACEROUTE_RESPONSIVE_HOPS,
        traces.iter().map(|t| t.responsive_count() as u64).sum(),
    );
    rec.add_exec(obs::names::EXEC_CAMPAIGN_WORKERS, workers as u64);
    traces
}

/// Probes an explicit list of `(vp, dst)` pairs on the given pool, returning
/// one trace per pair **in pair order, unfiltered** (unresponsive traces
/// included so the result stays index-aligned with `pairs`).
///
/// This is the churn workload's delta campaign: after a topology event, only
/// the pairs whose paths traverse a touched AS (see [`traversed_ases`]) are
/// re-probed, and the caller splices the fresh traces over its cached corpus.
/// Determinism matches the full campaign's: every trace is a pure function
/// of `(campaign seed, vp, dst)`, and chunks concatenate in index order.
pub fn probe_pairs_in_pool(
    net: &Internet,
    pairs: &[(RouterId, u32)],
    cfg: &ProbeConfig,
    wp: &pool::WorkerPool,
) -> Vec<Trace> {
    let jobs = pairs.len();
    if jobs == 0 {
        return Vec::new();
    }
    let batch = wp.batch_size(jobs);
    let tasks = jobs.div_ceil(batch);
    let shards = wp.run(obs::names::EXEC_POOL_BUSY_CAMPAIGN, tasks, |t| {
        let (lo, hi) = (t * batch, ((t + 1) * batch).min(jobs));
        pairs[lo..hi]
            .iter()
            .map(|&(vp, dst)| trace_one(net, vp, dst, cfg))
            .collect::<Vec<Trace>>()
    });
    shards.into_iter().flatten().collect()
}

/// Every AS whose state can influence the `(vp, dst)` measurement: the VP's
/// AS, the destination's BGP origin, every AS the forwarding path traverses,
/// and the AS the path terminates in.
///
/// Computed from the *ground-truth* forward path, not the observed trace —
/// silent routers hide traversed ASes from the trace, and the dirty-pair
/// test must be conservative: a pair may only be skipped after a topology
/// event when **no** AS it depends on was touched. Interdomain routing
/// changes are handled separately (they dirty every pair), so this set only
/// needs to cover intra-AS events: internal link failures/recoveries change
/// forwarding inside one traversed AS, and router additions shift the
/// host-to-router mapping of the terminal AS — both covered here.
pub fn traversed_ases(net: &Internet, vp: RouterId, dst: u32) -> std::collections::BTreeSet<Asn> {
    let mut out = std::collections::BTreeSet::from([net.topology.owner(vp)]);
    if let Some(origin) = net.bgp_origin(dst) {
        out.insert(origin);
    }
    let fwd = net.forward_path(vp, dst);
    for h in &fwd.hops {
        out.insert(net.topology.owner(h.router));
    }
    match fwd.outcome {
        ForwardOutcome::ReachedHostSpace { asn } => {
            out.insert(asn);
        }
        ForwardOutcome::ReachedIface(i) => {
            out.insert(net.topology.owner(net.topology.iface(i).router));
        }
        ForwardOutcome::NoRoute => {}
    }
    out
}

/// Which /24-equivalent interface kinds a trace traversed — handy campaign
/// statistics used by tests and the experiment drivers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Total traces.
    pub traces: usize,
    /// Traces that reached their destination.
    pub completed: usize,
    /// Total responsive hops.
    pub responsive_hops: usize,
    /// Total unresponsive hops.
    pub gaps: usize,
    /// Echo replies observed.
    pub echo_replies: usize,
}

/// Computes campaign statistics.
pub fn stats(traces: &[Trace]) -> CampaignStats {
    let mut s = CampaignStats {
        traces: traces.len(),
        ..Default::default()
    };
    for t in traces {
        if t.reached_dst() {
            s.completed += 1;
        }
        for h in &t.hops {
            match h {
                Some(h) => {
                    s.responsive_hops += 1;
                    if h.reply == ReplyType::EchoReply {
                        s.echo_replies += 1;
                    }
                }
                None => s.gaps += 1,
            }
        }
    }
    s
}

/// True if an address belongs to an interface on an IXP LAN in the
/// generated topology (test helper).
pub fn is_ixp_addr(net: &Internet, addr: u32) -> bool {
    net.topology
        .iface_by_addr(addr)
        .is_some_and(|i| matches!(i.kind, LinkKind::Ixp(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_gen::GeneratorConfig;

    fn fixture() -> (Internet, ProbeConfig) {
        let net = Internet::generate(GeneratorConfig::tiny(77));
        let cfg = ProbeConfig {
            per_prefix_cap: 2,
            ..ProbeConfig::default()
        };
        (net, cfg)
    }

    #[test]
    fn vps_in_distinct_ases_excluding() {
        let (net, _) = fixture();
        let excluded = net.graph.tier_members(Tier::Access)[0];
        let vps = select_vps(&net, 5, &[excluded], 1);
        assert_eq!(vps.len(), 5);
        let mut ases: Vec<Asn> = vps.iter().map(|&r| net.topology.owner(r)).collect();
        assert!(!ases.contains(&excluded));
        ases.dedup();
        assert_eq!(ases.len(), 5, "VPs must sit in distinct ASes");
    }

    #[test]
    fn destinations_capped_and_in_announced_space() {
        let (net, cfg) = fixture();
        let dests = destinations(&net, &cfg);
        assert!(!dests.is_empty());
        for &d in &dests {
            assert!(net.bgp_origin(d).is_some(), "dest outside announced space");
        }
        // Cap respected per prefix.
        for &(prefix, _) in &net.addressing.announced {
            let inside = dests.iter().filter(|&&d| prefix.contains(d)).count();
            // Nested prefixes (IXP leaks) can double-count; allow slack ×2.
            assert!(inside <= cfg.per_prefix_cap * 2, "{prefix}: {inside}");
        }
    }

    #[test]
    fn trace_determinism() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 3, &[], 2);
        let dests = destinations(&net, &cfg);
        let t1 = trace_one(&net, vps[0], dests[0], &cfg);
        let t2 = trace_one(&net, vps[0], dests[0], &cfg);
        assert_eq!(t1, t2);
    }

    #[test]
    fn campaign_matches_serial_execution() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 3, &[], 3);
        let parallel = probe_campaign(&net, &vps, &cfg);
        let dests = destinations(&net, &cfg);
        let (net_ref, cfg_ref) = (&net, &cfg);
        let serial: Vec<Trace> = vps
            .iter()
            .flat_map(|&vp| {
                dests
                    .iter()
                    .map(move |&d| trace_one(net_ref, vp, d, cfg_ref))
            })
            .filter(|t| t.responsive_count() > 0)
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sharded_campaign_matches_for_every_thread_count() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 3, &[], 3);
        let serial = probe_campaign_sharded(&net, &vps, &cfg, 1);
        // Sweep thread counts past the job count: shards must concatenate to
        // the same corpus whether they split mid-VP, per-VP, or per-probe.
        for threads in [2, 3, 5, 8, 64] {
            let sharded = probe_campaign_sharded(&net, &vps, &cfg, threads);
            assert_eq!(serial, sharded, "threads={threads}");
        }
        assert_eq!(
            serial,
            probe_campaign(&net, &vps, &cfg),
            "auto thread count"
        );
    }

    #[test]
    fn campaign_workers_clamps() {
        assert_eq!(campaign_workers(4, 100), 4);
        assert_eq!(campaign_workers(4, 2), 2);
        assert_eq!(campaign_workers(1, 0), 1);
        assert!(campaign_workers(0, 100) >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn with_obs_matches_and_records_workers() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 2, &[], 9);
        let rec = obs::Recorder::new(false);
        let traces = probe_campaign_with_obs(&net, &vps, &cfg, 2, &rec);
        assert_eq!(traces, probe_campaign_sharded(&net, &vps, &cfg, 2));
        let report = rec.report();
        assert_eq!(report.exec[obs::names::EXEC_CAMPAIGN_WORKERS], 2);
        assert_eq!(
            report.counters[obs::names::TRACEROUTE_TRACES],
            traces.len() as u64
        );
    }

    #[test]
    fn first_hop_is_in_vp_as() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 2, &[], 4);
        let traces = probe_campaign(&net, &vps, &cfg);
        assert!(!traces.is_empty());
        for t in traces.iter().take(50) {
            if let Some(Some(h)) = t.hops.first() {
                // The first responding hop belongs to (or is reachable in)
                // the VP AS — its address resolves somewhere sane.
                assert!(h.addr != 0);
            }
        }
    }

    #[test]
    fn firewalled_stubs_never_respond() {
        let cfg_gen = GeneratorConfig {
            stub_firewall_prob: 1.0,
            ..GeneratorConfig::tiny(5)
        };
        let net = Internet::generate(cfg_gen);
        let cfg = ProbeConfig::default();
        let vps = select_vps(&net, 3, &[], 5);
        let stubs = net.graph.tier_members(Tier::Stub);
        let traces = probe_campaign(&net, &vps, &cfg);
        // Border-dropping firewalled ASes never respond; border-responding
        // ones expose at most one router (the border) per trace.
        for t in &traces {
            let mut fw_routers: std::collections::BTreeSet<topo_gen::RouterId> =
                std::collections::BTreeSet::new();
            for (_, h) in t.responsive() {
                if let Some(iface) = net.topology.iface_by_addr(h.addr) {
                    let owner = net.topology.owner(iface.router);
                    if net.is_firewalled(owner) {
                        assert!(
                            net.graph.node(owner).unwrap().firewall_border_responds,
                            "border-dropping firewalled {owner} responded in {t}"
                        );
                        fw_routers.insert(iface.router);
                    }
                }
            }
            assert!(
                fw_routers.len() <= 1,
                "more than the border router responded in {t}"
            );
        }
        // Traces into firewalled stub space never reach a *host*; the only
        // completions are echo replies for the border router's own
        // interface addresses (a border filter protects what's behind it,
        // not itself).
        for t in &traces {
            let to_stub = stubs
                .iter()
                .any(|s| net.addressing.blocks[s].contains(t.dst));
            if t.reached_dst() && to_stub {
                assert!(
                    net.topology.iface_by_addr(t.dst).is_some(),
                    "host behind a firewall answered: {t}"
                );
            }
        }
    }

    #[test]
    fn echo_replies_present() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 4, &[], 6);
        let traces = probe_campaign(&net, &vps, &cfg);
        let s = stats(&traces);
        assert!(s.echo_replies > 0, "campaign should contain echo replies");
        assert!(s.completed > 0);
        assert!(s.responsive_hops > s.traces, "multi-hop traces expected");
    }

    #[test]
    fn dest_unreachables_occur_and_end_measurements() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 4, &[], 11);
        let traces = probe_campaign(&net, &vps, &cfg);
        let unreachable: Vec<&Trace> = traces
            .iter()
            .filter(|t| t.stop == StopReason::Unreachable)
            .collect();
        assert!(!unreachable.is_empty(), "no unreachables in campaign");
        for t in unreachable {
            let (_, last) = t.last_hop().expect("unreachable ends responsive");
            assert_eq!(last.reply, ReplyType::DestUnreachable);
            // The measurement stops right there: no trailing gap probes.
            assert!(t.hops.last().unwrap().is_some());
        }
    }

    #[test]
    fn reactive_campaign_reprobes_suspicious_prefixes() {
        let (net, cfg) = fixture();
        let vp = select_vps(&net, 1, &[], 12)[0];
        let traces = reactive_campaign(&net, vp, &cfg, 2);
        assert!(!traces.is_empty());
        // Some prefix must have been re-probed (several distinct dests in
        // one announced prefix).
        let mut per_prefix: std::collections::BTreeMap<
            net_types::Prefix,
            std::collections::BTreeSet<u32>,
        > = std::collections::BTreeMap::new();
        for t in &traces {
            for &(prefix, _) in &net.addressing.announced {
                if prefix.contains(t.dst) {
                    per_prefix.entry(prefix).or_default().insert(t.dst);
                }
            }
        }
        assert!(
            per_prefix.values().any(|d| d.len() >= 2),
            "no prefix was re-probed"
        );
        // Deterministic.
        let again = reactive_campaign(&net, vp, &cfg, 2);
        assert_eq!(traces, again);
    }

    #[test]
    fn probe_pairs_is_pair_aligned_and_unfiltered() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 2, &[], 13);
        let dests = destinations(&net, &cfg);
        let pairs: Vec<(RouterId, u32)> = vps
            .iter()
            .flat_map(|&vp| dests.iter().map(move |&d| (vp, d)))
            .collect();
        let wp = pool::WorkerPool::new(2);
        let traces = probe_pairs_in_pool(&net, &pairs, &cfg, &wp);
        assert_eq!(traces.len(), pairs.len(), "unfiltered: one trace per pair");
        for (&(vp, dst), t) in pairs.iter().zip(&traces) {
            assert_eq!(*t, trace_one(&net, vp, dst, &cfg));
            assert_eq!(t.dst, dst);
        }
    }

    #[test]
    fn untouched_pairs_keep_identical_traces_after_events() {
        use topo_gen::TopologyEvent;
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 3, &[], 14);
        let dests = destinations(&net, &cfg);
        let pairs: Vec<(RouterId, u32)> = vps
            .iter()
            .flat_map(|&vp| dests.iter().map(move |&d| (vp, d)))
            .collect();
        // Apply one intra-AS event of each kind and check the dirty-set
        // contract after each: pairs whose pre-event traversed-AS set is
        // disjoint from the touched set must produce byte-identical traces.
        let mut net = net;
        let link = net
            .internal_links()
            .into_iter()
            .find(|&(asn, a, b)| {
                let mut probe = net.topology.clone();
                let _ = asn;
                probe.fail_internal_link(a, b)
            })
            .expect("removable link");
        let add_asn = *net.topology.as_routers.keys().last().unwrap();
        let events = [
            TopologyEvent::LinkDown {
                asn: link.0,
                a: link.1,
                b: link.2,
            },
            TopologyEvent::RouterAdd {
                asn: add_asn,
                attach: net.topology.as_routers[&add_asn][0],
            },
        ];
        let mut checked = 0usize;
        for ev in &events {
            let before: Vec<(Trace, std::collections::BTreeSet<Asn>)> = pairs
                .iter()
                .map(|&(vp, d)| (trace_one(&net, vp, d, &cfg), traversed_ases(&net, vp, d)))
                .collect();
            let out = net.apply_event(ev);
            assert!(out.applied && !out.rib_changed, "{}", ev.describe());
            for (&(vp, d), (trace, ases)) in pairs.iter().zip(&before) {
                if ases.is_disjoint(&out.touched) {
                    assert_eq!(
                        trace_one(&net, vp, d, &cfg),
                        *trace,
                        "untouched pair ({vp:?}, {d:#010x}) changed after {}",
                        ev.describe()
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no untouched pairs exercised");
    }

    #[test]
    fn gap_limit_bounds_silent_tails() {
        let (net, cfg) = fixture();
        let vps = select_vps(&net, 2, &[], 7);
        let traces = probe_campaign(&net, &vps, &cfg);
        for t in &traces {
            if t.stop != StopReason::Completed {
                let trailing = t.hops.iter().rev().take_while(|h| h.is_none()).count();
                assert!(trailing <= cfg.gap_limit, "tail too long: {t}");
            }
        }
    }
}
