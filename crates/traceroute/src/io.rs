//! JSON-lines persistence for traces.
//!
//! One JSON object per line, the shape CAIDA's converted traceroute archives
//! use. Large campaigns stream through [`write_jsonl`] / [`read_jsonl`]
//! without holding more than one record in memory.

use crate::Trace;
use std::io::{BufRead, BufReader, Read, Write};

/// Serializes traces as JSON lines.
pub fn write_jsonl<W: Write>(mut w: W, traces: &[Trace]) -> std::io::Result<()> {
    for t in traces {
        let line = serde_json::to_string(t).map_err(std::io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads traces from JSON lines, skipping blank lines.
pub fn read_jsonl<R: Read>(r: R) -> std::io::Result<Vec<Trace>> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let t: Trace = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", i + 1),
            )
        })?;
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hop, ReplyType, StopReason};

    fn traces() -> Vec<Trace> {
        vec![
            Trace {
                monitor: "vp-a".into(),
                src: 0x0a000001,
                dst: 0x0b000001,
                hops: vec![
                    Some(Hop {
                        addr: 0x0a000002,
                        reply: ReplyType::TimeExceeded,
                    }),
                    None,
                    Some(Hop {
                        addr: 0x0b000001,
                        reply: ReplyType::EchoReply,
                    }),
                ],
                stop: StopReason::Completed,
            },
            Trace {
                monitor: "vp-b".into(),
                src: 0x0a000001,
                dst: 0x0c000001,
                hops: vec![None],
                stop: StopReason::GapLimit,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &traces()).unwrap();
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, traces());
    }

    #[test]
    fn skips_blank_lines() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &traces()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn reports_bad_lines() {
        let err = read_jsonl(&b"{not json}\n"[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
