//! Core vocabulary types shared by every crate in the bdrmapit-rs workspace.
//!
//! This crate deliberately has no knowledge of BGP, traceroute, or the
//! bdrmapIT algorithm itself. It provides:
//!
//! * [`Asn`] — a newtype for autonomous system numbers with the reserved
//!   ranges from RFC 6996 / RFC 7300 modeled explicitly.
//! * [`Prefix`] — an IPv4 CIDR prefix with containment, overlap, and
//!   subdivision operations.
//! * [`PrefixTrie`] — a path-compressed binary radix (Patricia) trie keyed by
//!   prefixes, supporting exact and longest-prefix-match lookups. This is the
//!   hot path of the whole pipeline: every traceroute hop address is resolved
//!   to its origin AS through one of these tries.
//! * [`Counter`] — a small multiset used to tally AS "votes" the way the
//!   bdrmapIT election heuristics require, with deterministic tie handling.
//!
//! Everything here is deterministic and allocation-conscious; lookups never
//! allocate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asn;
mod counter;
mod intern;
mod prefix;
mod trie;

pub use asn::Asn;
pub use counter::Counter;
pub use intern::AddrInterner;
pub use prefix::{Prefix, PrefixParseError};
pub use trie::PrefixTrie;

/// Convert a dotted-quad string to a `u32` host-order address.
///
/// Returns `None` for anything that is not exactly four dot-separated
/// decimal octets.
///
/// ```
/// assert_eq!(net_types::parse_ipv4("10.0.0.1"), Some(0x0a000001));
/// assert_eq!(net_types::parse_ipv4("10.0.0.256"), None);
/// ```
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut out: u32 = 0;
    let mut parts = 0u8;
    for part in s.split('.') {
        if parts == 4 || part.is_empty() || part.len() > 3 {
            return None;
        }
        if part.len() > 1 && part.starts_with('0') {
            // Reject ambiguous leading-zero octets ("010" is octal in inet_aton).
            return None;
        }
        let octet: u32 = part.parse().ok()?;
        if octet > 255 {
            return None;
        }
        out = (out << 8) | octet;
        parts += 1;
    }
    if parts == 4 {
        Some(out)
    } else {
        None
    }
}

/// Format a `u32` host-order address as a dotted quad.
///
/// ```
/// assert_eq!(net_types::format_ipv4(0x0a000001), "10.0.0.1");
/// ```
pub fn format_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (addr >> 24) & 0xff,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for addr in [0u32, 1, 0x0a000001, 0xffffffff, 0xc0a80101] {
            assert_eq!(parse_ipv4(&format_ipv4(addr)), Some(addr));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "a.b.c.d",
            "1..2.3",
            "01.2.3.4",
            "1.2.3.4 ",
        ] {
            assert_eq!(parse_ipv4(bad), None, "{bad:?} should not parse");
        }
    }
}
